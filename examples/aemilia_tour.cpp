/// \file aemilia_tour.cpp
/// End-to-end use of the Æmilia *surface syntax*: a power-managed sensor
/// node is specified as text (the way the paper's models are written),
/// parsed, checked for noninterference, and solved against measures written
/// in the companion measure language.
///
/// The system: a sensor produces readings; a radio transmits them to a
/// sink; a DPM duty-cycles the radio.  Readings that arrive while the radio
/// sleeps are queued in a 4-place buffer and dropped on overflow.

#include <cstdio>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "bisim/hml.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "noninterference/noninterference.hpp"

namespace {

constexpr const char* kSensorNode = R"(
// A power-managed wireless sensor node.
ARCHI_TYPE Sensor_Node(void)

ARCHI_ELEM_TYPES

ELEM_TYPE Sensor_Type(void)
  BEHAVIOR
    Sensing(void; void) =
      <sample, exp(0.05)> . <push_reading, inf> . Sensing()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI push_reading

ELEM_TYPE Queue_Type(void)
  BEHAVIOR
    Queue(integer n, integer cap; void) = choice {
      cond(n < cap)  -> <enqueue, _> . Queue(n + 1, cap),
      cond(n == cap) -> <enqueue, _> . <drop_reading, inf> . Queue(cap, cap),
      cond(n > 0)    -> <dequeue, _> . Queue(n - 1, cap)
    }
  INPUT_INTERACTIONS UNI enqueue; dequeue
  OUTPUT_INTERACTIONS void

ELEM_TYPE Radio_Type(void)
  BEHAVIOR
    Radio_On(void; void) = choice {
      <pull_reading, inf> . Radio_Sending(),
      <radio_off, _> . Radio_Off()
    };
    Radio_Sending(void; void) =
      <transmit, exp(0.5)> . Radio_On();
    Radio_Off(void; void) =
      <radio_on, _> . Radio_Waking();
    Radio_Waking(void; void) =
      <stabilise, exp(0.2)> . Radio_On()
  INPUT_INTERACTIONS UNI radio_off; radio_on
  OUTPUT_INTERACTIONS UNI pull_reading

ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    Dpm_Idle(void; void) =
      <switch_off, exp(0.02)> . Dpm_Sleeping();
    Dpm_Sleeping(void; void) =
      <switch_on, exp(0.01)> . Dpm_Idle()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI switch_off; switch_on

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    SEN : Sensor_Type();
    Q   : Queue_Type(0, 4);
    R   : Radio_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM SEN.push_reading TO Q.enqueue;
    FROM R.pull_reading   TO Q.dequeue;
    FROM DPM.switch_off   TO R.radio_off;
    FROM DPM.switch_on    TO R.radio_on
END
)";

constexpr const char* kSensorMeasures = R"(
MEASURE radio_energy IS
  IN_STATE(R, Radio_On)      -> STATE_REWARD(1.0)
  IN_STATE(R, Radio_Sending) -> STATE_REWARD(1.8)
  IN_STATE(R, Radio_Waking)  -> STATE_REWARD(1.4)
  IN_STATE(R, Radio_Off)     -> STATE_REWARD(0.02);
MEASURE delivered IS
  ENABLED(R.transmit) -> TRANS_REWARD(1);
MEASURE dropped IS
  ENABLED(Q.drop_reading) -> TRANS_REWARD(1);
MEASURE sampled IS
  ENABLED(SEN.sample) -> TRANS_REWARD(1)
)";

}  // namespace

int main() {
    using namespace dpma;

    std::printf("== Æmilia tour: a power-managed sensor node ==\n\n");

    // Parse and compose.
    const adl::ArchiType archi = aemilia::parse_archi_type(kSensorNode);
    const adl::ComposedModel model = adl::compose(archi);
    std::printf("parsed '%s': %zu element types, %zu instances; composed to "
                "%zu states / %zu transitions\n",
                archi.name.c_str(), archi.elem_types.size(),
                archi.instances.size(), model.graph.num_states(),
                model.graph.num_transitions());

    // Functional phase: is the duty-cycling DPM transparent to the sink?
    // The "low observer" is the radio's transmit activity.
    const auto verdict = noninterference::check_dpm_transparency(
        model, {"DPM.switch_off#R.radio_off", "DPM.switch_on#R.radio_on"}, "R");
    std::printf("noninterference towards the radio: %s\n",
                verdict.noninterfering ? "PASS" : "FAIL");
    if (!verdict.noninterfering) {
        std::printf("%s\n", bisim::to_two_towers(verdict.formula).c_str());
        std::printf(
            "(expected: switching the radio off is observable in the radio's\n"
            " own interface — transparency holds towards the *sink*, i.e. the\n"
            " stream of transmitted readings, not towards the radio itself)\n");
    }

    // Markovian phase with parsed measures.
    const auto measures = aemilia::parse_measures(kSensorMeasures);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    std::printf("\nsteady-state measures (CTMC, %zu tangible states):\n",
                markov.chain.num_states());
    double delivered = 0.0;
    double sampled = 0.0;
    double energy = 0.0;
    for (const adl::Measure& m : measures) {
        const double value = ctmc::evaluate_measure(markov, model, pi, m);
        std::printf("  %-14s = %.6f\n", m.name.c_str(), value);
        if (m.name == "delivered") delivered = value;
        if (m.name == "sampled") sampled = value;
        if (m.name == "radio_energy") energy = value;
    }
    std::printf("\nderived: delivery ratio = %.3f, energy per delivered reading "
                "= %.3f\n",
                delivered / sampled, energy / delivered);
    return 0;
}
