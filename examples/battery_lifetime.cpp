/// \file battery_lifetime.cpp
/// The question behind the paper's title — what does the DPM buy a
/// *battery-powered* appliance? — answered with the battery subsystem
/// (src/battery): the same rpc trajectories replayed into three battery
/// models of increasing realism.
///
///  * ideal   — linear charge counter; lifetime ~ capacity / power.  This is
///              the fluid approximation the old version of this example
///              hard-coded by hand.
///  * peukert — rate-capacity effect only: heavy load drains the battery
///              superlinearly, rest periods buy nothing extra.
///  * kibam   — the kinetic two-well model: heavy load also *strands* bound
///              charge, and the idle periods the DPM creates let it flow
///              back.  Sleep is now worth more than its average-power
///              savings — which is exactly the effect that makes a battery
///              the right judge of a DPM policy.
///
/// For each battery x {NO-DPM, DPM} the program reports the analytic bounds
/// from the Markovian model (fluid at steady-state power, refined along the
/// transient power profile) and the simulated lifetime on the *general*
/// model (replications with CIs), plus the requests served per charge.
///
/// Censoring: the old example bounded every simulation with
/// `4 * capacity / NO-DPM power`, silently truncating first-passage times
/// when the DPM run outlived the bound — censored replications were folded
/// into the mean, biasing it low.  Here the horizon scales with each
/// configuration's *own* fluid estimate and simulate_lifetime() counts
/// censored replications separately; this program prints them and fails
/// loudly if any survive.

#include <cstdio>

#include "battery/coupling.hpp"
#include "ctmc/ctmc.hpp"
#include "models/rpc.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;
namespace mr = models::rpc;

struct Row {
    battery::CtmcLifetime bounds;      ///< analytic, Markovian model
    battery::LifetimeEstimate replay;  ///< simulated, general model
};

Row analyse(const battery::BatteryParams& params, double shutdown_timeout, bool dpm) {
    // Analytic bounds from the Markovian phase.
    const adl::ComposedModel markov_model =
        mr::compose(mr::markovian(shutdown_timeout, dpm));
    const ctmc::MarkovModel markov = ctmc::build_markov(markov_model);
    const auto measures = mr::measures();
    Row row;
    row.bounds = battery::ctmc_lifetime(markov, markov_model,
                                        measures[mr::kEnergyRate], params);

    // Trajectory replay on the general model.  The censoring horizon scales
    // with this configuration's own fluid estimate — not with the NO-DPM
    // power — so a long-lived DPM run is not silently truncated.
    const adl::ComposedModel general_model =
        mr::compose(mr::general(shutdown_timeout, dpm));
    const sim::Simulator simulator(general_model, measures);
    battery::ReplayOptions replay;
    replay.horizon = 8.0 * row.bounds.fluid;
    replay.seed = 99;
    replay.replications = 10;
    replay.confidence = 0.90;
    row.replay = battery::simulate_lifetime(simulator, mr::kEnergyRate, params, replay);
    return row;
}

}  // namespace

int main() {
    const double capacity = 20000.0;
    // Well below the general model's actual idle period (~11.3 ms), where the
    // DPM genuinely sleeps.  A timeout *near* the idle period lands in the
    // paper's counterproductive region (Fig. 3) and the DPM buys almost
    // nothing — battery or not.
    const double shutdown_timeout = 2.0;
    std::printf("== battery lifetime of the rpc server (capacity %.0f units, "
                "timeout %.0f ms) ==\n\n",
                capacity, shutdown_timeout);

    battery::BatteryParams params;
    params.capacity = capacity;
    params.kibam_c = 0.5;
    params.kibam_rate = 1e-3;

    int censored_total = 0;
    double ratios[3] = {0.0, 0.0, 0.0};
    int kind_index = 0;
    for (const auto kind :
         {battery::BatteryParams::Kind::Ideal, battery::BatteryParams::Kind::Peukert,
          battery::BatteryParams::Kind::Kibam}) {
        params.kind = kind;
        std::printf("--- %s battery ---\n", params.kind_name());
        std::printf("%-8s %11s %13s %23s %10s %9s\n", "config", "fluid [s]",
                    "refined [s]", "simulated [s] (90%CI)", "requests", "censored");
        double lifetimes[2] = {0.0, 0.0};
        for (const bool dpm : {false, true}) {
            const Row row = analyse(params, shutdown_timeout, dpm);
            lifetimes[dpm ? 1 : 0] = row.replay.mean;
            censored_total += row.replay.censored;
            std::printf("%-8s %11.2f %13.2f %12.2f ± %-8.2f %10.0f %9d\n",
                        dpm ? "DPM" : "NO-DPM", row.bounds.fluid / 1000.0,
                        row.bounds.refined / 1000.0, row.replay.mean / 1000.0,
                        row.replay.half_width / 1000.0,
                        row.replay.mean_totals[mr::kThroughput], row.replay.censored);
        }
        ratios[kind_index++] = lifetimes[1] / lifetimes[0];
        std::printf("DPM/NO-DPM lifetime ratio: %.3f\n\n",
                    lifetimes[1] / lifetimes[0]);
    }

    if (censored_total > 0) {
        std::fprintf(stderr,
                     "ERROR: %d replication(s) were censored at the horizon — the "
                     "reported means exclude them; raise the horizon factor\n",
                     censored_total);
        return 1;
    }

    std::printf(
        "(three things to read off: the *ideal* ratio %.3f IS the average-power\n"
        " ratio of the simulated trajectories — all a mean-power analysis can\n"
        " promise; under *peukert* both lifetimes shrink but the ratio barely\n"
        " moves (%.3f); under *kibam* the NO-DPM server strands bound charge\n"
        " while the DPM's sleep periods recover it, so the ratio %.3f exceeds\n"
        " the ideal one — DPM sleep is worth more than its average-power\n"
        " savings to a real battery.  The fluid/refined columns are the\n"
        " analytic bounds from the Markovian substitute of the same system,\n"
        " solved without simulating.)\n",
        ratios[0], ratios[1], ratios[2]);
    return ratios[2] > ratios[0] ? 0 : 1;
}
