/// \file battery_lifetime.cpp
/// The question behind the paper's title — what does the DPM buy a
/// *battery-powered* appliance? — answered with the library's first-passage
/// simulation: given a battery capacity, how long until the rpc server
/// drains it, and how many requests does it serve before dying?
///
/// Two estimates are compared:
///  * the fluid approximation  lifetime ~ capacity / steady-state power
///    (from the CTMC solution), and
///  * the simulated first-passage time of the accumulated-energy reward
///    (exact crossing, 90% CI) on the general model.

#include <cstdio>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;
namespace mr = models::rpc;

struct Lifetime {
    double fluid;            ///< capacity / steady-state power (msec)
    double simulated;        ///< mean first-passage time (msec)
    double half_width;       ///< 90% CI
    double requests_served;  ///< mean requests completed until depletion
};

Lifetime analyse(double shutdown_timeout, bool dpm, double capacity) {
    // Fluid bound from the Markovian model.
    const adl::ComposedModel markov_model =
        mr::compose(mr::markovian(shutdown_timeout, dpm));
    const ctmc::MarkovModel markov = ctmc::build_markov(markov_model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = mr::measures();
    const double power = ctmc::evaluate_measure(markov, markov_model, pi,
                                                measures[mr::kEnergyRate]);

    // First-passage simulation on the general model.
    const adl::ComposedModel general_model =
        mr::compose(mr::general(shutdown_timeout, dpm));
    const sim::Simulator simulator(general_model, measures);
    sim::SimOptions options;
    options.horizon = 4.0 * capacity / power;  // generous depletion bound
    options.seed = 99;
    const int reps = 20;
    const sim::Estimate lifetime = sim::simulate_depletion(
        simulator, mr::kEnergyRate, capacity, options, reps, 0.90);

    // Requests served until depletion: raw throughput total at the stop.
    double requests = 0.0;
    for (int r = 0; r < reps; ++r) {
        sim::SimOptions rep = options;
        rep.seed = sim::Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r) + 7777);
        const sim::DepletionResult result =
            simulator.run_until(mr::kEnergyRate, capacity, rep);
        requests += result.totals[mr::kThroughput];
    }
    requests /= reps;

    return Lifetime{capacity / power, lifetime.mean, lifetime.half_width, requests};
}

}  // namespace

int main() {
    std::printf("== battery lifetime of the rpc server (capacity 50,000 units) ==\n\n");
    const double capacity = 50000.0;

    std::printf("%-22s %14s %20s %16s\n", "configuration", "fluid est. [s]",
                "simulated [s] (90%CI)", "requests served");
    for (const auto& [label, timeout, dpm] :
         {std::tuple{"NO-DPM", 10.0, false}, std::tuple{"DPM timeout=10ms", 10.0, true},
          std::tuple{"DPM timeout=2ms", 2.0, true},
          std::tuple{"DPM timeout=0 (eager)", 0.0, true}}) {
        const Lifetime lt = analyse(timeout, dpm, capacity);
        std::printf("%-22s %14.2f %13.2f ± %-6.2f %16.0f\n", label, lt.fluid / 1000.0,
                    lt.simulated / 1000.0, lt.half_width / 1000.0, lt.requests_served);
    }

    std::printf(
        "\n(two things to read off: the DPM can nearly double the battery\n"
        " life *and* the total requests served per charge; and the fluid\n"
        " estimate — which comes from the Markovian model — is badly wrong\n"
        " for timeout=10ms, because in the general model that timeout sits\n"
        " in the counterproductive region near the 11.3 ms idle period.\n"
        " This is Fig. 7's Markov-vs-general gap restated in battery terms.)\n");
    return 0;
}
