/// \file quickstart.cpp
/// Tour of the dpma toolchain on the paper's rpc case study:
///
///   1. build the functional model and run the noninterference check
///      (the simplified system fails with a diagnostic formula, the revised
///      one passes);
///   2. build the Markovian model, solve it and evaluate the paper's
///      measures with and without DPM;
///   3. simulate the general model (deterministic delays, Gaussian channel)
///      and compare.

#include <cstdio>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

void functional_phase() {
    std::printf("== Phase 1: functional (noninterference) ==\n");

    const adl::ComposedModel simplified =
        models::rpc::compose(models::rpc::simplified_functional(), true);
    const auto bad = noninterference::check_dpm_transparency(
        simplified, models::rpc::high_action_labels(), "C");
    std::printf("simplified rpc: %s (hidden %zu states, restricted %zu states)\n",
                bad.noninterfering ? "NONINTERFERING" : "INTERFERING",
                bad.hidden_states, bad.restricted_states);
    if (!bad.noninterfering) {
        std::printf("distinguishing formula:\n%s\n",
                    bisim::to_two_towers(bad.formula).c_str());
    }

    const adl::ComposedModel revised =
        models::rpc::compose(models::rpc::revised_functional(), true);
    const auto good = noninterference::check_dpm_transparency(
        revised, models::rpc::high_action_labels(), "C");
    std::printf("revised rpc:    %s (hidden %zu states, restricted %zu states)\n\n",
                good.noninterfering ? "NONINTERFERING" : "INTERFERING",
                good.hidden_states, good.restricted_states);
}

void markovian_phase() {
    std::printf("== Phase 2: Markovian (exact steady-state analysis) ==\n");
    const auto measures = models::rpc::measures();
    for (const bool dpm : {false, true}) {
        const adl::ComposedModel model =
            models::rpc::compose(models::rpc::markovian(5.0, dpm));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const std::vector<double> pi = ctmc::steady_state(markov.chain);
        const double throughput = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kThroughput]);
        const double waiting = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kWaitingProb]);
        const double energy = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kEnergyRate]);
        std::printf(
            "%-8s states=%5zu throughput=%.6f req/ms  wait/req=%.4f ms  "
            "energy/req=%.4f\n",
            dpm ? "DPM" : "NO-DPM", markov.chain.num_states(), throughput,
            waiting / throughput, energy / throughput);
    }
    std::printf("\n");
}

void general_phase() {
    std::printf("== Phase 3: general distributions (simulation) ==\n");
    for (const bool dpm : {false, true}) {
        const adl::ComposedModel model =
            models::rpc::compose(models::rpc::general(5.0, dpm));
        const sim::Simulator simulator(model, models::rpc::measures());
        sim::SimOptions options;
        options.warmup = 2'000.0;
        options.horizon = 20'000.0;
        options.seed = 42;
        const auto estimates = sim::simulate_replications(simulator, options, 10, 0.90);
        const double throughput = estimates[models::rpc::kThroughput].mean;
        std::printf(
            "%-8s throughput=%.6f±%.6f req/ms  wait/req=%.4f ms  energy/req=%.4f\n",
            dpm ? "DPM" : "NO-DPM", throughput,
            estimates[models::rpc::kThroughput].half_width,
            estimates[models::rpc::kWaitingProb].mean / throughput,
            estimates[models::rpc::kEnergyRate].mean / throughput);
    }
}

}  // namespace

int main() {
    functional_phase();
    markovian_phase();
    general_phase();
    return 0;
}
