/// \file rpc_methodology.cpp
/// The complete incremental methodology of Fig. 1 on the rpc case study,
/// step by step, as a worked example of the library's public API:
///
///   1. functional model, noninterference check fails -> read the
///      diagnostic -> revise the client (timeout) and the DPM (idle-only
///      shutdowns) -> check passes;
///   2. Markovian model: exact steady-state measures over the shutdown
///      timeout sweep, plus a transient look at how fast the system reaches
///      its long-run regime;
///   3. general model: validate against the Markovian one (exponential
///      distributions plugged into the simulator), then simulate the
///      realistic deterministic/Gaussian timings.

#include <cstdio>

#include "bisim/hml.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/rpc.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;
namespace mr = models::rpc;

void step1_functional() {
    std::printf("--- Step 1: functional phase ---------------------------------\n");

    // 1a. The naive system: blocking client, trivial DPM, shutdown anywhere.
    const adl::ComposedModel naive = mr::compose(mr::simplified_functional(), true);
    std::printf("simplified system: %zu states, %zu deadlock state(s)\n",
                naive.graph.num_states(),
                lts::deadlock_states(naive.graph).size());

    const auto verdict = noninterference::check_dpm_transparency(
        naive, mr::high_action_labels(), "C");
    std::printf("noninterference: %s\n",
                verdict.noninterfering ? "PASS" : "FAIL (as in Sect. 3.1)");
    if (!verdict.noninterfering) {
        std::printf("the checker explains what the client can observe:\n%s\n",
                    bisim::to_two_towers(verdict.formula).c_str());
        std::printf(
            "reading: after the client sends an rpc there is a reachable state\n"
            "from which no result can ever be delivered — the DPM shut the\n"
            "server down mid-service and the blocking client waits forever.\n");
    }

    // 1b. The revision suggested by the diagnostic.
    const adl::ComposedModel revised = mr::compose(mr::revised_functional(), true);
    const auto verdict2 = noninterference::check_dpm_transparency(
        revised, mr::high_action_labels(), "C");
    std::printf(
        "\nrevised system (client timeout + idle-only shutdowns): %zu states, "
        "noninterference: %s\n\n",
        revised.graph.num_states(), verdict2.noninterfering ? "PASS" : "FAIL");
}

void step2_markovian() {
    std::printf("--- Step 2: Markovian phase -----------------------------------\n");
    const auto measures = mr::measures();

    std::printf("%10s %12s %12s %12s\n", "timeout", "throughput", "wait/req",
                "energy/req");
    for (const double timeout : {0.0, 5.0, 10.0, 25.0}) {
        const adl::ComposedModel model = mr::compose(mr::markovian(timeout, true));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const double tput =
            ctmc::evaluate_measure(markov, model, pi, measures[mr::kThroughput]);
        const double wait =
            ctmc::evaluate_measure(markov, model, pi, measures[mr::kWaitingProb]);
        const double energy =
            ctmc::evaluate_measure(markov, model, pi, measures[mr::kEnergyRate]);
        std::printf("%10.1f %12.6f %12.4f %12.4f\n", timeout, tput, wait / tput,
                    energy / tput);
    }

    // Transient: how quickly does P(server sleeping) reach its long-run
    // value after a cold start?  (uniformisation, Sect. "further use")
    const adl::ComposedModel model = mr::compose(mr::markovian(5.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi_inf = ctmc::steady_state(markov.chain);
    const double sleep_inf = ctmc::state_probability(
        markov, model, pi_inf, adl::InStatePredicate{"S", "Sleeping_Server"});
    std::printf("\ntransient convergence of P(sleeping) (steady state %.4f):\n",
                sleep_inf);
    for (const double t : {1.0, 5.0, 20.0, 100.0}) {
        const auto pi_t = ctmc::transient(markov.chain, markov.initial_distribution, t);
        const double sleep_t = ctmc::state_probability(
            markov, model, pi_t, adl::InStatePredicate{"S", "Sleeping_Server"});
        std::printf("  t=%6.1f ms   P(sleeping)=%.4f\n", t, sleep_t);
    }
    std::printf("\n");
}

void step3_general() {
    std::printf("--- Step 3: general phase -------------------------------------\n");
    const auto measures = mr::measures();

    // 3a. Validation (Sect. 5.1): simulate the Markov model's distributions.
    {
        adl::ComposedModel model = mr::compose(mr::markovian(5.0, true));
        for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
            const auto out = model.graph.out(s);
            for (std::size_t k = 0; k < out.size(); ++k) {
                if (const auto* e = std::get_if<lts::RateExp>(&out[k].rate)) {
                    model.graph.set_rate(
                        s, k, lts::RateGeneral{Dist::exponential(e->rate)});
                }
            }
        }
        const ctmc::MarkovModel markov =
            ctmc::build_markov(mr::compose(mr::markovian(5.0, true)));
        const auto pi = ctmc::steady_state(markov.chain);
        const double exact = ctmc::evaluate_measure(
            markov, mr::compose(mr::markovian(5.0, true)), pi,
            measures[mr::kEnergyRate]);

        const sim::Simulator simulator(model, measures);
        sim::SimOptions options;
        options.warmup = 500.0;
        options.horizon = 20000.0;
        options.seed = 13;
        const auto est = sim::simulate_replications(simulator, options, 30, 0.90);
        std::printf(
            "validation: energy rate exact=%.5f vs simulated(exp)=%.5f ± %.5f\n",
            exact, est[mr::kEnergyRate].mean, est[mr::kEnergyRate].half_width);
    }

    // 3b. The realistic model: deterministic timings, Gaussian channel.
    for (const double timeout : {5.0, 11.3, 20.0}) {
        const adl::ComposedModel model = mr::compose(mr::general(timeout, true));
        const sim::Simulator simulator(model, measures);
        sim::SimOptions options;
        options.warmup = 500.0;
        options.horizon = 20000.0;
        options.seed = 21;
        const auto est = sim::simulate_replications(simulator, options, 20, 0.90);
        const double tput = est[mr::kThroughput].mean;
        std::printf(
            "general t=%5.1f: throughput=%.6f  wait/req=%.3f ms  energy/req=%.3f\n",
            timeout, tput, est[mr::kWaitingProb].mean / tput,
            est[mr::kEnergyRate].mean / tput);
    }
    std::printf(
        "(note the bimodal behaviour: t=11.3 sits in the counterproductive\n"
        " region near the actual idle period; t=20 has no effect at all)\n");
}

}  // namespace

int main() {
    step1_functional();
    step2_markovian();
    step3_general();
    return 0;
}
