/// \file streaming_methodology.cpp
/// The full incremental methodology on the streaming case study
/// (Sect. 2.2 / 3.2 / 4.2 / 5.3): noninterference of the PSP power manager,
/// Markovian sweep of the awake period, and a general-distribution
/// simulation at the operating point the paper singles out (100 ms awake
/// period, the Cisco Aironet 350 setting).

#include <cstdio>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;
namespace ms = models::streaming;

struct Metrics {
    double energy_per_frame;
    double loss;
    double miss;
    double quality;
};

Metrics derive(const std::vector<double>& v) {
    const double fetches = v[ms::kMiss] + v[ms::kHits];
    return Metrics{
        v[ms::kFramesReceived] > 0 ? v[ms::kEnergyRate] / v[ms::kFramesReceived] : 0.0,
        v[ms::kGenerated] > 0 ? (v[ms::kApLoss] + v[ms::kBLoss]) / v[ms::kGenerated] : 0.0,
        fetches > 0 ? v[ms::kMiss] / fetches : 0.0,
        fetches > 0 ? v[ms::kHits] / fetches : 0.0,
    };
}

void functional_phase() {
    std::printf("== streaming: functional phase (Sect. 3.2) ==\n");
    const adl::ComposedModel model = ms::compose(ms::functional(2), true);
    const auto result = noninterference::check_dpm_transparency(
        model, ms::high_action_labels(), "C");
    std::printf("PSP DPM: %s (hidden %zu states, restricted %zu states)\n\n",
                result.noninterfering ? "NONINTERFERING" : "INTERFERING",
                result.hidden_states, result.restricted_states);
    if (!result.noninterfering) {
        std::printf("%s\n", bisim::to_two_towers(result.formula).c_str());
    }
}

void markovian_phase() {
    std::printf("== streaming: Markovian phase (Sect. 4.2) ==\n");
    const auto measures = ms::measures();
    for (const double period : {50.0, 100.0, 400.0}) {
        for (const bool dpm : {false, true}) {
            if (!dpm && period != 50.0) continue;  // NO-DPM is period independent
            const adl::ComposedModel model = ms::compose(ms::markovian(period, dpm));
            const ctmc::MarkovModel markov = ctmc::build_markov(model);
            const std::vector<double> pi = ctmc::steady_state(markov.chain);
            std::vector<double> values;
            for (const auto& m : measures) {
                values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
            }
            const Metrics metrics = derive(values);
            std::printf(
                "awake=%3.0fms %-7s states=%6zu energy/frame=%7.2f loss=%.4f "
                "miss=%.4f quality=%.4f\n",
                period, dpm ? "DPM" : "NO-DPM", markov.chain.num_states(),
                metrics.energy_per_frame, metrics.loss, metrics.miss, metrics.quality);
        }
    }
    std::printf("\n");
}

void general_phase() {
    std::printf("== streaming: general phase (Sect. 5.3) ==\n");
    for (const bool dpm : {false, true}) {
        const adl::ComposedModel model = ms::compose(ms::general(100.0, dpm));
        const sim::Simulator simulator(model, ms::measures());
        sim::SimOptions options;
        options.warmup = 5'000.0;
        options.horizon = 100'000.0;
        options.seed = 7;
        const auto estimates = sim::simulate_replications(simulator, options, 10, 0.90);
        std::vector<double> values;
        for (const auto& e : estimates) values.push_back(e.mean);
        const Metrics metrics = derive(values);
        std::printf(
            "awake=100ms %-7s energy/frame=%7.2f loss=%.4f miss=%.4f quality=%.4f\n",
            dpm ? "DPM" : "NO-DPM", metrics.energy_per_frame, metrics.loss,
            metrics.miss, metrics.quality);
    }
}

}  // namespace

int main() {
    functional_phase();
    markovian_phase();
    general_phase();
    return 0;
}
