/// \file custom_dpm_policy.cpp
/// Building a *custom* power-management policy against the library's public
/// API — the workflow a downstream user follows to evaluate their own DPM
/// before implementing it in firmware.
///
/// The policy implemented here is a duty-cycling DPM: instead of arming the
/// shutdown timer in every idle period, it arms it only every N-th idle
/// period, bounding how often the server pays the wake-up transient.  We
/// assemble the architecture manually from the rpc element types plus our
/// own DPM element type, run the noninterference check, and sweep N on the
/// Markovian model.

#include <cstdio>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/builder.hpp"
#include "models/rpc.hpp"
#include "noninterference/noninterference.hpp"

namespace {

using namespace dpma;
using models::act;
using models::alt;
using models::cmp_eq;
using models::cmp_lt;
using models::lit;
using models::plus;
using models::pvar;

/// A DPM that arms its shutdown timer only on every `limit`-th idle
/// notification (the revised server alternates busy/idle notifications
/// strictly, so "idle notices seen" counts completed service cycles).
/// Written exactly the way the built-in policies are: a parameterised
/// behaviour.
adl::ElemType counting_dpm(double shutdown_timeout) {
    adl::ElemType type;
    type.name = "DPM_Type";
    adl::BehaviorDef counting{"Counting_DPM", {"seen", "limit"}, {}};
    const auto seen = [] { return pvar(0, "seen"); };
    const auto limit = [] { return pvar(1, "limit"); };

    // Idle notification: count up while below the threshold...
    counting.alternatives.push_back(
        alt({act("receive_idle_notice", lts::RatePassive{})}, "Counting_DPM",
            {plus(seen(), lit(1)), limit()},
            cmp_lt(plus(seen(), lit(1)), limit())));
    // ... and arm once the threshold is reached.
    counting.alternatives.push_back(
        alt({act("receive_idle_notice", lts::RatePassive{})}, "Armed_DPM",
            {limit()}, cmp_eq(plus(seen(), lit(1)), limit())));
    // Busy notifications are absorbed without resetting the cycle count.
    counting.alternatives.push_back(
        alt({act("receive_busy_notice", lts::RatePassive{})}, "Counting_DPM",
            {seen(), limit()}));

    adl::BehaviorDef armed{"Armed_DPM", {"limit"}, {}};
    armed.alternatives.push_back(
        alt({act("send_shutdown", lts::RateExp{1.0 / shutdown_timeout})},
            "Counting_DPM", {lit(0), pvar(0, "limit")}));
    armed.alternatives.push_back(
        alt({act("receive_busy_notice", lts::RatePassive{})}, "Armed_DPM",
            {pvar(0, "limit")}));
    armed.alternatives.push_back(
        alt({act("receive_idle_notice", lts::RatePassive{})}, "Armed_DPM",
            {pvar(0, "limit")}));

    type.behaviors = {std::move(counting), std::move(armed)};
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {"send_shutdown"};
    return type;
}

/// Swap the DPM element type of the stock rpc architecture for ours.
adl::ArchiType with_counting_dpm(models::rpc::Config config, double timeout,
                                 int threshold) {
    adl::ArchiType archi = models::rpc::build(config);
    for (adl::ElemType& type : archi.elem_types) {
        if (type.name == "DPM_Type") {
            type = counting_dpm(timeout);
        }
    }
    for (adl::Instance& inst : archi.instances) {
        if (inst.name == "DPM") {
            inst.args = {0, threshold};
        }
    }
    return archi;
}

}  // namespace

int main() {
    std::printf("== custom DPM policy: shutdown after N consecutive idles ==\n\n");

    // Functional phase first, as the methodology prescribes.
    {
        models::rpc::Config config = models::rpc::revised_functional();
        adl::ArchiType archi = with_counting_dpm(config, 5.0, 3);
        // Functional phase: erase the exponential timer.
        for (adl::ElemType& type : archi.elem_types) {
            if (type.name != "DPM_Type") continue;
            for (adl::BehaviorDef& b : type.behaviors) {
                for (adl::Alternative& a : b.alternatives) {
                    for (adl::Action& action : a.actions) {
                        if (action.name == "send_shutdown") {
                            action.rate = lts::RateUnspecified{};
                        }
                    }
                }
            }
        }
        const adl::ComposedModel model = adl::compose(archi);
        const auto verdict = noninterference::check_dpm_transparency(
            model, models::rpc::high_action_labels(), "C");
        std::printf("noninterference of the counting DPM: %s (%zu states)\n\n",
                    verdict.noninterfering ? "PASS" : "FAIL",
                    model.graph.num_states());
    }

    // Markovian phase: sweep the idle-count threshold.
    std::printf("%12s %12s %12s %12s\n", "threshold N", "throughput", "wait/req",
                "energy/req");
    const auto measures = models::rpc::measures();
    for (const int threshold : {1, 2, 3, 5, 8}) {
        const adl::ArchiType archi =
            with_counting_dpm(models::rpc::markovian(5.0, true), 5.0, threshold);
        const adl::ComposedModel model = adl::compose(archi);
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        const double tput = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kThroughput]);
        const double wait = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kWaitingProb]);
        const double energy = ctmc::evaluate_measure(
            markov, model, pi, measures[models::rpc::kEnergyRate]);
        std::printf("%12d %12.6f %12.4f %12.4f\n", threshold, tput, wait / tput,
                    energy / tput);
    }
    std::printf(
        "\n(N=1 is the paper's idle-timeout policy; larger N trades energy\n"
        " savings for performance — exactly the tradeoff a predictive\n"
        " wake-up-cost-aware policy tunes)\n");
    return 0;
}
