/// \file json_check.cpp
/// Tiny JSON artifact validator used by the ctest suite:
///
///   json_check <file> [--contains STRING]...
///
/// Exits 0 when <file> parses as strict JSON (obs::json_valid) and contains
/// every --contains substring; prints the reason and exits 1 otherwise.
/// Keeps the artifact checks (trace files, metrics dumps, ResultSet JSON)
/// dependency-free: no python/jq needed in the test environment.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: json_check <file> [--contains STRING]...\n");
        return 1;
    }
    const std::string path = argv[1];
    std::vector<std::string> needles;
    for (int i = 2; i < argc; ++i) {
        if (std::string(argv[i]) == "--contains" && i + 1 < argc) {
            needles.emplace_back(argv[++i]);
        } else {
            std::fprintf(stderr, "json_check: unexpected argument '%s'\n", argv[i]);
            return 1;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string error;
    if (!dpma::obs::json_valid(text, &error)) {
        std::fprintf(stderr, "json_check: %s is not valid JSON: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    for (const std::string& needle : needles) {
        if (text.find(needle) == std::string::npos) {
            std::fprintf(stderr, "json_check: %s does not contain '%s'\n",
                         path.c_str(), needle.c_str());
            return 1;
        }
    }
    std::printf("json_check: %s ok (%zu bytes, %zu substrings)\n", path.c_str(),
                text.size(), needles.size());
    return 0;
}
