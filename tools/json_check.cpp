/// \file json_check.cpp
/// Tiny JSON artifact validator used by the ctest suite:
///
///   json_check <file> [--jsonl] [--contains STRING]...
///
/// Exits 0 when <file> parses as strict JSON (obs::json_valid) and contains
/// every --contains substring; prints the reason and exits 1 otherwise.
/// With --jsonl the file is a JSON-Lines stream instead: every non-empty
/// line must be one strict JSON value, and a failure reports the 1-based
/// line number; --contains still matches against the whole file.
/// Keeps the artifact checks (trace files, metrics dumps, ResultSet JSON,
/// run records, sweep event streams) dependency-free: no python/jq needed
/// in the test environment.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: json_check <file> [--jsonl] [--contains STRING]...\n");
        return 1;
    }
    const std::string path = argv[1];
    bool jsonl = false;
    std::vector<std::string> needles;
    for (int i = 2; i < argc; ++i) {
        if (std::string(argv[i]) == "--jsonl") {
            jsonl = true;
        } else if (std::string(argv[i]) == "--contains" && i + 1 < argc) {
            needles.emplace_back(argv[++i]);
        } else {
            std::fprintf(stderr, "json_check: unexpected argument '%s'\n", argv[i]);
            return 1;
        }
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot open %s\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    std::string error;
    std::size_t lines = 0;
    if (jsonl) {
        std::string_view remaining = text;
        std::size_t line_number = 0;
        while (!remaining.empty()) {
            const std::size_t eol = remaining.find('\n');
            const std::string_view line = remaining.substr(0, eol);
            ++line_number;
            if (!line.empty()) {
                ++lines;
                if (!dpma::obs::json_valid(line, &error)) {
                    std::fprintf(stderr, "json_check: %s line %zu is not valid JSON: %s\n",
                                 path.c_str(), line_number, error.c_str());
                    return 1;
                }
            }
            if (eol == std::string_view::npos) break;
            remaining.remove_prefix(eol + 1);
        }
        if (lines == 0) {
            std::fprintf(stderr, "json_check: %s has no JSONL values\n", path.c_str());
            return 1;
        }
    } else if (!dpma::obs::json_valid(text, &error)) {
        std::fprintf(stderr, "json_check: %s is not valid JSON: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    for (const std::string& needle : needles) {
        if (text.find(needle) == std::string::npos) {
            std::fprintf(stderr, "json_check: %s does not contain '%s'\n",
                         path.c_str(), needle.c_str());
            return 1;
        }
    }
    if (jsonl) {
        std::printf("json_check: %s ok (%zu JSONL values, %zu substrings)\n",
                    path.c_str(), lines, needles.size());
    } else {
        std::printf("json_check: %s ok (%zu bytes, %zu substrings)\n", path.c_str(),
                    text.size(), needles.size());
    }
    return 0;
}
