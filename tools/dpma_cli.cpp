/// \file dpma_cli.cpp
/// Command-line front end of the toolchain — the TwoTowers-like workflow on
/// Æmilia files, no C++ required:
///
///   dpma_cli info     model.aem
///   dpma_cli dot      model.aem                       > model.dot
///   dpma_cli lint     model.aem|dir ... [measures.msr]
///                     [--format text|json|sarif]
///   dpma_cli analyze  model.aem|dir ... [measures.msr]
///                     [--format text|json|sarif] [--high L1,L2 --low C]
///   dpma_cli check    model.aem --high L1,L2 --low C  [--traces] [--precheck]
///   dpma_cli solve    model.aem measures.msr [--precheck]
///   dpma_cli simulate model.aem measures.msr [--horizon H] [--warmup W]
///                     [--reps N] [--seed S] [--confidence C]
///   dpma_cli sweep    model.aem measures.msr --param I.action=lo:hi:steps
///                     [--jobs N] [--json PATH|-] [--csv PATH|-] [--precheck]
///                     [--checkpoint PATH [--resume]] [--retries N]
///   dpma_cli lifetime rpc|streaming [--battery ideal|peukert|kibam]
///                     [--capacity lo:hi:steps] [--control C] [--reps N]
///                     [--seed S] [--confidence C] [--jobs N]
///                     [--horizon-factor F] [--peukert-exponent A]
///                     [--peukert-ref P] [--kibam-c C] [--kibam-rate K]
///                     [--format text|json] [--json PATH|-] [--csv PATH|-]
///                     [--checkpoint PATH [--resume]] [--retries N]
///   dpma_cli report   old.json new.json [--threshold R] [--confidence C]
///                     [--resamples N] [--seed S]
///
/// Global options, valid in any position with any command:
///
///   --trace FILE       record tracing spans, write Chrome trace-event JSON
///                      to FILE on exit (chrome://tracing, Perfetto)
///   --metrics FILE     write the metrics registry as JSON to FILE on exit
///   --report FILE      write an obs::RunReport run record to FILE on exit
///                      ("-" = stdout); sweep/lifetime attach their
///                      ResultSet as a record series
///   --events FILE      stream live sweep telemetry (JSONL heartbeats, see
///                      exp/events.hpp) to FILE ("-"/"stderr" = stderr);
///                      shorthand for DPMA_EVENTS=FILE
///   --log-level LEVEL  error | warn | info | debug (overrides DPMA_LOG)
///
/// `check` runs the paper's noninterference analysis: --high lists the
/// global action labels of the power-management commands (as printed by
/// `info`), --low names the observing instance.
///
/// `lint` runs the semantic analyser (src/analysis) and prints every
/// diagnostic with its file:line:column span — clang-style text by default,
/// strict JSON with --format json, SARIF 2.1.0 with --format sarif.  It
/// accepts any mix of .aem files and directories (searched recursively for
/// *.aem); exit status aggregates over all of them: 0 when no file has
/// errors (warnings allowed), 1 otherwise.  All other commands run the same
/// lint automatically before touching the model: a spec with lint errors
/// fails fast with the diagnostics on stderr (exit 4) instead of dying
/// somewhere inside composition or solving.
///
/// `analyze` runs lint plus the dataflow / abstract-interpretation engine
/// (src/analysis/flow): rate-literal scan [non-positive-rate], interval
/// propagation of behaviour parameters [unbounded-parameter], abstract
/// composition over interaction alphabets [dead-interaction, sync-deadlock]
/// and the ergodicity precheck [non-ergodic] — all without ever building
/// the composed LTS.  With --high/--low it additionally runs the static
/// DPM-transparency slice and prints the verdict
/// (transparent/leaks/inconclusive); a static `transparent` is sound (it
/// implies the exact weak-bisimulation verdict of `check`), the other two
/// are advisory.  Same inputs, formats and exit contract as `lint`.
///
/// `--precheck` on check/solve/sweep runs the same flow passes first:
/// `check --precheck` skips the exact weak-bisimulation comparison when the
/// static slice already proves transparency; solve/sweep abort (exit 4) on
/// flow *errors* before composing.
///
/// Exit status: 0 = check passed / command succeeded, 1 = check or lint
/// failed, 2 = usage error, 3 = Æmilia parse error, 4 = analysis error
/// (lint errors under a non-lint command, numerical failure, bad measure,
/// unwritable output, ...), 5 = sweep interrupted gracefully (SIGINT/
/// SIGTERM: in-flight points drained, checkpoint and partial artifacts
/// written), 6 = sweep completed but some points failed after their retry
/// budget (artifacts written; failed points carry "error" records).  Trace
/// and metrics files are written even when the command fails — a trace of
/// a failing run is precisely the one worth looking at.
///
/// Fault tolerance on sweep/lifetime: --checkpoint PATH appends one durable
/// JSONL record per finished point (exp/checkpoint.hpp; survives kill -9
/// modulo a torn final line), --resume restores the points the checkpoint
/// already holds — resumed runs are bit-identical to uninterrupted ones
/// (set DPMA_RESULT_TIMING=0 to byte-compare artifacts) — and --retries N
/// re-runs a throwing point up to N extra times before recording it as
/// failed instead of aborting the sweep.  Every file artifact (--json,
/// --csv, --trace, --metrics, --report) is written atomically: temp file +
/// fsync + rename, so no crash or full disk leaves a truncated artifact
/// behind.
///
/// `lifetime` runs a battery lifetime study (src/battery) on a built-in
/// case-study system: capacity x {NO-DPM, DPM} sweep, each point replaying
/// simulated trajectories into a fresh battery plus the analytic
/// fluid/refined bounds from the CTMC.  Battery parameters must be positive
/// and finite (kibam-c strictly inside (0,1)); anything else is a usage
/// error (exit 2).
///
/// `report` is the perf-regression gate (exp/regress.hpp): it loads two run
/// records (as written by --report or a bench binary), pairs their result
/// series by experiment and point, and prints a verdict table of
/// bootstrap-CI'd time ratios.  Exit 0 when no series regressed beyond
/// --threshold (default 1.20), 1 on a significant regression, 4 when either
/// file is unreadable, invalid JSON, or not a run record.
///
/// `sweep` solves the model at every point of a parameter range on the
/// experiment engine (src/exp): the model is composed *once*, and each point
/// patches the exponential rate of the transitions matching I.action (either
/// side of a synchronised label, as in measure ENABLED predicates) before
/// re-extracting and solving the CTMC — the state space is reused across the
/// whole sweep.  Points run in parallel (--jobs, default DPMA_JOBS /
/// hardware_concurrency); results are identical for every jobs count.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "analysis/flow/analyze.hpp"
#include "analysis/lint.hpp"
#include "battery/lifetime.hpp"
#include "bisim/hml.hpp"
#include "core/error.hpp"
#include "core/text.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "exp/cache.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/regress.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/shutdown.hpp"
#include "lts/dot.hpp"
#include "lts/ops.hpp"
#include "noninterference/noninterference.hpp"
#include "obs/atomic_write.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

/// Run record of this invocation (--report); commands that produce a
/// ResultSet attach it as a series.  Null without --report.
dpma::obs::RunReport* g_run_report = nullptr;

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  dpma_cli info     <model.aem>\n"
                 "  dpma_cli dot      <model.aem>\n"
                 "  dpma_cli lint     <model.aem|dir>... [<measures.msr>] "
                 "[--format text|json|sarif]\n"
                 "  dpma_cli analyze  <model.aem|dir>... [<measures.msr>] "
                 "[--format text|json|sarif] [--high L1,L2,... --low INSTANCE]\n"
                 "  dpma_cli check    <model.aem> --high L1,L2,... --low INSTANCE "
                 "[--traces] [--precheck]\n"
                 "  dpma_cli solve    <model.aem> <measures.msr> [--precheck]\n"
                 "  dpma_cli simulate <model.aem> <measures.msr> [--horizon H] "
                 "[--warmup W] [--reps N] [--seed S] [--confidence C]\n"
                 "  dpma_cli sweep    <model.aem> <measures.msr> "
                 "--param <instance.action>=<lo>:<hi>:<steps> [--jobs N] "
                 "[--json PATH|-] [--csv PATH|-] [--precheck] "
                 "[--checkpoint PATH [--resume]] [--retries N]\n"
                 "  dpma_cli lifetime <rpc|streaming> "
                 "[--battery ideal|peukert|kibam] [--capacity lo:hi:steps] "
                 "[--control C] [--reps N] [--seed S] [--confidence C] "
                 "[--jobs N] [--horizon-factor F] [--peukert-exponent A] "
                 "[--peukert-ref P] [--kibam-c C] [--kibam-rate K] "
                 "[--format text|json] [--json PATH|-] [--csv PATH|-] "
                 "[--checkpoint PATH [--resume]] [--retries N]\n"
                 "  dpma_cli report   <old.json> <new.json> [--threshold R] "
                 "[--confidence C] [--resamples N] [--seed S]\n"
                 "global options (any command): [--trace FILE] [--metrics FILE] "
                 "[--report FILE] [--events FILE] "
                 "[--log-level error|warn|info|debug]\n");
    std::exit(2);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/// Parses and lints \p path.  ParseError propagates (exit 3); lint errors
/// print their diagnostics to stderr and throw Error (exit 4) so the model
/// never reaches composition.  Lint warnings are printed and tolerated.
adl::ArchiType load_archi(const std::string& path) {
    adl::ArchiType archi = aemilia::parse_archi_type_unchecked(read_file(path));
    const analysis::LintResult lint = analysis::lint_model(archi, path);
    if (!lint.diagnostics.empty()) {
        std::fputs(analysis::render_text(lint.diagnostics).c_str(), stderr);
    }
    if (!lint.ok()) {
        throw Error(path + " failed semantic analysis with " +
                    std::to_string(lint.error_count()) +
                    " error(s); diagnostics above, or run `dpma_cli lint`");
    }
    return archi;
}

adl::ComposedModel load_model(const std::string& path) {
    return adl::compose(load_archi(path));
}

/// Parses and lints a measure file against the architecture it will be
/// evaluated on.  Same contract as load_archi.
std::vector<adl::Measure> load_measures(const std::string& path, const adl::ArchiType& archi,
                                        const std::string& archi_path) {
    std::vector<adl::Measure> measures = aemilia::parse_measures(read_file(path));
    analysis::LintResult lint;
    analysis::lint_measures(archi, measures, path, archi_path, lint);
    if (!lint.diagnostics.empty()) {
        std::fputs(analysis::render_text(lint.diagnostics).c_str(), stderr);
    }
    if (!lint.ok()) {
        throw Error(path + " failed semantic analysis with " +
                    std::to_string(lint.error_count()) +
                    " error(s); diagnostics above, or run `dpma_cli lint`");
    }
    return measures;
}

/// Pulls `--name value` out of the argument list; returns fallback when absent.
std::string option(std::vector<std::string>& args, const std::string& name,
                   const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == name) {
            const std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    return fallback;
}

bool flag(std::vector<std::string>& args, const std::string& name) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

int cmd_info(const std::string& path) {
    const adl::ComposedModel model = load_model(path);
    std::printf("architecture: %zu instances, %zu states, %zu transitions\n",
                model.instance_names.size(), model.graph.num_states(),
                model.graph.num_transitions());
    std::printf("instances:");
    for (const std::string& name : model.instance_names) std::printf(" %s", name.c_str());
    std::printf("\n");
    const auto deadlocks = lts::deadlock_states(model.graph);
    std::printf("deadlock states: %zu\n", deadlocks.size());
    std::printf("action labels:\n");
    const auto& table = *model.graph.actions();
    for (Symbol a = 1; a < table.size(); ++a) {
        // Show only labels that actually occur on transitions.
        bool used = false;
        for (lts::StateId s = 0; s < model.graph.num_states() && !used; ++s) {
            for (const lts::Transition& t : model.graph.out(s)) {
                if (t.action == a) {
                    used = true;
                    break;
                }
            }
        }
        if (used) std::printf("  %s\n", table.name(a).c_str());
    }
    return 0;
}

int cmd_dot(const std::string& path) {
    const adl::ComposedModel model = load_model(path);
    lts::DotOptions options;
    options.max_states = 2000;
    std::fputs(lts::to_dot(model.graph, options).c_str(), stdout);
    return 0;
}

/// Expands a mix of .aem files and directories (searched recursively for
/// *.aem, sorted for stable output) into the list of spec files to process.
std::vector<std::string> collect_spec_files(const std::vector<std::string>& inputs) {
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string& input : inputs) {
        std::error_code ec;
        if (fs::is_directory(input, ec)) {
            std::vector<std::string> found;
            for (const auto& entry : fs::recursive_directory_iterator(input)) {
                if (entry.is_regular_file() && entry.path().extension() == ".aem") {
                    found.push_back(entry.path().string());
                }
            }
            if (found.empty()) throw Error("no .aem files under " + input);
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            files.push_back(input);
        }
    }
    return files;
}

/// Shared front end of `lint` and `analyze`: positional inputs (files or
/// directories), with a trailing .msr peeled off as the measure file of a
/// single-spec invocation.
struct SpecInputs {
    std::vector<std::string> files;
    std::string measures_path;
};

SpecInputs parse_spec_inputs(const std::string& first, std::vector<std::string>& args) {
    std::vector<std::string> inputs{first};
    while (!args.empty() && !args[0].empty() && args[0][0] != '-') {
        inputs.push_back(args[0]);
        args.erase(args.begin());
    }
    SpecInputs out;
    if (inputs.size() >= 2 && inputs.back().size() > 4 &&
        inputs.back().rfind(".msr") == inputs.back().size() - 4) {
        out.measures_path = inputs.back();
        inputs.pop_back();
    }
    out.files = collect_spec_files(inputs);
    if (!out.measures_path.empty() && out.files.size() != 1) {
        throw Error("a measure file needs exactly one specification, got " +
                    std::to_string(out.files.size()));
    }
    return out;
}

int cmd_lint(const std::string& model_path, std::vector<std::string> args) {
    const std::string format = option(args, "--format", "text");
    SpecInputs inputs = parse_spec_inputs(model_path, args);
    if (!args.empty() || (format != "text" && format != "json" && format != "sarif")) {
        usage();
    }

    std::vector<analysis::Diagnostic> merged;
    bool ok = true;
    for (const std::string& file : inputs.files) {
        const std::string spec_text = read_file(file);
        analysis::LintResult result;
        if (inputs.measures_path.empty()) {
            result = analysis::lint_text(spec_text, file);
        } else {
            result = analysis::lint_text(spec_text, file,
                                         read_file(inputs.measures_path),
                                         inputs.measures_path);
        }
        ok = ok && result.ok();
        if (format == "text" && result.clean()) {
            std::printf("%s: no problems found\n", file.c_str());
        }
        merged.insert(merged.end(), result.diagnostics.begin(),
                      result.diagnostics.end());
    }
    if (format == "json") {
        std::fputs(analysis::render_json(merged).c_str(), stdout);
    } else if (format == "sarif") {
        std::fputs(analysis::render_sarif(merged, "dpma-lint").c_str(), stdout);
    } else if (!merged.empty()) {
        std::fputs(analysis::render_text(merged).c_str(), stdout);
    }
    return ok ? 0 : 1;
}

int cmd_analyze(const std::string& model_path, std::vector<std::string> args) {
    const std::string format = option(args, "--format", "text");
    const std::string high = option(args, "--high", "");
    const std::string low = option(args, "--low", "");
    SpecInputs inputs = parse_spec_inputs(model_path, args);
    if (!args.empty() || (format != "text" && format != "json" && format != "sarif")) {
        usage();
    }
    if (high.empty() != low.empty()) usage();

    analysis::flow::AnalyzeOptions options;
    if (!high.empty()) {
        if (inputs.files.size() != 1) {
            throw Error("--high/--low slice one architecture; pass a single spec");
        }
        for (const std::string& label : split(high, ',')) {
            options.high_labels.emplace_back(trim(label));
        }
        options.low_instance = low;
    }

    std::vector<analysis::Diagnostic> merged;
    std::optional<analysis::flow::TransparencyResult> transparency;
    bool ok = true;
    for (const std::string& file : inputs.files) {
        const std::string spec_text = read_file(file);
        analysis::flow::AnalyzeResult result;
        if (inputs.measures_path.empty()) {
            result = analysis::flow::analyze_text(spec_text, file, options);
        } else {
            result = analysis::flow::analyze_text(spec_text, file,
                                                  read_file(inputs.measures_path),
                                                  inputs.measures_path, options);
        }
        ok = ok && result.ok();
        if (format == "text" && result.clean()) {
            std::printf("%s: no problems found\n", file.c_str());
        }
        const std::vector<analysis::Diagnostic> all = result.all();
        merged.insert(merged.end(), all.begin(), all.end());
        if (result.transparency) transparency = std::move(result.transparency);
    }

    if (format == "json") {
        std::string json = analysis::render_json(merged);
        if (transparency) {
            // Splice the verdict object before the closing "\n}\n".
            json.resize(json.size() - 3);
            json += ",\n  \"transparency\": {\"verdict\": " +
                    obs::json_quote(
                        analysis::flow::verdict_name(transparency->verdict)) +
                    ", \"reason\": " + obs::json_quote(transparency->reason) +
                    ", \"slice_states\": " +
                    std::to_string(transparency->slice_states) + ", \"slice\": [";
            for (std::size_t i = 0; i < transparency->slice_instances.size(); ++i) {
                if (i != 0) json += ", ";
                json += obs::json_quote(transparency->slice_instances[i]);
            }
            json += "], \"leak_chain\": [";
            for (std::size_t i = 0; i < transparency->leak_chain.size(); ++i) {
                if (i != 0) json += ", ";
                json += obs::json_quote(transparency->leak_chain[i]);
            }
            json += "]}\n}\n";
        }
        std::fputs(json.c_str(), stdout);
    } else if (format == "sarif") {
        std::fputs(analysis::render_sarif(merged, "dpma-analyze").c_str(), stdout);
    } else {
        if (!merged.empty()) {
            std::fputs(analysis::render_text(merged).c_str(), stdout);
        }
        if (transparency) {
            std::printf("transparency (static): %s\n",
                        analysis::flow::verdict_name(transparency->verdict));
            std::printf("  %s\n", transparency->reason.c_str());
            for (const std::string& link : transparency->leak_chain) {
                std::printf("  leak chain: %s\n", link.c_str());
            }
        }
    }
    return ok ? 0 : 1;
}

/// The `--precheck` pre-pass of solve/sweep: flow analyses on the linted
/// architecture, diagnostics to stderr, flow *errors* abort (exit 4).
void run_precheck(const adl::ArchiType& archi, const std::string& path) {
    analysis::flow::AnalyzeResult result =
        analysis::flow::analyze_model(archi, path, analysis::LintResult{});
    if (!result.flow.empty()) {
        std::fputs(analysis::render_text(result.flow).c_str(), stderr);
    }
    if (!result.ok()) {
        throw Error(path + " failed the flow precheck with " +
                    std::to_string(result.error_count()) +
                    " error(s); diagnostics above, or run `dpma_cli analyze`");
    }
}

int cmd_check(const std::string& path, std::vector<std::string> args) {
    const std::string high = option(args, "--high", "");
    const std::string low = option(args, "--low", "");
    const bool traces = flag(args, "--traces");
    const bool precheck = flag(args, "--precheck");
    if (high.empty() || low.empty() || !args.empty()) usage();

    const adl::ArchiType archi = load_archi(path);
    std::vector<std::string> high_labels;
    for (const std::string& label : split(high, ',')) {
        high_labels.emplace_back(trim(label));
    }

    if (precheck && !traces) {
        // The static slice can only *prove* transparency; any other verdict
        // (including precheck setup errors) falls through to the exact check.
        try {
            analysis::flow::TransparencyOptions transparency_options;
            transparency_options.high_labels = high_labels;
            transparency_options.low_instance = low;
            const analysis::flow::TransparencyResult verdict =
                analysis::flow::analyze_transparency(archi, transparency_options);
            std::printf("static precheck: %s\n  %s\n",
                        analysis::flow::verdict_name(verdict.verdict),
                        verdict.reason.c_str());
            if (verdict.verdict == analysis::flow::TransparencyVerdict::Transparent) {
                std::printf("noninterference (weak bisimulation): PASS "
                            "(proved statically, exact check skipped)\n");
                return 0;
            }
        } catch (const Error& e) {
            std::fprintf(stderr, "static precheck unavailable: %s\n", e.what());
        }
    }

    const adl::ComposedModel model = adl::compose(archi);

    if (traces) {
        const auto verdict =
            noninterference::check_dpm_trace_transparency(model, high_labels, low);
        std::printf("trace-based noninterference (SNNI): %s\n",
                    verdict.noninterfering ? "PASS" : "FAIL");
        if (!verdict.noninterfering) {
            std::printf("distinguishing trace:");
            for (const std::string& a : verdict.distinguishing_trace) {
                std::printf(" %s", a.c_str());
            }
            std::printf("\n");
        }
        return verdict.noninterfering ? 0 : 1;
    }

    const auto verdict =
        noninterference::check_dpm_transparency(model, high_labels, low);
    std::printf("noninterference (weak bisimulation): %s\n",
                verdict.noninterfering ? "PASS" : "FAIL");
    if (!verdict.noninterfering) {
        std::printf("distinguishing formula:\n%s\n",
                    bisim::to_two_towers(verdict.formula).c_str());
    }
    return verdict.noninterfering ? 0 : 1;
}

int cmd_solve(const std::string& model_path, const std::string& measures_path,
              std::vector<std::string> args) {
    const bool precheck = flag(args, "--precheck");
    if (!args.empty()) usage();
    const adl::ArchiType archi = load_archi(model_path);
    if (precheck) run_precheck(archi, model_path);
    const auto measures = load_measures(measures_path, archi, model_path);
    const adl::ComposedModel model = adl::compose(archi);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    std::printf("CTMC: %zu tangible states\n", markov.chain.num_states());
    for (const adl::Measure& m : measures) {
        std::printf("%-24s = %.12g\n", m.name.c_str(),
                    ctmc::evaluate_measure(markov, model, pi, m));
    }
    return 0;
}

int cmd_simulate(const std::string& model_path, const std::string& measures_path,
                 std::vector<std::string> args) {
    const double horizon = std::strtod(option(args, "--horizon", "10000").c_str(), nullptr);
    const double warmup = std::strtod(option(args, "--warmup", "0").c_str(), nullptr);
    const int reps = std::atoi(option(args, "--reps", "10").c_str());
    const auto seed =
        static_cast<std::uint64_t>(std::strtoull(option(args, "--seed", "1").c_str(),
                                                 nullptr, 10));
    const double confidence =
        std::strtod(option(args, "--confidence", "0.90").c_str(), nullptr);
    if (!args.empty()) usage();

    const adl::ArchiType archi = load_archi(model_path);
    const auto measures = load_measures(measures_path, archi, model_path);
    const adl::ComposedModel model = adl::compose(archi);
    const sim::Simulator simulator(model, measures);
    sim::SimOptions options;
    options.horizon = horizon;
    options.warmup = warmup;
    options.seed = seed;
    // Replications fan out over DPMA_JOBS workers; estimates are
    // bit-identical to the serial path for any jobs count.
    exp::ThreadPool pool;
    const auto estimates =
        exp::simulate_replications(simulator, options, reps, confidence, pool);
    std::printf("simulated %d replications of horizon %g (warmup %g), %.0f%% CIs\n",
                reps, horizon, warmup, confidence * 100.0);
    for (std::size_t m = 0; m < measures.size(); ++m) {
        std::printf("%-24s = %.8g ± %.3g\n", measures[m].name.c_str(),
                    estimates[m].mean, estimates[m].half_width);
    }
    return 0;
}

/// Writes \p text to \p path, or to stdout when \p path is "-".  File
/// writes are atomic (obs::atomic_write: temp + fsync + rename) and both
/// paths check the stream state — a full disk exits nonzero with the path
/// in the message instead of leaving a truncated artifact behind.
void write_output(const std::string& path, const std::string& text) {
    if (path == "-") {
        if (std::fputs(text.c_str(), stdout) == EOF || std::fflush(stdout) != 0) {
            throw Error("cannot write to stdout");
        }
        return;
    }
    obs::atomic_write(path, text);
}

/// Maps a sweep outcome to the CLI exit code — 0 complete, 5 interrupted,
/// 6 finished with failed points — and prints the failure/interrupt summary
/// to stderr (per-point errors, and how to resume when a checkpoint exists).
int sweep_status(const exp::RunOutcome& outcome, const std::string& checkpoint_path) {
    for (std::size_t i = 0; i < outcome.results.size(); ++i) {
        const exp::PointRecord& record = outcome.results.at(i);
        if (!record.result.failed()) continue;
        std::fprintf(stderr, "dpma_cli: point %zu failed after %d attempt(s): %s\n",
                     record.point.index, record.result.attempts,
                     record.result.error.c_str());
    }
    if (outcome.restored > 0) {
        std::fprintf(stderr, "dpma_cli: restored %zu point(s) from checkpoint\n",
                     outcome.restored);
    }
    if (outcome.interrupted) {
        std::fprintf(stderr,
                     "dpma_cli: sweep interrupted: %zu/%zu point(s) done, "
                     "%zu skipped%s%s\n",
                     outcome.completed + outcome.restored + outcome.failed,
                     outcome.total, outcome.skipped,
                     checkpoint_path.empty() ? "" : "; resume with --resume --checkpoint ",
                     checkpoint_path.c_str());
        return 5;
    }
    if (outcome.failed > 0) {
        std::fprintf(stderr, "dpma_cli: sweep finished with %zu failed point(s)\n",
                     outcome.failed);
        return 6;
    }
    return 0;
}

/// Shared parse of the fault-tolerance flags on sweep/lifetime.
struct FaultToleranceArgs {
    std::string checkpoint_path;
    bool resume = false;
    int retries = 0;
};

FaultToleranceArgs parse_fault_tolerance(std::vector<std::string>& args) {
    FaultToleranceArgs out;
    out.checkpoint_path = option(args, "--checkpoint", "");
    out.resume = flag(args, "--resume");
    const std::string retries_text = option(args, "--retries", "0");
    char* end = nullptr;
    const long retries = std::strtol(retries_text.c_str(), &end, 10);
    if (end == retries_text.c_str() || *end != '\0' || retries < 0) {
        throw Error("--retries wants a non-negative integer, got '" + retries_text +
                    "'");
    }
    out.retries = static_cast<int>(retries);
    if (out.resume && out.checkpoint_path.empty()) {
        throw Error("--resume requires --checkpoint PATH");
    }
    return out;
}

int cmd_sweep(const std::string& model_path, const std::string& measures_path,
              std::vector<std::string> args) {
    const std::string param = option(args, "--param", "");
    const std::string jobs_text = option(args, "--jobs", "0");
    const std::string json_path = option(args, "--json", "");
    const std::string csv_path = option(args, "--csv", "");
    FaultToleranceArgs fault_tolerance;
    try {
        fault_tolerance = parse_fault_tolerance(args);
    } catch (const Error& e) {
        std::fprintf(stderr, "dpma_cli: sweep: %s\n", e.what());
        return 2;
    }
    const bool precheck = flag(args, "--precheck");
    if (param.empty() || !args.empty()) usage();
    // From here on Ctrl-C / SIGTERM means "stop dispatching, drain, write
    // the checkpoint and partial artifacts, exit 5" — not instant death.
    exp::install_shutdown_handler();

    // --param instance.action=lo:hi:steps
    const std::size_t eq = param.find('=');
    if (eq == std::string::npos) usage();
    const std::string target = param.substr(0, eq);
    const std::size_t dot = target.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == target.size()) {
        throw Error("--param needs instance.action, got '" + target + "'");
    }
    const std::string instance = target.substr(0, dot);
    const std::string action = target.substr(dot + 1);
    const auto range = split(param.substr(eq + 1), ':');
    if (range.size() != 3) usage();
    const double lo = std::strtod(range[0].c_str(), nullptr);
    const double hi = std::strtod(range[1].c_str(), nullptr);
    const long steps = std::atol(range[2].c_str());
    if (!(lo > 0.0) || !(hi >= lo) || steps < 1) {
        throw Error("--param range must satisfy 0 < lo <= hi, steps >= 1");
    }
    char* jobs_end = nullptr;
    const auto jobs = static_cast<std::size_t>(std::strtoul(jobs_text.c_str(), &jobs_end, 10));
    if (jobs_end == jobs_text.c_str() || *jobs_end != '\0') {
        throw Error("--jobs needs a non-negative integer, got '" + jobs_text + "'");
    }

    const adl::ArchiType archi = load_archi(model_path);
    if (precheck) run_precheck(archi, model_path);
    const auto measures = load_measures(measures_path, archi, model_path);

    // Compose once; every sweep point patches this skeleton's rates.
    exp::ModelCache cache;
    const auto skeleton = cache.composed(
        "sweep", [&] { return adl::compose(archi); });
    // Validate the parameter before fanning out: a typo should die with one
    // clear message, not once per point.
    (void)exp::with_exp_rate(*skeleton, instance, action, lo);

    exp::Experiment experiment;
    experiment.name = "sweep " + target;
    experiment.grid.axis(exp::Axis::linspace(target, lo, hi,
                                             static_cast<std::size_t>(steps)));
    for (const adl::Measure& m : measures) experiment.measures.push_back(m.name);
    experiment.eval = [&](const exp::Point& point, const exp::PointContext&) {
        const adl::ComposedModel model =
            exp::with_exp_rate(*skeleton, instance, action, point.at(target));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        ctmc::SolveDiagnostics diagnostics;
        ctmc::SolveOptions solve_options;
        solve_options.diagnostics = &diagnostics;
        const auto pi = ctmc::steady_state(markov.chain, solve_options);
        exp::PointResult result;
        for (const adl::Measure& m : measures) {
            result.values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
        }
        result.diagnostics = diagnostics.json();
        return result;
    };

    exp::RunOptions run_options;
    run_options.jobs = jobs;
    run_options.retries = fault_tolerance.retries;
    run_options.checkpoint_path = fault_tolerance.checkpoint_path;
    run_options.resume = fault_tolerance.resume;
    const exp::RunOutcome outcome = exp::run_sweep(experiment, run_options);
    const exp::ResultSet& results = outcome.results;

    std::printf("sweep of exponential rate %s over [%g, %g], %ld points, jobs=%zu\n",
                target.c_str(), lo, hi, steps,
                jobs == 0 ? exp::default_jobs() : jobs);
    std::printf("%-16s", "rate");
    for (const std::string& m : results.measures()) std::printf(" %-18s", m.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::printf("%-16.6g", results.at(i).point.coords[0].second);
        for (const double v : results.at(i).result.values) std::printf(" %-18.10g", v);
        std::printf("\n");
    }
    // Registry totals, not cache.stats(): the same numbers --metrics dumps.
    const exp::ModelCache::Stats stats = exp::ModelCache::global_stats();
    std::printf("cache: %llu hits, %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));

    if (g_run_report != nullptr) g_run_report->add_series(results.json());
    if (!json_path.empty()) write_output(json_path, results.json());
    if (!csv_path.empty()) write_output(csv_path, results.csv());
    return sweep_status(outcome, fault_tolerance.checkpoint_path);
}

/// Strict full-string double parse; rejects trailing garbage.
bool parse_double(const std::string& text, double* out) {
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end != text.c_str() && *end == '\0';
}

/// Prints a lifetime usage error and returns the usage exit code (2): the
/// battery parameters are command-line arguments, so a bad value is a usage
/// error, not an analysis failure.
int lifetime_usage_error(const std::string& message) {
    std::fprintf(stderr, "dpma_cli: lifetime: %s\n", message.c_str());
    return 2;
}

int cmd_lifetime(const std::string& system, std::vector<std::string> args) {
    const std::string battery_name = option(args, "--battery", "kibam");
    const std::string capacity_text = option(args, "--capacity", "1000:4000:4");
    const std::string control_text = option(args, "--control", "-1");
    const std::string reps_text = option(args, "--reps", "5");
    const std::string seed_text = option(args, "--seed", "1");
    const std::string confidence_text = option(args, "--confidence", "0.95");
    const std::string jobs_text = option(args, "--jobs", "0");
    const std::string horizon_text = option(args, "--horizon-factor", "8");
    const std::string peukert_exp_text = option(args, "--peukert-exponent", "1.2");
    const std::string peukert_ref_text = option(args, "--peukert-ref", "1");
    const std::string kibam_c_text = option(args, "--kibam-c", "0.5");
    const std::string kibam_rate_text = option(args, "--kibam-rate", "0.001");
    const std::string format = option(args, "--format", "text");
    const std::string json_path = option(args, "--json", "");
    const std::string csv_path = option(args, "--csv", "");
    FaultToleranceArgs fault_tolerance;
    try {
        fault_tolerance = parse_fault_tolerance(args);
    } catch (const Error& e) {
        return lifetime_usage_error(e.what());
    }
    if (!args.empty()) usage();
    if (format != "text" && format != "json") {
        return lifetime_usage_error("--format wants text or json, got '" + format + "'");
    }

    battery::StudyOptions options;
    options.system = system;
    if (system != "rpc" && system != "streaming") {
        return lifetime_usage_error("unknown system '" + system +
                                    "' (expected rpc or streaming)");
    }
    try {
        options.battery.kind = battery::BatteryParams::kind_from(battery_name);
    } catch (const Error& e) {
        return lifetime_usage_error(e.what());
    }

    // --capacity lo:hi:steps (linear; steps == 1 keeps just lo).
    const auto range = split(capacity_text, ':');
    double lo = 0.0, hi = 0.0;
    double steps_value = 0.0;
    if (range.size() != 3 || !parse_double(range[0], &lo) ||
        !parse_double(range[1], &hi) || !parse_double(range[2], &steps_value) ||
        steps_value != std::floor(steps_value)) {
        return lifetime_usage_error("--capacity wants lo:hi:steps, got '" +
                                    capacity_text + "'");
    }
    const auto steps = static_cast<long>(steps_value);
    if (!std::isfinite(lo) || lo <= 0.0 || !std::isfinite(hi) || hi < lo || steps < 1) {
        return lifetime_usage_error(
            "--capacity range must satisfy 0 < lo <= hi, steps >= 1");
    }
    const exp::Axis capacity_axis =
        exp::Axis::linspace("capacity", lo, hi, static_cast<std::size_t>(steps));
    options.capacities = capacity_axis.values;

    // Every numeric battery/study parameter must parse and pass validate();
    // both failures are usage errors by the exit-code contract.
    struct NumericArg {
        const std::string* text;
        double* target;
        const char* name;
    };
    const NumericArg numeric[] = {
        {&control_text, &options.control, "--control"},
        {&confidence_text, &options.confidence, "--confidence"},
        {&horizon_text, &options.horizon_factor, "--horizon-factor"},
        {&peukert_exp_text, &options.battery.peukert_exponent, "--peukert-exponent"},
        {&peukert_ref_text, &options.battery.peukert_reference_power, "--peukert-ref"},
        {&kibam_c_text, &options.battery.kibam_c, "--kibam-c"},
        {&kibam_rate_text, &options.battery.kibam_rate, "--kibam-rate"},
    };
    for (const NumericArg& arg : numeric) {
        if (!parse_double(*arg.text, arg.target)) {
            return lifetime_usage_error(std::string(arg.name) +
                                        " wants a number, got '" + *arg.text + "'");
        }
    }
    char* end = nullptr;
    const long reps = std::strtol(reps_text.c_str(), &end, 10);
    if (end == reps_text.c_str() || *end != '\0' || reps < 1) {
        return lifetime_usage_error("--reps wants a positive integer, got '" +
                                    reps_text + "'");
    }
    options.replications = static_cast<int>(reps);
    options.base_seed =
        static_cast<std::uint64_t>(std::strtoull(seed_text.c_str(), &end, 10));
    if (end == seed_text.c_str() || *end != '\0') {
        return lifetime_usage_error("--seed wants an unsigned integer, got '" +
                                    seed_text + "'");
    }
    const auto jobs = std::strtoul(jobs_text.c_str(), &end, 10);
    if (end == jobs_text.c_str() || *end != '\0') {
        return lifetime_usage_error("--jobs wants a non-negative integer, got '" +
                                    jobs_text + "'");
    }
    options.jobs = static_cast<std::size_t>(jobs);
    options.retries = fault_tolerance.retries;
    options.checkpoint_path = fault_tolerance.checkpoint_path;
    options.resume = fault_tolerance.resume;
    try {
        options.validate();
    } catch (const Error& e) {
        return lifetime_usage_error(e.what());
    }

    exp::install_shutdown_handler();
    const exp::RunOutcome outcome = battery::run_lifetime_sweep(options);
    const exp::ResultSet& results = outcome.results;
    if (format == "json") {
        std::fputs(results.json().c_str(), stdout);
    } else {
        std::printf("lifetime study: %s system, %s battery, %zu capacities x "
                    "{NO-DPM, DPM}, %d replications\n",
                    options.system.c_str(), options.battery.kind_name(),
                    options.capacities.size(), options.replications);
        std::printf("%-12s %-6s", "capacity", "dpm");
        for (const std::string& m : results.measures()) std::printf(" %-14s", m.c_str());
        std::printf("\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const exp::PointRecord& record = results.at(i);
            std::printf("%-12.6g %-6.0f", record.point.at("capacity"),
                        record.point.at("dpm"));
            for (const double v : record.result.values) std::printf(" %-14.8g", v);
            std::printf("\n");
        }
    }
    if (g_run_report != nullptr) g_run_report->add_series(results.json());
    if (!json_path.empty()) write_output(json_path, results.json());
    if (!csv_path.empty()) write_output(csv_path, results.csv());
    return sweep_status(outcome, fault_tolerance.checkpoint_path);
}

/// `report` — the perf-regression gate over two run records.
int cmd_report(const std::string& old_path, std::vector<std::string> args) {
    const std::string threshold_text = option(args, "--threshold", "1.20");
    const std::string confidence_text = option(args, "--confidence", "0.95");
    const std::string resamples_text = option(args, "--resamples", "2000");
    const std::string seed_text = option(args, "--seed", "42");
    if (args.size() != 1) usage();
    const std::string new_path = args[0];

    exp::RegressOptions options;
    if (!parse_double(threshold_text, &options.threshold) ||
        !parse_double(confidence_text, &options.confidence)) {
        std::fprintf(stderr, "dpma_cli: report: --threshold/--confidence want "
                             "numbers\n");
        return 2;
    }
    char* end = nullptr;
    const long resamples = std::strtol(resamples_text.c_str(), &end, 10);
    if (end == resamples_text.c_str() || *end != '\0' || resamples < 1) {
        std::fprintf(stderr, "dpma_cli: report: --resamples wants a positive "
                             "integer, got '%s'\n", resamples_text.c_str());
        return 2;
    }
    options.resamples = static_cast<int>(resamples);
    options.seed = static_cast<std::uint64_t>(
        std::strtoull(seed_text.c_str(), &end, 10));
    if (end == seed_text.c_str() || *end != '\0') {
        std::fprintf(stderr, "dpma_cli: report: --seed wants an unsigned "
                             "integer, got '%s'\n", seed_text.c_str());
        return 2;
    }
    try {
        options.validate();
    } catch (const Error& e) {
        std::fprintf(stderr, "dpma_cli: report: %s\n", e.what());
        return 2;
    }

    // Parse errors and schema mismatches propagate as Error -> exit 4.
    const obs::Json older = obs::json_parse(read_file(old_path));
    const obs::Json newer = obs::json_parse(read_file(new_path));
    const exp::RegressReport report = exp::compare_reports(older, newer, options);

    std::printf("perf regression report: %s -> %s (threshold %.3gx, %.0f%% CI, "
                "%d resamples)\n\n",
                old_path.c_str(), new_path.c_str(), options.threshold,
                options.confidence * 100.0, options.resamples);
    std::fputs(report.table().c_str(), stdout);
    std::printf("\nverdict: %s\n", report.regression ? "REGRESSION" : "PASS");
    return report.regression ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

    // Instrumentation options come out first so they work with any command
    // in any position.
    const std::string level_text = option(args, "--log-level", "");
    const std::string trace_path = option(args, "--trace", "");
    const std::string metrics_path = option(args, "--metrics", "");
    const std::string report_file = option(args, "--report", "");
    const std::string events_path = option(args, "--events", "");
    if (!events_path.empty()) {
        // Same channel the bench binaries use: exp::run picks it up through
        // events_from_env().
        setenv("DPMA_EVENTS", events_path.c_str(), 1);
    }
    obs::RunReport run_report("dpma_cli");
    if (!report_file.empty()) {
        run_report.set_args(std::vector<std::string>(argv, argv + argc));
        g_run_report = &run_report;
    }
    if (!level_text.empty()) {
        obs::LogLevel level = obs::LogLevel::Warn;
        if (!obs::parse_log_level(level_text, &level)) {
            std::fprintf(stderr,
                         "dpma_cli: --log-level wants error|warn|info|debug, got '%s'\n",
                         level_text.c_str());
            return 2;
        }
        obs::set_log_level(level);
    }
    if (!trace_path.empty()) obs::set_tracing(true);

    if (args.size() < 2) usage();
    const std::string command = args[0];
    const std::string model_path = args[1];
    std::vector<std::string> rest(args.begin() + 2, args.end());

    const auto write_artifacts = [&] {
        try {
            if (!trace_path.empty()) write_output(trace_path, obs::trace_json());
            if (!metrics_path.empty()) write_output(metrics_path, obs::metrics_json());
            // Like the trace: the record of a failing run is the useful one.
            if (g_run_report != nullptr) g_run_report->write(report_file);
        } catch (const Error& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
        }
    };

    int status = 0;
    try {
        if (command == "info" && rest.empty()) {
            status = cmd_info(model_path);
        } else if (command == "dot" && rest.empty()) {
            status = cmd_dot(model_path);
        } else if (command == "lint") {
            status = cmd_lint(model_path, std::move(rest));
        } else if (command == "analyze") {
            status = cmd_analyze(model_path, std::move(rest));
        } else if (command == "check") {
            status = cmd_check(model_path, std::move(rest));
        } else if (command == "solve" && !rest.empty()) {
            const std::string measures_path = rest[0];
            rest.erase(rest.begin());
            status = cmd_solve(model_path, measures_path, std::move(rest));
        } else if (command == "simulate" && !rest.empty()) {
            const std::string measures_path = rest[0];
            rest.erase(rest.begin());
            status = cmd_simulate(model_path, measures_path, std::move(rest));
        } else if (command == "sweep" && !rest.empty()) {
            const std::string measures_path = rest[0];
            rest.erase(rest.begin());
            status = cmd_sweep(model_path, measures_path, std::move(rest));
        } else if (command == "lifetime") {
            status = cmd_lifetime(model_path, std::move(rest));
        } else if (command == "report" && !rest.empty()) {
            status = cmd_report(model_path, std::move(rest));
        } else {
            usage();
        }
    } catch (const ParseError& e) {
        std::fprintf(stderr, "parse error at %d:%d: %s\n", e.line(), e.column(),
                     e.what());
        status = 3;
    } catch (const ModelError& e) {
        if (e.line() > 0) {
            std::fprintf(stderr, "model error at %d:%d: %s\n", e.line(), e.column(),
                         e.what());
        } else {
            std::fprintf(stderr, "error: %s\n", e.what());
        }
        status = 4;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        status = 4;
    }
    write_artifacts();
    return status;
}
