/// \file dpma_cli.cpp
/// Command-line front end of the toolchain — the TwoTowers-like workflow on
/// Æmilia files, no C++ required:
///
///   dpma_cli info     model.aem
///   dpma_cli dot      model.aem                       > model.dot
///   dpma_cli check    model.aem --high L1,L2 --low C  [--traces]
///   dpma_cli solve    model.aem measures.msr
///   dpma_cli simulate model.aem measures.msr [--horizon H] [--warmup W]
///                     [--reps N] [--seed S] [--confidence C]
///
/// `check` runs the paper's noninterference analysis: --high lists the
/// global action labels of the power-management commands (as printed by
/// `info`), --low names the observing instance.  Exit status: 0 = check
/// passed / command succeeded, 1 = check failed, 2 = usage or input error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "bisim/hml.hpp"
#include "core/error.hpp"
#include "core/text.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/dot.hpp"
#include "lts/ops.hpp"
#include "noninterference/noninterference.hpp"
#include "sim/gsmp.hpp"

namespace {

using namespace dpma;

[[noreturn]] void usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  dpma_cli info     <model.aem>\n"
                 "  dpma_cli dot      <model.aem>\n"
                 "  dpma_cli check    <model.aem> --high L1,L2,... --low INSTANCE "
                 "[--traces]\n"
                 "  dpma_cli solve    <model.aem> <measures.msr>\n"
                 "  dpma_cli simulate <model.aem> <measures.msr> [--horizon H] "
                 "[--warmup W] [--reps N] [--seed S] [--confidence C]\n");
    std::exit(2);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("cannot open " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

adl::ComposedModel load_model(const std::string& path) {
    return adl::compose(aemilia::parse_archi_type(read_file(path)));
}

/// Pulls `--name value` out of the argument list; returns fallback when absent.
std::string option(std::vector<std::string>& args, const std::string& name,
                   const std::string& fallback) {
    for (std::size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == name) {
            const std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                       args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
            return value;
        }
    }
    return fallback;
}

bool flag(std::vector<std::string>& args, const std::string& name) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

int cmd_info(const std::string& path) {
    const adl::ComposedModel model = load_model(path);
    std::printf("architecture: %zu instances, %zu states, %zu transitions\n",
                model.instance_names.size(), model.graph.num_states(),
                model.graph.num_transitions());
    std::printf("instances:");
    for (const std::string& name : model.instance_names) std::printf(" %s", name.c_str());
    std::printf("\n");
    const auto deadlocks = lts::deadlock_states(model.graph);
    std::printf("deadlock states: %zu\n", deadlocks.size());
    std::printf("action labels:\n");
    const auto& table = *model.graph.actions();
    for (Symbol a = 1; a < table.size(); ++a) {
        // Show only labels that actually occur on transitions.
        bool used = false;
        for (lts::StateId s = 0; s < model.graph.num_states() && !used; ++s) {
            for (const lts::Transition& t : model.graph.out(s)) {
                if (t.action == a) {
                    used = true;
                    break;
                }
            }
        }
        if (used) std::printf("  %s\n", table.name(a).c_str());
    }
    return 0;
}

int cmd_dot(const std::string& path) {
    const adl::ComposedModel model = load_model(path);
    lts::DotOptions options;
    options.max_states = 2000;
    std::fputs(lts::to_dot(model.graph, options).c_str(), stdout);
    return 0;
}

int cmd_check(const std::string& path, std::vector<std::string> args) {
    const std::string high = option(args, "--high", "");
    const std::string low = option(args, "--low", "");
    const bool traces = flag(args, "--traces");
    if (high.empty() || low.empty() || !args.empty()) usage();

    const adl::ComposedModel model = load_model(path);
    std::vector<std::string> high_labels;
    for (const std::string& label : split(high, ',')) {
        high_labels.emplace_back(trim(label));
    }

    if (traces) {
        const auto verdict =
            noninterference::check_dpm_trace_transparency(model, high_labels, low);
        std::printf("trace-based noninterference (SNNI): %s\n",
                    verdict.noninterfering ? "PASS" : "FAIL");
        if (!verdict.noninterfering) {
            std::printf("distinguishing trace:");
            for (const std::string& a : verdict.distinguishing_trace) {
                std::printf(" %s", a.c_str());
            }
            std::printf("\n");
        }
        return verdict.noninterfering ? 0 : 1;
    }

    const auto verdict =
        noninterference::check_dpm_transparency(model, high_labels, low);
    std::printf("noninterference (weak bisimulation): %s\n",
                verdict.noninterfering ? "PASS" : "FAIL");
    if (!verdict.noninterfering) {
        std::printf("distinguishing formula:\n%s\n",
                    bisim::to_two_towers(verdict.formula).c_str());
    }
    return verdict.noninterfering ? 0 : 1;
}

int cmd_solve(const std::string& model_path, const std::string& measures_path) {
    const adl::ComposedModel model = load_model(model_path);
    const auto measures = aemilia::parse_measures(read_file(measures_path));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    std::printf("CTMC: %zu tangible states\n", markov.chain.num_states());
    for (const adl::Measure& m : measures) {
        std::printf("%-24s = %.12g\n", m.name.c_str(),
                    ctmc::evaluate_measure(markov, model, pi, m));
    }
    return 0;
}

int cmd_simulate(const std::string& model_path, const std::string& measures_path,
                 std::vector<std::string> args) {
    const double horizon = std::strtod(option(args, "--horizon", "10000").c_str(), nullptr);
    const double warmup = std::strtod(option(args, "--warmup", "0").c_str(), nullptr);
    const int reps = std::atoi(option(args, "--reps", "10").c_str());
    const auto seed =
        static_cast<std::uint64_t>(std::strtoull(option(args, "--seed", "1").c_str(),
                                                 nullptr, 10));
    const double confidence =
        std::strtod(option(args, "--confidence", "0.90").c_str(), nullptr);
    if (!args.empty()) usage();

    const adl::ComposedModel model = load_model(model_path);
    const auto measures = aemilia::parse_measures(read_file(measures_path));
    const sim::Simulator simulator(model, measures);
    sim::SimOptions options;
    options.horizon = horizon;
    options.warmup = warmup;
    options.seed = seed;
    const auto estimates = sim::simulate_replications(simulator, options, reps, confidence);
    std::printf("simulated %d replications of horizon %g (warmup %g), %.0f%% CIs\n",
                reps, horizon, warmup, confidence * 100.0);
    for (std::size_t m = 0; m < measures.size(); ++m) {
        std::printf("%-24s = %.8g ± %.3g\n", measures[m].name.c_str(),
                    estimates[m].mean, estimates[m].half_width);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) usage();
    const std::string command = argv[1];
    const std::string model_path = argv[2];
    std::vector<std::string> rest;
    for (int i = 3; i < argc; ++i) rest.emplace_back(argv[i]);

    try {
        if (command == "info" && rest.empty()) return cmd_info(model_path);
        if (command == "dot" && rest.empty()) return cmd_dot(model_path);
        if (command == "check") return cmd_check(model_path, std::move(rest));
        if (command == "solve" && rest.size() == 1) {
            return cmd_solve(model_path, rest[0]);
        }
        if (command == "simulate" && !rest.empty()) {
            const std::string measures_path = rest[0];
            rest.erase(rest.begin());
            return cmd_simulate(model_path, measures_path, std::move(rest));
        }
        usage();
    } catch (const ParseError& e) {
        std::fprintf(stderr, "parse error at %d:%d: %s\n", e.line(), e.column(),
                     e.what());
        return 2;
    } catch (const Error& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
