# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/dpma_cli" "info" "/root/repo/specs/rpc_revised_markov.aem")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve "/root/repo/build/tools/dpma_cli" "solve" "/root/repo/specs/rpc_revised_markov.aem" "/root/repo/specs/rpc_measures.msr")
set_tests_properties(cli_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check_passes "/root/repo/build/tools/dpma_cli" "check" "/root/repo/specs/rpc_revised_markov.aem" "--high" "DPM.send_shutdown#S.receive_shutdown" "--low" "C")
set_tests_properties(cli_check_passes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check_fails "/root/repo/build/tools/dpma_cli" "check" "/root/repo/specs/rpc_untimed.aem" "--high" "DPM.send_shutdown#S.receive_shutdown" "--low" "C")
set_tests_properties(cli_check_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/dpma_cli" "simulate" "/root/repo/specs/rpc_revised_markov.aem" "/root/repo/specs/rpc_measures.msr" "--horizon" "2000" "--reps" "3")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve_disk "/root/repo/build/tools/dpma_cli" "solve" "/root/repo/specs/disk_markov.aem" "/root/repo/specs/disk_measures.msr")
set_tests_properties(cli_solve_disk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
