file(REMOVE_RECURSE
  "CMakeFiles/dpma_cli.dir/dpma_cli.cpp.o"
  "CMakeFiles/dpma_cli.dir/dpma_cli.cpp.o.d"
  "dpma_cli"
  "dpma_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
