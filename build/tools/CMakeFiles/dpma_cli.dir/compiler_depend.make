# Empty compiler generated dependencies file for dpma_cli.
# This may be replaced when dependencies are built.
