file(REMOVE_RECURSE
  "libdpma_bisim.a"
)
