# Empty dependencies file for dpma_bisim.
# This may be replaced when dependencies are built.
