file(REMOVE_RECURSE
  "CMakeFiles/dpma_bisim.dir/equivalence.cpp.o"
  "CMakeFiles/dpma_bisim.dir/equivalence.cpp.o.d"
  "CMakeFiles/dpma_bisim.dir/hml.cpp.o"
  "CMakeFiles/dpma_bisim.dir/hml.cpp.o.d"
  "CMakeFiles/dpma_bisim.dir/hml_check.cpp.o"
  "CMakeFiles/dpma_bisim.dir/hml_check.cpp.o.d"
  "CMakeFiles/dpma_bisim.dir/partition.cpp.o"
  "CMakeFiles/dpma_bisim.dir/partition.cpp.o.d"
  "CMakeFiles/dpma_bisim.dir/trace_equiv.cpp.o"
  "CMakeFiles/dpma_bisim.dir/trace_equiv.cpp.o.d"
  "libdpma_bisim.a"
  "libdpma_bisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_bisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
