
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bisim/equivalence.cpp" "src/bisim/CMakeFiles/dpma_bisim.dir/equivalence.cpp.o" "gcc" "src/bisim/CMakeFiles/dpma_bisim.dir/equivalence.cpp.o.d"
  "/root/repo/src/bisim/hml.cpp" "src/bisim/CMakeFiles/dpma_bisim.dir/hml.cpp.o" "gcc" "src/bisim/CMakeFiles/dpma_bisim.dir/hml.cpp.o.d"
  "/root/repo/src/bisim/hml_check.cpp" "src/bisim/CMakeFiles/dpma_bisim.dir/hml_check.cpp.o" "gcc" "src/bisim/CMakeFiles/dpma_bisim.dir/hml_check.cpp.o.d"
  "/root/repo/src/bisim/partition.cpp" "src/bisim/CMakeFiles/dpma_bisim.dir/partition.cpp.o" "gcc" "src/bisim/CMakeFiles/dpma_bisim.dir/partition.cpp.o.d"
  "/root/repo/src/bisim/trace_equiv.cpp" "src/bisim/CMakeFiles/dpma_bisim.dir/trace_equiv.cpp.o" "gcc" "src/bisim/CMakeFiles/dpma_bisim.dir/trace_equiv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
