file(REMOVE_RECURSE
  "CMakeFiles/dpma_aemilia.dir/lexer.cpp.o"
  "CMakeFiles/dpma_aemilia.dir/lexer.cpp.o.d"
  "CMakeFiles/dpma_aemilia.dir/parser.cpp.o"
  "CMakeFiles/dpma_aemilia.dir/parser.cpp.o.d"
  "CMakeFiles/dpma_aemilia.dir/printer.cpp.o"
  "CMakeFiles/dpma_aemilia.dir/printer.cpp.o.d"
  "libdpma_aemilia.a"
  "libdpma_aemilia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_aemilia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
