# Empty compiler generated dependencies file for dpma_aemilia.
# This may be replaced when dependencies are built.
