file(REMOVE_RECURSE
  "libdpma_aemilia.a"
)
