
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aemilia/lexer.cpp" "src/aemilia/CMakeFiles/dpma_aemilia.dir/lexer.cpp.o" "gcc" "src/aemilia/CMakeFiles/dpma_aemilia.dir/lexer.cpp.o.d"
  "/root/repo/src/aemilia/parser.cpp" "src/aemilia/CMakeFiles/dpma_aemilia.dir/parser.cpp.o" "gcc" "src/aemilia/CMakeFiles/dpma_aemilia.dir/parser.cpp.o.d"
  "/root/repo/src/aemilia/printer.cpp" "src/aemilia/CMakeFiles/dpma_aemilia.dir/printer.cpp.o" "gcc" "src/aemilia/CMakeFiles/dpma_aemilia.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/dpma_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
