file(REMOVE_RECURSE
  "CMakeFiles/dpma_noninterference.dir/noninterference.cpp.o"
  "CMakeFiles/dpma_noninterference.dir/noninterference.cpp.o.d"
  "libdpma_noninterference.a"
  "libdpma_noninterference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_noninterference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
