file(REMOVE_RECURSE
  "libdpma_noninterference.a"
)
