# Empty compiler generated dependencies file for dpma_noninterference.
# This may be replaced when dependencies are built.
