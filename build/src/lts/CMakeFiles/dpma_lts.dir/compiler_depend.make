# Empty compiler generated dependencies file for dpma_lts.
# This may be replaced when dependencies are built.
