file(REMOVE_RECURSE
  "CMakeFiles/dpma_lts.dir/dot.cpp.o"
  "CMakeFiles/dpma_lts.dir/dot.cpp.o.d"
  "CMakeFiles/dpma_lts.dir/lts.cpp.o"
  "CMakeFiles/dpma_lts.dir/lts.cpp.o.d"
  "CMakeFiles/dpma_lts.dir/ops.cpp.o"
  "CMakeFiles/dpma_lts.dir/ops.cpp.o.d"
  "libdpma_lts.a"
  "libdpma_lts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_lts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
