file(REMOVE_RECURSE
  "libdpma_lts.a"
)
