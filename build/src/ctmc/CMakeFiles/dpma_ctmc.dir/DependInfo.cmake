
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/absorption.cpp" "src/ctmc/CMakeFiles/dpma_ctmc.dir/absorption.cpp.o" "gcc" "src/ctmc/CMakeFiles/dpma_ctmc.dir/absorption.cpp.o.d"
  "/root/repo/src/ctmc/ctmc.cpp" "src/ctmc/CMakeFiles/dpma_ctmc.dir/ctmc.cpp.o" "gcc" "src/ctmc/CMakeFiles/dpma_ctmc.dir/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/lump.cpp" "src/ctmc/CMakeFiles/dpma_ctmc.dir/lump.cpp.o" "gcc" "src/ctmc/CMakeFiles/dpma_ctmc.dir/lump.cpp.o.d"
  "/root/repo/src/ctmc/reward.cpp" "src/ctmc/CMakeFiles/dpma_ctmc.dir/reward.cpp.o" "gcc" "src/ctmc/CMakeFiles/dpma_ctmc.dir/reward.cpp.o.d"
  "/root/repo/src/ctmc/solve.cpp" "src/ctmc/CMakeFiles/dpma_ctmc.dir/solve.cpp.o" "gcc" "src/ctmc/CMakeFiles/dpma_ctmc.dir/solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/dpma_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
