file(REMOVE_RECURSE
  "CMakeFiles/dpma_ctmc.dir/absorption.cpp.o"
  "CMakeFiles/dpma_ctmc.dir/absorption.cpp.o.d"
  "CMakeFiles/dpma_ctmc.dir/ctmc.cpp.o"
  "CMakeFiles/dpma_ctmc.dir/ctmc.cpp.o.d"
  "CMakeFiles/dpma_ctmc.dir/lump.cpp.o"
  "CMakeFiles/dpma_ctmc.dir/lump.cpp.o.d"
  "CMakeFiles/dpma_ctmc.dir/reward.cpp.o"
  "CMakeFiles/dpma_ctmc.dir/reward.cpp.o.d"
  "CMakeFiles/dpma_ctmc.dir/solve.cpp.o"
  "CMakeFiles/dpma_ctmc.dir/solve.cpp.o.d"
  "libdpma_ctmc.a"
  "libdpma_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
