# Empty dependencies file for dpma_ctmc.
# This may be replaced when dependencies are built.
