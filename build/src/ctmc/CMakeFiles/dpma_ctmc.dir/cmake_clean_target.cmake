file(REMOVE_RECURSE
  "libdpma_ctmc.a"
)
