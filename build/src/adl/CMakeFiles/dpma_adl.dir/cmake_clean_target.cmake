file(REMOVE_RECURSE
  "libdpma_adl.a"
)
