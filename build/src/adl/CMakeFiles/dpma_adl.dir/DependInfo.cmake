
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/compose.cpp" "src/adl/CMakeFiles/dpma_adl.dir/compose.cpp.o" "gcc" "src/adl/CMakeFiles/dpma_adl.dir/compose.cpp.o.d"
  "/root/repo/src/adl/expr.cpp" "src/adl/CMakeFiles/dpma_adl.dir/expr.cpp.o" "gcc" "src/adl/CMakeFiles/dpma_adl.dir/expr.cpp.o.d"
  "/root/repo/src/adl/measure.cpp" "src/adl/CMakeFiles/dpma_adl.dir/measure.cpp.o" "gcc" "src/adl/CMakeFiles/dpma_adl.dir/measure.cpp.o.d"
  "/root/repo/src/adl/model.cpp" "src/adl/CMakeFiles/dpma_adl.dir/model.cpp.o" "gcc" "src/adl/CMakeFiles/dpma_adl.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
