# Empty compiler generated dependencies file for dpma_adl.
# This may be replaced when dependencies are built.
