file(REMOVE_RECURSE
  "CMakeFiles/dpma_adl.dir/compose.cpp.o"
  "CMakeFiles/dpma_adl.dir/compose.cpp.o.d"
  "CMakeFiles/dpma_adl.dir/expr.cpp.o"
  "CMakeFiles/dpma_adl.dir/expr.cpp.o.d"
  "CMakeFiles/dpma_adl.dir/measure.cpp.o"
  "CMakeFiles/dpma_adl.dir/measure.cpp.o.d"
  "CMakeFiles/dpma_adl.dir/model.cpp.o"
  "CMakeFiles/dpma_adl.dir/model.cpp.o.d"
  "libdpma_adl.a"
  "libdpma_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
