
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dist.cpp" "src/core/CMakeFiles/dpma_core.dir/dist.cpp.o" "gcc" "src/core/CMakeFiles/dpma_core.dir/dist.cpp.o.d"
  "/root/repo/src/core/error.cpp" "src/core/CMakeFiles/dpma_core.dir/error.cpp.o" "gcc" "src/core/CMakeFiles/dpma_core.dir/error.cpp.o.d"
  "/root/repo/src/core/intern.cpp" "src/core/CMakeFiles/dpma_core.dir/intern.cpp.o" "gcc" "src/core/CMakeFiles/dpma_core.dir/intern.cpp.o.d"
  "/root/repo/src/core/stats_math.cpp" "src/core/CMakeFiles/dpma_core.dir/stats_math.cpp.o" "gcc" "src/core/CMakeFiles/dpma_core.dir/stats_math.cpp.o.d"
  "/root/repo/src/core/text.cpp" "src/core/CMakeFiles/dpma_core.dir/text.cpp.o" "gcc" "src/core/CMakeFiles/dpma_core.dir/text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
