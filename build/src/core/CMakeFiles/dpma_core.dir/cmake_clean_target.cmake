file(REMOVE_RECURSE
  "libdpma_core.a"
)
