# Empty dependencies file for dpma_core.
# This may be replaced when dependencies are built.
