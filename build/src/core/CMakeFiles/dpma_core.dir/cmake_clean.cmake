file(REMOVE_RECURSE
  "CMakeFiles/dpma_core.dir/dist.cpp.o"
  "CMakeFiles/dpma_core.dir/dist.cpp.o.d"
  "CMakeFiles/dpma_core.dir/error.cpp.o"
  "CMakeFiles/dpma_core.dir/error.cpp.o.d"
  "CMakeFiles/dpma_core.dir/intern.cpp.o"
  "CMakeFiles/dpma_core.dir/intern.cpp.o.d"
  "CMakeFiles/dpma_core.dir/stats_math.cpp.o"
  "CMakeFiles/dpma_core.dir/stats_math.cpp.o.d"
  "CMakeFiles/dpma_core.dir/text.cpp.o"
  "CMakeFiles/dpma_core.dir/text.cpp.o.d"
  "libdpma_core.a"
  "libdpma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
