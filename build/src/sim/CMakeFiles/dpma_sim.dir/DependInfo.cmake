
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/batch_means.cpp" "src/sim/CMakeFiles/dpma_sim.dir/batch_means.cpp.o" "gcc" "src/sim/CMakeFiles/dpma_sim.dir/batch_means.cpp.o.d"
  "/root/repo/src/sim/gsmp.cpp" "src/sim/CMakeFiles/dpma_sim.dir/gsmp.cpp.o" "gcc" "src/sim/CMakeFiles/dpma_sim.dir/gsmp.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/sim/CMakeFiles/dpma_sim.dir/rng.cpp.o" "gcc" "src/sim/CMakeFiles/dpma_sim.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/dpma_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
