file(REMOVE_RECURSE
  "CMakeFiles/dpma_sim.dir/batch_means.cpp.o"
  "CMakeFiles/dpma_sim.dir/batch_means.cpp.o.d"
  "CMakeFiles/dpma_sim.dir/gsmp.cpp.o"
  "CMakeFiles/dpma_sim.dir/gsmp.cpp.o.d"
  "CMakeFiles/dpma_sim.dir/rng.cpp.o"
  "CMakeFiles/dpma_sim.dir/rng.cpp.o.d"
  "libdpma_sim.a"
  "libdpma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
