file(REMOVE_RECURSE
  "libdpma_sim.a"
)
