# Empty compiler generated dependencies file for dpma_sim.
# This may be replaced when dependencies are built.
