file(REMOVE_RECURSE
  "libdpma_models.a"
)
