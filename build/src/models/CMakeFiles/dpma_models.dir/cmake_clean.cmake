file(REMOVE_RECURSE
  "CMakeFiles/dpma_models.dir/disk.cpp.o"
  "CMakeFiles/dpma_models.dir/disk.cpp.o.d"
  "CMakeFiles/dpma_models.dir/rpc.cpp.o"
  "CMakeFiles/dpma_models.dir/rpc.cpp.o.d"
  "CMakeFiles/dpma_models.dir/specs.cpp.o"
  "CMakeFiles/dpma_models.dir/specs.cpp.o.d"
  "CMakeFiles/dpma_models.dir/streaming.cpp.o"
  "CMakeFiles/dpma_models.dir/streaming.cpp.o.d"
  "libdpma_models.a"
  "libdpma_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
