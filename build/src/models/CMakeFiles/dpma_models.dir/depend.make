# Empty dependencies file for dpma_models.
# This may be replaced when dependencies are built.
