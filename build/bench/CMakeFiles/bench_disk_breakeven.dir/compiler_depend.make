# Empty compiler generated dependencies file for bench_disk_breakeven.
# This may be replaced when dependencies are built.
