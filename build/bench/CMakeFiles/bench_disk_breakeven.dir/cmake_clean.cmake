file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_breakeven.dir/bench_disk_breakeven.cpp.o"
  "CMakeFiles/bench_disk_breakeven.dir/bench_disk_breakeven.cpp.o.d"
  "bench_disk_breakeven"
  "bench_disk_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
