# Empty compiler generated dependencies file for bench_fig4_streaming_markov.
# This may be replaced when dependencies are built.
