file(REMOVE_RECURSE
  "libdpma_bench_harness.a"
)
