# Empty dependencies file for dpma_bench_harness.
# This may be replaced when dependencies are built.
