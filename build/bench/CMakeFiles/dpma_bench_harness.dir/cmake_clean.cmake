file(REMOVE_RECURSE
  "CMakeFiles/dpma_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/dpma_bench_harness.dir/harness.cpp.o.d"
  "libdpma_bench_harness.a"
  "libdpma_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpma_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
