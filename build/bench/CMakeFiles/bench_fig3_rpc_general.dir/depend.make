# Empty dependencies file for bench_fig3_rpc_general.
# This may be replaced when dependencies are built.
