file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rpc_general.dir/bench_fig3_rpc_general.cpp.o"
  "CMakeFiles/bench_fig3_rpc_general.dir/bench_fig3_rpc_general.cpp.o.d"
  "bench_fig3_rpc_general"
  "bench_fig3_rpc_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rpc_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
