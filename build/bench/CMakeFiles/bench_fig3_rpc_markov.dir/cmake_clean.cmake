file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rpc_markov.dir/bench_fig3_rpc_markov.cpp.o"
  "CMakeFiles/bench_fig3_rpc_markov.dir/bench_fig3_rpc_markov.cpp.o.d"
  "bench_fig3_rpc_markov"
  "bench_fig3_rpc_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rpc_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
