# Empty compiler generated dependencies file for bench_fig3_rpc_markov.
# This may be replaced when dependencies are built.
