file(REMOVE_RECURSE
  "CMakeFiles/bench_sect3_noninterference.dir/bench_sect3_noninterference.cpp.o"
  "CMakeFiles/bench_sect3_noninterference.dir/bench_sect3_noninterference.cpp.o.d"
  "bench_sect3_noninterference"
  "bench_sect3_noninterference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sect3_noninterference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
