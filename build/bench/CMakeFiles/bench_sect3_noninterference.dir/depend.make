# Empty dependencies file for bench_sect3_noninterference.
# This may be replaced when dependencies are built.
