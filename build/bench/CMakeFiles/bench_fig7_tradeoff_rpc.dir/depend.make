# Empty dependencies file for bench_fig7_tradeoff_rpc.
# This may be replaced when dependencies are built.
