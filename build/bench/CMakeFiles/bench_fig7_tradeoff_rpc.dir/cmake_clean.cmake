file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tradeoff_rpc.dir/bench_fig7_tradeoff_rpc.cpp.o"
  "CMakeFiles/bench_fig7_tradeoff_rpc.dir/bench_fig7_tradeoff_rpc.cpp.o.d"
  "bench_fig7_tradeoff_rpc"
  "bench_fig7_tradeoff_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tradeoff_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
