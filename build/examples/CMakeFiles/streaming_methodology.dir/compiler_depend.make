# Empty compiler generated dependencies file for streaming_methodology.
# This may be replaced when dependencies are built.
