file(REMOVE_RECURSE
  "CMakeFiles/streaming_methodology.dir/streaming_methodology.cpp.o"
  "CMakeFiles/streaming_methodology.dir/streaming_methodology.cpp.o.d"
  "streaming_methodology"
  "streaming_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
