# Empty dependencies file for rpc_methodology.
# This may be replaced when dependencies are built.
