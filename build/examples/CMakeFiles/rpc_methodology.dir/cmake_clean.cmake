file(REMOVE_RECURSE
  "CMakeFiles/rpc_methodology.dir/rpc_methodology.cpp.o"
  "CMakeFiles/rpc_methodology.dir/rpc_methodology.cpp.o.d"
  "rpc_methodology"
  "rpc_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
