file(REMOVE_RECURSE
  "CMakeFiles/custom_dpm_policy.dir/custom_dpm_policy.cpp.o"
  "CMakeFiles/custom_dpm_policy.dir/custom_dpm_policy.cpp.o.d"
  "custom_dpm_policy"
  "custom_dpm_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_dpm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
