# Empty dependencies file for custom_dpm_policy.
# This may be replaced when dependencies are built.
