file(REMOVE_RECURSE
  "CMakeFiles/aemilia_tour.dir/aemilia_tour.cpp.o"
  "CMakeFiles/aemilia_tour.dir/aemilia_tour.cpp.o.d"
  "aemilia_tour"
  "aemilia_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aemilia_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
