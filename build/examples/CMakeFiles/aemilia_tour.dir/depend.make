# Empty dependencies file for aemilia_tour.
# This may be replaced when dependencies are built.
