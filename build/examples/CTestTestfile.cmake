# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_battery_lifetime "/root/repo/build/examples/battery_lifetime")
set_tests_properties(example_battery_lifetime PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_methodology "/root/repo/build/examples/rpc_methodology")
set_tests_properties(example_rpc_methodology PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_methodology "/root/repo/build/examples/streaming_methodology")
set_tests_properties(example_streaming_methodology PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_dpm_policy "/root/repo/build/examples/custom_dpm_policy")
set_tests_properties(example_custom_dpm_policy PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aemilia_tour "/root/repo/build/examples/aemilia_tour")
set_tests_properties(example_aemilia_tour PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
