file(REMOVE_RECURSE
  "CMakeFiles/batch_means_test.dir/batch_means_test.cpp.o"
  "CMakeFiles/batch_means_test.dir/batch_means_test.cpp.o.d"
  "batch_means_test"
  "batch_means_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_means_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
