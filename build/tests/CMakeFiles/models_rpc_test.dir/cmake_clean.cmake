file(REMOVE_RECURSE
  "CMakeFiles/models_rpc_test.dir/models_rpc_test.cpp.o"
  "CMakeFiles/models_rpc_test.dir/models_rpc_test.cpp.o.d"
  "models_rpc_test"
  "models_rpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
