# Empty dependencies file for models_rpc_test.
# This may be replaced when dependencies are built.
