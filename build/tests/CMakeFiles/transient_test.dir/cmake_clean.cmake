file(REMOVE_RECURSE
  "CMakeFiles/transient_test.dir/transient_test.cpp.o"
  "CMakeFiles/transient_test.dir/transient_test.cpp.o.d"
  "transient_test"
  "transient_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
