# Empty dependencies file for models_disk_test.
# This may be replaced when dependencies are built.
