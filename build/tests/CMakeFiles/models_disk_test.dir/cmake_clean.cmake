file(REMOVE_RECURSE
  "CMakeFiles/models_disk_test.dir/models_disk_test.cpp.o"
  "CMakeFiles/models_disk_test.dir/models_disk_test.cpp.o.d"
  "models_disk_test"
  "models_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
