file(REMOVE_RECURSE
  "CMakeFiles/absorption_test.dir/absorption_test.cpp.o"
  "CMakeFiles/absorption_test.dir/absorption_test.cpp.o.d"
  "absorption_test"
  "absorption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absorption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
