
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/absorption_test.cpp" "tests/CMakeFiles/absorption_test.dir/absorption_test.cpp.o" "gcc" "tests/CMakeFiles/absorption_test.dir/absorption_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/dpma_models.dir/DependInfo.cmake"
  "/root/repo/build/src/aemilia/CMakeFiles/dpma_aemilia.dir/DependInfo.cmake"
  "/root/repo/build/src/noninterference/CMakeFiles/dpma_noninterference.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/dpma_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bisim/CMakeFiles/dpma_bisim.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/dpma_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/dpma_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dpma_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
