# Empty compiler generated dependencies file for adl_test.
# This may be replaced when dependencies are built.
