file(REMOVE_RECURSE
  "CMakeFiles/adl_test.dir/adl_test.cpp.o"
  "CMakeFiles/adl_test.dir/adl_test.cpp.o.d"
  "adl_test"
  "adl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
