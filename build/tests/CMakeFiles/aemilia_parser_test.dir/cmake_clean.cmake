file(REMOVE_RECURSE
  "CMakeFiles/aemilia_parser_test.dir/aemilia_parser_test.cpp.o"
  "CMakeFiles/aemilia_parser_test.dir/aemilia_parser_test.cpp.o.d"
  "aemilia_parser_test"
  "aemilia_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aemilia_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
