# Empty compiler generated dependencies file for aemilia_parser_test.
# This may be replaced when dependencies are built.
