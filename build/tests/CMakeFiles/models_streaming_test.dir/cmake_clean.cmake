file(REMOVE_RECURSE
  "CMakeFiles/models_streaming_test.dir/models_streaming_test.cpp.o"
  "CMakeFiles/models_streaming_test.dir/models_streaming_test.cpp.o.d"
  "models_streaming_test"
  "models_streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
