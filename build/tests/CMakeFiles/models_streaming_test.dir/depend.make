# Empty dependencies file for models_streaming_test.
# This may be replaced when dependencies are built.
