# Empty dependencies file for hml_test.
# This may be replaced when dependencies are built.
