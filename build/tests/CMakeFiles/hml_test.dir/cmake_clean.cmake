file(REMOVE_RECURSE
  "CMakeFiles/hml_test.dir/hml_test.cpp.o"
  "CMakeFiles/hml_test.dir/hml_test.cpp.o.d"
  "hml_test"
  "hml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
