# Empty dependencies file for models_variants_test.
# This may be replaced when dependencies are built.
