file(REMOVE_RECURSE
  "CMakeFiles/models_variants_test.dir/models_variants_test.cpp.o"
  "CMakeFiles/models_variants_test.dir/models_variants_test.cpp.o.d"
  "models_variants_test"
  "models_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
