file(REMOVE_RECURSE
  "CMakeFiles/trace_equiv_test.dir/trace_equiv_test.cpp.o"
  "CMakeFiles/trace_equiv_test.dir/trace_equiv_test.cpp.o.d"
  "trace_equiv_test"
  "trace_equiv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
