# Empty dependencies file for trace_equiv_test.
# This may be replaced when dependencies are built.
