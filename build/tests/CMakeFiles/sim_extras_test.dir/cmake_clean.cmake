file(REMOVE_RECURSE
  "CMakeFiles/sim_extras_test.dir/sim_extras_test.cpp.o"
  "CMakeFiles/sim_extras_test.dir/sim_extras_test.cpp.o.d"
  "sim_extras_test"
  "sim_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
