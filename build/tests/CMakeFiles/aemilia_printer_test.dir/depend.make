# Empty dependencies file for aemilia_printer_test.
# This may be replaced when dependencies are built.
