file(REMOVE_RECURSE
  "CMakeFiles/aemilia_printer_test.dir/aemilia_printer_test.cpp.o"
  "CMakeFiles/aemilia_printer_test.dir/aemilia_printer_test.cpp.o.d"
  "aemilia_printer_test"
  "aemilia_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aemilia_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
