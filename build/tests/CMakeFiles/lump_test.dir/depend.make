# Empty dependencies file for lump_test.
# This may be replaced when dependencies are built.
