file(REMOVE_RECURSE
  "CMakeFiles/lump_test.dir/lump_test.cpp.o"
  "CMakeFiles/lump_test.dir/lump_test.cpp.o.d"
  "lump_test"
  "lump_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
