#pragma once

/// \file lump.hpp
/// Ordinary lumpability of CTMCs: the coarsest partition (refining a given
/// initial one) such that every state of a block has the same total rate
/// into every other block.  The lumped chain has one state per block and is
/// stochastically equivalent for every measure that is constant on blocks —
/// the state-space reduction TwoTowers applies through Markovian
/// bisimulation equivalence.

#include <vector>

#include "ctmc/ctmc.hpp"

namespace dpma::ctmc {

struct LumpResult {
    Ctmc lumped{0};
    /// block_of[original state] = lumped state.
    std::vector<TangibleId> block_of;
    /// blocks[lumped state] = original member states.
    std::vector<std::vector<TangibleId>> blocks;
};

/// Lumps \p chain.  \p protected_masks lists state predicates that must stay
/// evaluable on the lumped chain (e.g. the masks of every reward measure):
/// two states start in the same block only when they agree on every mask.
/// Pass an empty vector for unconstrained (maximal) lumping.
[[nodiscard]] LumpResult lump(const Ctmc& chain,
                              const std::vector<std::vector<char>>& protected_masks);

/// Lifts a steady-state distribution of the lumped chain back to the
/// original states is impossible in general; the useful direction is
/// projecting measures: sum of pi over a block.  This helper folds an
/// original-state mask into lumped-state weights and checks consistency
/// (every block is pure w.r.t. the mask).
[[nodiscard]] std::vector<char> project_mask(const LumpResult& lumping,
                                             const std::vector<char>& mask);

}  // namespace dpma::ctmc
