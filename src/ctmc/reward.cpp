#include "ctmc/reward.hpp"

#include "core/error.hpp"
#include "core/stats_math.hpp"

namespace dpma::ctmc {

std::vector<double> action_frequencies(const MarkovModel& markov,
                                       const adl::ComposedModel& model,
                                       const std::vector<double>& pi) {
    DPMA_REQUIRE(pi.size() == markov.chain.num_states(),
                 "steady-state vector does not match the chain");
    const std::size_t num_actions = model.graph.actions()->size();
    std::vector<double> freq(num_actions, 0.0);
    std::vector<double> vanishing_entry(model.graph.num_states(), 0.0);

    // Timed transitions out of tangible states.
    for (TangibleId t = 0; t < markov.orig_of.size(); ++t) {
        const lts::StateId s = markov.orig_of[t];
        for (const lts::Transition& tr : model.graph.out(s)) {
            const auto* exp_rate = std::get_if<lts::RateExp>(&tr.rate);
            if (exp_rate == nullptr) continue;
            const double f = pi[t] * exp_rate->rate;
            freq[tr.action] += f;
            if (!markov.is_tangible(tr.target)) {
                vanishing_entry[tr.target] += f;
            }
        }
    }

    // Propagate through the acyclic vanishing subgraph, sources first.
    for (lts::StateId v : markov.vanishing_topo_order) {
        const double entry = vanishing_entry[v];
        if (entry == 0.0) continue;
        for (const VanishingBranch& b : markov.vanishing_branches[v]) {
            const double f = entry * b.probability;
            freq[b.action] += f;
            if (!markov.is_tangible(b.target)) {
                vanishing_entry[b.target] += f;
            }
        }
    }
    return freq;
}

double state_probability(const MarkovModel& markov, const adl::ComposedModel& model,
                         const std::vector<double>& pi,
                         const adl::Predicate& predicate) {
    const std::vector<char> mask = adl::state_mask(model, predicate);
    KahanSum sum;
    for (TangibleId t = 0; t < markov.orig_of.size(); ++t) {
        if (mask[markov.orig_of[t]]) sum.add(pi[t]);
    }
    return sum.value();
}

double evaluate_measure(const MarkovModel& markov, const adl::ComposedModel& model,
                        const std::vector<double>& pi, const adl::Measure& measure) {
    KahanSum total;
    std::vector<double> freq;  // computed lazily, shared by all trans clauses
    for (const adl::RewardClause& clause : measure.clauses) {
        if (clause.target == adl::RewardClause::Target::State) {
            total.add(clause.reward *
                      state_probability(markov, model, pi, clause.predicate));
            continue;
        }
        if (freq.empty()) {
            freq = action_frequencies(markov, model, pi);
        }
        const std::vector<char> mask = adl::action_mask(model, clause.predicate);
        for (Symbol a = 0; a < mask.size(); ++a) {
            if (mask[a]) total.add(clause.reward * freq[a]);
        }
    }
    return total.value();
}

}  // namespace dpma::ctmc
