#pragma once

/// \file reward.hpp
/// Evaluation of reward-based measures on a solved CTMC.
///
/// STATE_REWARD clauses weight the steady-state probability of the tangible
/// states satisfying the predicate.  TRANS_REWARD clauses weight the firing
/// frequency of the matching actions; frequencies of actions that occur on
/// immediate transitions are recovered by propagating entry frequencies
/// through the (acyclic) vanishing subgraph, so throughput-style measures
/// can be attached to any action of the model, timed or immediate.

#include <vector>

#include "adl/measure.hpp"
#include "ctmc/ctmc.hpp"

namespace dpma::ctmc {

/// Firing frequency (events per unit of time) of every action label, given
/// the steady-state distribution over tangible states.  Indexed by the
/// composed model's ActionId.
[[nodiscard]] std::vector<double> action_frequencies(const MarkovModel& markov,
                                                     const adl::ComposedModel& model,
                                                     const std::vector<double>& pi);

/// Value of one measure at steady state.
[[nodiscard]] double evaluate_measure(const MarkovModel& markov,
                                      const adl::ComposedModel& model,
                                      const std::vector<double>& pi,
                                      const adl::Measure& measure);

/// Steady-state probability that the predicate holds (state predicates only).
[[nodiscard]] double state_probability(const MarkovModel& markov,
                                       const adl::ComposedModel& model,
                                       const std::vector<double>& pi,
                                       const adl::Predicate& predicate);

}  // namespace dpma::ctmc
