#include "ctmc/absorption.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "core/error.hpp"

namespace dpma::ctmc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// States that can reach the target set (backward BFS over edges).
std::vector<char> co_reachable(const Ctmc& chain, const std::vector<char>& targets) {
    const std::size_t n = chain.num_states();
    std::vector<std::vector<TangibleId>> incoming(n);
    for (TangibleId s = 0; s < n; ++s) {
        for (const RateEntry& e : chain.row(s)) {
            incoming[e.target].push_back(s);
        }
    }
    std::vector<char> seen(n, 0);
    std::deque<TangibleId> queue;
    for (TangibleId s = 0; s < n; ++s) {
        if (targets[s]) {
            seen[s] = 1;
            queue.push_back(s);
        }
    }
    while (!queue.empty()) {
        const TangibleId u = queue.front();
        queue.pop_front();
        for (TangibleId v : incoming[u]) {
            if (!seen[v]) {
                seen[v] = 1;
                queue.push_back(v);
            }
        }
    }
    return seen;
}

/// Dense solve of the hitting-time equations restricted to `unknown` states.
/// System: E(s) h(s) - sum_{t unknown} rate(s,t) h(t) = 1   (targets give 0).
std::vector<double> solve_dense(const Ctmc& chain, const std::vector<char>& targets,
                                const std::vector<TangibleId>& unknown,
                                const std::vector<TangibleId>& index_of) {
    const std::size_t m = unknown.size();
    std::vector<std::vector<double>> a(m, std::vector<double>(m + 1, 0.0));
    for (std::size_t i = 0; i < m; ++i) {
        const TangibleId s = unknown[i];
        a[i][i] = chain.exit_rate(s);
        a[i][m] = 1.0;
        for (const RateEntry& e : chain.row(s)) {
            if (targets[e.target]) continue;  // h = 0 there
            const TangibleId j = index_of[e.target];
            DPMA_ASSERT(j != kNoTangible, "edge into an excluded state");
            a[i][j] -= e.rate;
        }
    }
    // Gaussian elimination with partial pivoting.
    for (std::size_t col = 0; col < m; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < m; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-300) {
            throw NumericalError("singular hitting-time system");
        }
        std::swap(a[col], a[pivot]);
        for (std::size_t r = 0; r < m; ++r) {
            if (r == col || a[r][col] == 0.0) continue;
            const double f = a[r][col] / a[col][col];
            for (std::size_t c = col; c <= m; ++c) {
                a[r][c] -= f * a[col][c];
            }
        }
    }
    std::vector<double> h(m);
    for (std::size_t i = 0; i < m; ++i) {
        h[i] = a[i][m] / a[i][i];
    }
    return h;
}

std::vector<double> solve_iterative(const Ctmc& chain, const std::vector<char>& targets,
                                    const std::vector<TangibleId>& unknown,
                                    const std::vector<TangibleId>& index_of) {
    const std::size_t m = unknown.size();
    std::vector<double> h(m, 0.0);
    for (std::size_t iter = 0; iter < 1'000'000; ++iter) {
        double diff = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const TangibleId s = unknown[i];
            double sum = 1.0;
            for (const RateEntry& e : chain.row(s)) {
                if (targets[e.target]) continue;
                const TangibleId j = index_of[e.target];
                sum += e.rate * h[j];
            }
            const double next = sum / chain.exit_rate(s);
            diff = std::max(diff, std::abs(next - h[i]));
            h[i] = next;
        }
        if (diff < 1e-10) return h;
    }
    throw NumericalError("hitting-time iteration did not converge");
}

}  // namespace

std::vector<double> expected_hitting_times(const Ctmc& chain,
                                           const std::vector<char>& targets,
                                           std::size_t dense_threshold) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(targets.size() == n, "target mask does not match the chain");
    DPMA_REQUIRE(std::find(targets.begin(), targets.end(), 1) != targets.end(),
                 "empty target set");

    // h(s) is finite iff the target is hit with probability 1 from s, i.e.
    // iff s cannot reach any state from which the target is unreachable.
    const std::vector<char> reachable = co_reachable(chain, targets);
    std::vector<char> traps(n, 0);
    bool has_trap = false;
    for (TangibleId s = 0; s < n; ++s) {
        if (!targets[s] && !reachable[s]) {
            traps[s] = 1;
            has_trap = true;
        }
    }
    const std::vector<char> diverging =
        has_trap ? co_reachable(chain, traps) : std::vector<char>(n, 0);

    std::vector<double> result(n, kInf);
    std::vector<TangibleId> unknown;
    std::vector<TangibleId> index_of(n, kNoTangible);
    for (TangibleId s = 0; s < n; ++s) {
        if (targets[s]) {
            result[s] = 0.0;
        } else if (!diverging[s]) {
            DPMA_ASSERT(chain.exit_rate(s) > 0.0,
                        "non-diverging non-target state must have an exit");
            index_of[s] = static_cast<TangibleId>(unknown.size());
            unknown.push_back(s);
        }
    }

    if (!unknown.empty()) {
        const std::vector<double> h =
            unknown.size() <= dense_threshold
                ? solve_dense(chain, targets, unknown, index_of)
                : solve_iterative(chain, targets, unknown, index_of);
        for (std::size_t i = 0; i < unknown.size(); ++i) {
            result[unknown[i]] = h[i];
        }
    }
    return result;
}

std::vector<double> hitting_probabilities(const Ctmc& chain,
                                          const std::vector<char>& targets) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(targets.size() == n, "target mask does not match the chain");
    const std::vector<char> reachable = co_reachable(chain, targets);
    // p(s) = sum_t P(s,t) p(t); p = 1 on targets, 0 on non-co-reachable.
    std::vector<double> p(n, 0.0);
    for (TangibleId s = 0; s < n; ++s) {
        if (targets[s]) p[s] = 1.0;
    }
    for (std::size_t iter = 0; iter < 1'000'000; ++iter) {
        double diff = 0.0;
        for (TangibleId s = 0; s < n; ++s) {
            if (targets[s] || !reachable[s] || chain.exit_rate(s) <= 0.0) continue;
            double sum = 0.0;
            for (const RateEntry& e : chain.row(s)) {
                sum += e.rate * p[e.target];
            }
            const double next = sum / chain.exit_rate(s);
            diff = std::max(diff, std::abs(next - p[s]));
            p[s] = next;
        }
        if (diff < 1e-12) break;
    }
    return p;
}

}  // namespace dpma::ctmc
