#include "ctmc/ctmc.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::ctmc {
namespace {

/// Maximal-progress filtered immediate branches of a composed state; empty
/// when the state has no immediate transitions (i.e. is tangible).
std::vector<VanishingBranch> immediate_branches(const lts::Lts::CsrView& csr,
                                                lts::StateId state) {
    int best_priority = std::numeric_limits<int>::min();
    double total_weight = 0.0;
    for (const lts::Transition& t : csr.out(state)) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
            if (imm->priority > best_priority) {
                best_priority = imm->priority;
                total_weight = 0.0;
            }
            if (imm->priority == best_priority) total_weight += imm->weight;
        }
    }
    std::vector<VanishingBranch> branches;
    if (total_weight <= 0.0) return branches;
    for (const lts::Transition& t : csr.out(state)) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
            // Zero-weight branches can never fire; dropping them keeps
            // degenerate parameterisations (e.g. loss probability 0) legal.
            if (imm->priority == best_priority && imm->weight > 0.0) {
                branches.push_back(
                    VanishingBranch{t.target, imm->weight / total_weight, t.action});
            }
        }
    }
    return branches;
}

}  // namespace

void Ctmc::add_rate(TangibleId from, TangibleId to, double rate) {
    DPMA_REQUIRE(from < rows_.size() && to < rows_.size(), "CTMC state out of range");
    DPMA_REQUIRE(rate > 0.0, "CTMC rates must be positive");
    if (from == to) return;  // self-loops do not affect the CTMC dynamics
    for (RateEntry& e : rows_[from]) {
        if (e.target == to) {
            e.rate += rate;
            exit_[from] += rate;
            return;
        }
    }
    rows_[from].push_back(RateEntry{to, rate});
    exit_[from] += rate;
}

double Ctmc::max_exit_rate() const {
    double best = 0.0;
    for (double e : exit_) best = std::max(best, e);
    return best;
}

MarkovModel build_markov(const adl::ComposedModel& model, bool allow_absorbing) {
    const std::size_t n = model.graph.num_states();
    DPMA_NAMED_SPAN(span, "ctmc.build_markov", "ctmc");
    span.arg("states", static_cast<double>(n));
    MarkovModel out;
    out.tangible_of.assign(n, kNoTangible);
    out.vanishing_branches.resize(n);
    const lts::Lts::CsrView& csr = model.graph.csr();

    // Classify states and sanity-check rates.
    for (lts::StateId s = 0; s < n; ++s) {
        for (const lts::Transition& t : csr.out(s)) {
            if (std::holds_alternative<lts::RateUnspecified>(t.rate)) {
                throw ModelError(
                    "transition " + model.graph.actions()->name(t.action) +
                    " has no rate: functional models cannot be solved as CTMCs");
            }
            if (lts::is_passive(t.rate)) {
                throw ModelError("passive transition " +
                                 model.graph.actions()->name(t.action) +
                                 " survived composition (unattached interaction?)");
            }
            if (lts::is_general(t.rate)) {
                throw ModelError("generally distributed transition " +
                                 model.graph.actions()->name(t.action) +
                                 " in a Markovian model; use the simulator instead");
            }
        }
        out.vanishing_branches[s] = immediate_branches(csr, s);
        if (out.vanishing_branches[s].empty()) {
            out.tangible_of[s] = static_cast<TangibleId>(out.orig_of.size());
            out.orig_of.push_back(s);
        }
    }

    // Topologically order the vanishing subgraph; reject immediate cycles.
    {
        std::vector<int> indegree(n, 0);
        std::vector<lts::StateId> vanishing;
        for (lts::StateId s = 0; s < n; ++s) {
            if (out.is_tangible(s)) continue;
            vanishing.push_back(s);
            for (const VanishingBranch& b : out.vanishing_branches[s]) {
                if (!out.is_tangible(b.target)) ++indegree[b.target];
            }
        }
        std::deque<lts::StateId> ready;
        for (lts::StateId s : vanishing) {
            if (indegree[s] == 0) ready.push_back(s);
        }
        while (!ready.empty()) {
            const lts::StateId s = ready.front();
            ready.pop_front();
            out.vanishing_topo_order.push_back(s);
            for (const VanishingBranch& b : out.vanishing_branches[s]) {
                if (!out.is_tangible(b.target) && --indegree[b.target] == 0) {
                    ready.push_back(b.target);
                }
            }
        }
        if (out.vanishing_topo_order.size() != vanishing.size()) {
            throw NumericalError(
                "immediate-action cycle detected: the model lets time stand "
                "still forever (check immediate self-triggering loops)");
        }
    }

    // reach[v]: distribution over tangible states entered from vanishing v.
    // Computed in reverse topological order so successors are ready.
    std::vector<std::unordered_map<lts::StateId, double>> reach(n);
    for (auto it = out.vanishing_topo_order.rbegin();
         it != out.vanishing_topo_order.rend(); ++it) {
        const lts::StateId v = *it;
        auto& dist = reach[v];
        for (const VanishingBranch& b : out.vanishing_branches[v]) {
            if (out.is_tangible(b.target)) {
                dist[b.target] += b.probability;
            } else {
                for (const auto& [g, p] : reach[b.target]) {
                    dist[g] += b.probability * p;
                }
            }
        }
    }

    // Assemble the tangible CTMC.
    Ctmc chain(out.orig_of.size());
    for (TangibleId t = 0; t < out.orig_of.size(); ++t) {
        const lts::StateId s = out.orig_of[t];
        bool has_timed = false;
        for (const lts::Transition& tr : csr.out(s)) {
            const auto* exp_rate = std::get_if<lts::RateExp>(&tr.rate);
            if (exp_rate == nullptr) continue;  // tangible => no immediates enabled
            has_timed = true;
            if (out.is_tangible(tr.target)) {
                chain.add_rate(t, out.tangible_of[tr.target], exp_rate->rate);
            } else {
                for (const auto& [g, p] : reach[tr.target]) {
                    chain.add_rate(t, out.tangible_of[g], exp_rate->rate * p);
                }
            }
        }
        if (!has_timed && !allow_absorbing) {
            throw ModelError("absorbing tangible state found (deadlock): " +
                             (model.graph.state_name(s).empty()
                                  ? "state " + std::to_string(s)
                                  : model.graph.state_name(s)));
        }
    }
    out.chain = std::move(chain);

    obs::counter("ctmc.builds").add();
    obs::counter("ctmc.tangible_states").add(out.orig_of.size());
    obs::counter("ctmc.vanishing_eliminated").add(n - out.orig_of.size());
    span.arg("tangible", static_cast<double>(out.orig_of.size()));

    // Initial distribution.
    const lts::StateId init = model.graph.initial();
    DPMA_REQUIRE(init != lts::kNoState, "composed model has no initial state");
    if (out.is_tangible(init)) {
        out.initial_distribution.emplace_back(out.tangible_of[init], 1.0);
    } else {
        for (const auto& [g, p] : reach[init]) {
            out.initial_distribution.emplace_back(out.tangible_of[g], p);
        }
    }
    return out;
}

}  // namespace dpma::ctmc
