#pragma once

/// \file absorption.hpp
/// First-passage analysis on CTMCs: expected time to hit a target set of
/// states.  Complements the simulator's run_until (which handles general
/// distributions and reward thresholds) with exact answers on the Markovian
/// model — e.g. "expected time until the access-point buffer first
/// overflows" as a function of the DPM awake period.

#include <vector>

#include "ctmc/ctmc.hpp"

namespace dpma::ctmc {

/// Expected hitting time h[s] of the target set from every state.
///
///  * h[s] = 0 for target states;
///  * h[s] = +infinity for states that cannot reach the target set
///    (including absorbing non-target states);
///  * otherwise the unique solution of  h(s) = 1/E(s) + sum_t P(s,t) h(t).
///
/// Solved directly (dense Gaussian elimination with partial pivoting) below
/// \p dense_threshold states, iteratively (Gauss–Seidel) above.
[[nodiscard]] std::vector<double> expected_hitting_times(
    const Ctmc& chain, const std::vector<char>& targets,
    std::size_t dense_threshold = 1500);

/// Probability of reaching the target set at all, per state (1 for targets).
[[nodiscard]] std::vector<double> hitting_probabilities(const Ctmc& chain,
                                                        const std::vector<char>& targets);

}  // namespace dpma::ctmc
