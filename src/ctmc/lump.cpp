#include "ctmc/lump.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/error.hpp"

namespace dpma::ctmc {
namespace {

/// Rounds a rate for signature comparison: rates are compared up to one
/// part in 1e9 so that values assembled in different summation orders still
/// land in the same class.
long long quantise(double rate) {
    return static_cast<long long>(std::llround(rate * 1e9));
}

}  // namespace

LumpResult lump(const Ctmc& chain, const std::vector<std::vector<char>>& protected_masks) {
    const std::size_t n = chain.num_states();
    LumpResult result;
    result.block_of.assign(n, 0);
    if (n == 0) return result;

    // Initial partition: group by the vector of protected-mask bits.
    {
        std::map<std::vector<char>, TangibleId> index;
        for (TangibleId s = 0; s < n; ++s) {
            std::vector<char> key;
            key.reserve(protected_masks.size());
            for (const auto& mask : protected_masks) {
                DPMA_REQUIRE(mask.size() == n, "mask does not match the chain");
                key.push_back(mask[s]);
            }
            auto [it, inserted] =
                index.emplace(std::move(key), static_cast<TangibleId>(index.size()));
            result.block_of[s] = it->second;
        }
    }

    // Refine: signature = sorted (target block, total quantised rate).
    while (true) {
        using Signature = std::vector<std::pair<TangibleId, long long>>;
        std::map<std::pair<TangibleId, Signature>, TangibleId> index;
        std::vector<TangibleId> next(n);
        for (TangibleId s = 0; s < n; ++s) {
            std::map<TangibleId, double> into;
            for (const RateEntry& e : chain.row(s)) {
                into[result.block_of[e.target]] += e.rate;
            }
            Signature sig;
            sig.reserve(into.size());
            for (const auto& [block, rate] : into) {
                sig.emplace_back(block, quantise(rate));
            }
            auto [it, inserted] = index.emplace(
                std::make_pair(result.block_of[s], std::move(sig)),
                static_cast<TangibleId>(index.size()));
            next[s] = it->second;
        }
        const bool stable =
            index.size() ==
            static_cast<std::size_t>(
                1 + *std::max_element(result.block_of.begin(), result.block_of.end()));
        result.block_of = std::move(next);
        if (stable) break;
    }

    const TangibleId num_blocks =
        1 + *std::max_element(result.block_of.begin(), result.block_of.end());
    result.blocks.assign(num_blocks, {});
    for (TangibleId s = 0; s < n; ++s) {
        result.blocks[result.block_of[s]].push_back(s);
    }

    // Build the lumped chain from one representative per block (all members
    // have identical block-level rates by construction).
    Ctmc lumped(num_blocks);
    for (TangibleId b = 0; b < num_blocks; ++b) {
        const TangibleId rep = result.blocks[b].front();
        std::map<TangibleId, double> into;
        for (const RateEntry& e : chain.row(rep)) {
            into[result.block_of[e.target]] += e.rate;
        }
        for (const auto& [target, rate] : into) {
            if (target != b) lumped.add_rate(b, target, rate);
        }
    }
    result.lumped = std::move(lumped);
    return result;
}

std::vector<char> project_mask(const LumpResult& lumping, const std::vector<char>& mask) {
    DPMA_REQUIRE(mask.size() == lumping.block_of.size(), "mask does not match the chain");
    std::vector<char> out(lumping.blocks.size(), 0);
    for (std::size_t b = 0; b < lumping.blocks.size(); ++b) {
        const char first = mask[lumping.blocks[b].front()];
        for (TangibleId s : lumping.blocks[b]) {
            DPMA_REQUIRE(mask[s] == first,
                         "mask is not constant on a lumping block; pass it as a "
                         "protected mask when lumping");
        }
        out[b] = first;
    }
    return out;
}

}  // namespace dpma::ctmc
