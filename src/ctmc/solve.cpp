#include "ctmc/solve.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::ctmc {
namespace {

/// Count one finished solve in the registry and close out \p diagnostics.
void finish_solve(SolveDiagnostics* diagnostics, const char* method,
                  std::size_t states, std::size_t iterations, double residual) {
    obs::counter(std::string("ctmc.solve.") + method).add();
    if (iterations > 0) {
        obs::histogram("ctmc.solve.iterations").observe(static_cast<double>(iterations));
    }
    if (diagnostics != nullptr) {
        diagnostics->method = method;
        diagnostics->states = states;
        diagnostics->iterations = iterations;
        diagnostics->final_residual = residual;
    }
    if (obs::log_enabled(obs::LogLevel::Debug)) {
        obs::logf(obs::LogLevel::Debug,
                  "solve: %s on %zu states, %zu iterations, residual %g", method,
                  states, iterations, residual);
    }
}

/// Transposed adjacency (incoming rates) used by Gauss–Seidel.
std::vector<std::vector<RateEntry>> incoming_of(const Ctmc& chain) {
    std::vector<std::vector<RateEntry>> in(chain.num_states());
    for (TangibleId s = 0; s < chain.num_states(); ++s) {
        for (const RateEntry& e : chain.row(s)) {
            in[e.target].push_back(RateEntry{s, e.rate});
        }
    }
    return in;
}

void normalize(std::vector<double>& pi) {
    KahanSum sum;
    for (double p : pi) sum.add(p);
    const double total = sum.value();
    DPMA_REQUIRE(total > 0.0, "probability vector has zero mass");
    for (double& p : pi) p /= total;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        best = std::max(best, std::abs(a[i] - b[i]));
    }
    return best;
}

bool reaches_all(const Ctmc& chain, bool forward) {
    const std::size_t n = chain.num_states();
    std::vector<std::vector<TangibleId>> adj(n);
    for (TangibleId s = 0; s < n; ++s) {
        for (const RateEntry& e : chain.row(s)) {
            if (forward) {
                adj[s].push_back(e.target);
            } else {
                adj[e.target].push_back(s);
            }
        }
    }
    std::vector<char> seen(n, 0);
    std::deque<TangibleId> queue{0};
    seen[0] = 1;
    std::size_t count = 1;
    while (!queue.empty()) {
        const TangibleId u = queue.front();
        queue.pop_front();
        for (TangibleId v : adj[u]) {
            if (!seen[v]) {
                seen[v] = 1;
                ++count;
                queue.push_back(v);
            }
        }
    }
    return count == n;
}

}  // namespace

bool is_irreducible(const Ctmc& chain) {
    if (chain.num_states() == 0) return false;
    return reaches_all(chain, true) && reaches_all(chain, false);
}

void SolveDiagnostics::record_residual(double residual) {
    // Thin in place: once the history is full, keep every other sample and
    // double the stride, so memory stays bounded for 500k-iteration solves
    // while the curve's shape survives.
    constexpr std::size_t kMaxSamples = 2048;
    ++pending_;
    if (pending_ < residual_stride) return;
    pending_ = 0;
    residuals.push_back(residual);
    if (residuals.size() >= kMaxSamples) {
        for (std::size_t i = 1; 2 * i < residuals.size(); ++i) {
            residuals[i] = residuals[2 * i];
        }
        residuals.resize(residuals.size() / 2);
        residual_stride *= 2;
    }
}

std::string SolveDiagnostics::json() const {
    std::string out = "{\"solver\": {\"method\": " + obs::json_quote(method) +
                      ", \"states\": " + std::to_string(states) +
                      ", \"iterations\": " + std::to_string(iterations) +
                      ", \"final_residual\": " + obs::json_number(final_residual) +
                      ", \"residual_stride\": " + std::to_string(residual_stride) +
                      ", \"residuals\": [";
    for (std::size_t i = 0; i < residuals.size(); ++i) {
        if (i > 0) out += ", ";
        out += obs::json_number(residuals[i]);
    }
    out += "]}}";
    return out;
}

std::vector<double> steady_state_gth(const Ctmc& chain) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(n >= 1, "empty chain");
    if (n == 1) return {1.0};

    // Dense off-diagonal rate matrix.
    std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
    for (TangibleId s = 0; s < n; ++s) {
        for (const RateEntry& e : chain.row(s)) {
            a[s][e.target] += e.rate;
        }
    }

    // Forward elimination, censoring states n-1 .. 1 (Grassmann, Taksar,
    // Heyman; see Stewart, "Introduction to the Numerical Solution of Markov
    // Chains", sect. 2.7).  Only additions/divisions of non-negative
    // quantities: no cancellation.
    for (std::size_t k = n - 1; k >= 1; --k) {
        KahanSum departure;
        for (std::size_t j = 0; j < k; ++j) departure.add(a[k][j]);
        const double s = departure.value();
        if (s <= 0.0) {
            throw NumericalError(
                "GTH: state " + std::to_string(k) +
                " cannot reach lower-numbered states (chain not irreducible)");
        }
        for (std::size_t i = 0; i < k; ++i) a[i][k] /= s;
        for (std::size_t i = 0; i < k; ++i) {
            const double f = a[i][k];
            if (f == 0.0) continue;
            for (std::size_t j = 0; j < k; ++j) {
                if (j != i) a[i][j] += f * a[k][j];
            }
        }
    }

    // Back substitution: unnormalised stationary weights.
    std::vector<double> pi(n, 0.0);
    pi[0] = 1.0;
    for (std::size_t k = 1; k < n; ++k) {
        KahanSum sum;
        for (std::size_t i = 0; i < k; ++i) sum.add(pi[i] * a[i][k]);
        pi[k] = sum.value();
    }
    normalize(pi);
    finish_solve(nullptr, "gth", n, 0, 0.0);
    return pi;
}

std::vector<double> steady_state_gauss_seidel(const Ctmc& chain,
                                              const SolveOptions& options) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(n >= 1, "empty chain");
    SolveDiagnostics* diag = options.diagnostics;
    if (diag != nullptr) *diag = SolveDiagnostics{};
    const auto incoming = incoming_of(chain);
    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    std::vector<double> prev(n);

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        prev = pi;
        for (TangibleId j = 0; j < n; ++j) {
            const double exit = chain.exit_rate(j);
            if (exit <= 0.0) {
                throw NumericalError("Gauss-Seidel: absorbing state in chain");
            }
            KahanSum inflow;
            for (const RateEntry& e : incoming[j]) {
                inflow.add(pi[e.target] * e.rate);
            }
            pi[j] = inflow.value() / exit;
        }
        normalize(pi);
        const double diff = max_abs_diff(pi, prev);
        if (diag != nullptr) diag->record_residual(diff);
        if (diff < options.tolerance) {
            finish_solve(diag, "gauss_seidel", n, iter + 1, diff);
            return pi;
        }
    }
    throw NumericalError("Gauss-Seidel did not converge within " +
                         std::to_string(options.max_iterations) + " iterations");
}

std::vector<double> steady_state_power(const Ctmc& chain, const SolveOptions& options) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(n >= 1, "empty chain");
    SolveDiagnostics* diag = options.diagnostics;
    if (diag != nullptr) *diag = SolveDiagnostics{};
    const double lambda = chain.max_exit_rate() * 1.05 + 1e-12;
    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n);

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        // next = pi * (I + Q / lambda)
        for (TangibleId s = 0; s < n; ++s) {
            next[s] = pi[s] * (1.0 - chain.exit_rate(s) / lambda);
        }
        for (TangibleId s = 0; s < n; ++s) {
            const double mass = pi[s] / lambda;
            if (mass == 0.0) continue;
            for (const RateEntry& e : chain.row(s)) {
                next[e.target] += mass * e.rate;
            }
        }
        normalize(next);
        const double diff = max_abs_diff(next, pi);
        pi.swap(next);
        if (diag != nullptr) diag->record_residual(diff);
        if (diff < options.tolerance) {
            finish_solve(diag, "power", n, iter + 1, diff);
            return pi;
        }
    }
    throw NumericalError("power iteration did not converge within " +
                         std::to_string(options.max_iterations) + " iterations");
}

std::vector<std::vector<TangibleId>> bottom_sccs(const Ctmc& chain) {
    const std::size_t n = chain.num_states();
    // Iterative Tarjan.
    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<TangibleId> stack;
    std::vector<int> scc_of(n, -1);
    int next_index = 0;
    int num_sccs = 0;

    struct Frame {
        TangibleId v;
        std::size_t child = 0;
    };
    for (TangibleId root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        std::vector<Frame> frames{{root, 0}};
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = 1;
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const TangibleId v = frame.v;
            const auto& row = chain.row(v);
            if (frame.child < row.size()) {
                const TangibleId w = row[frame.child++].target;
                if (index[w] == -1) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = 1;
                    frames.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
                continue;
            }
            if (lowlink[v] == index[v]) {
                while (true) {
                    const TangibleId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    scc_of[w] = num_sccs;
                    if (w == v) break;
                }
                ++num_sccs;
            }
            frames.pop_back();
            if (!frames.empty()) {
                const TangibleId parent = frames.back().v;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }

    // A SCC is "bottom" when no member has an edge leaving it.
    std::vector<char> is_bottom(static_cast<std::size_t>(num_sccs), 1);
    for (TangibleId v = 0; v < n; ++v) {
        for (const RateEntry& e : chain.row(v)) {
            if (scc_of[e.target] != scc_of[v]) {
                is_bottom[static_cast<std::size_t>(scc_of[v])] = 0;
            }
        }
    }
    std::vector<std::vector<TangibleId>> out(static_cast<std::size_t>(num_sccs));
    for (TangibleId v = 0; v < n; ++v) {
        out[static_cast<std::size_t>(scc_of[v])].push_back(v);
    }
    std::vector<std::vector<TangibleId>> bottoms;
    for (std::size_t c = 0; c < out.size(); ++c) {
        if (is_bottom[c]) bottoms.push_back(std::move(out[c]));
    }
    return bottoms;
}

namespace {

std::vector<double> steady_state_irreducible(const Ctmc& chain,
                                             const SolveOptions& options) {
    if (chain.num_states() <= options.dense_threshold) {
        std::vector<double> pi = steady_state_gth(chain);
        if (options.diagnostics != nullptr) {
            *options.diagnostics = SolveDiagnostics{};
            options.diagnostics->method = "gth";
            options.diagnostics->states = chain.num_states();
        }
        return pi;
    }
    try {
        return steady_state_gauss_seidel(chain, options);
    } catch (const NumericalError& e) {
        obs::logf(obs::LogLevel::Warn,
                  "solve: Gauss-Seidel failed on %zu states (%s); "
                  "falling back to power iteration",
                  chain.num_states(), e.what());
        return steady_state_power(chain, options);
    }
}

}  // namespace

std::vector<double> steady_state(const Ctmc& chain, const SolveOptions& options) {
    DPMA_REQUIRE(chain.num_states() >= 1, "empty chain");
    DPMA_NAMED_SPAN(span, "ctmc.solve", "solve");
    span.arg("states", static_cast<double>(chain.num_states()));
    obs::counter("ctmc.solve.calls").add();
    if (is_irreducible(chain)) {
        return steady_state_irreducible(chain, options);
    }
    const auto bottoms = bottom_sccs(chain);
    if (bottoms.size() != 1) {
        throw NumericalError(
            "chain has " + std::to_string(bottoms.size()) +
            " recurrent classes; the long-run distribution depends on the "
            "initial state (is the model deadlock-free?)");
    }
    const std::vector<TangibleId>& recurrent = bottoms.front();
    std::vector<TangibleId> dense_of(chain.num_states(), kNoTangible);
    for (std::size_t i = 0; i < recurrent.size(); ++i) {
        dense_of[recurrent[i]] = static_cast<TangibleId>(i);
    }
    Ctmc sub(recurrent.size());
    for (std::size_t i = 0; i < recurrent.size(); ++i) {
        for (const RateEntry& e : chain.row(recurrent[i])) {
            DPMA_ASSERT(dense_of[e.target] != kNoTangible,
                        "edge leaves a bottom SCC");
            sub.add_rate(static_cast<TangibleId>(i), dense_of[e.target], e.rate);
        }
    }
    const std::vector<double> sub_pi = steady_state_irreducible(sub, options);
    std::vector<double> pi(chain.num_states(), 0.0);
    for (std::size_t i = 0; i < recurrent.size(); ++i) {
        pi[recurrent[i]] = sub_pi[i];
    }
    return pi;
}

namespace {

/// Below this log weight std::exp lands in the subnormal range where the
/// multiplicative recurrence would start from almost no significand bits;
/// PoissonWeights stays in log space until the series climbs back above it.
constexpr double kPoissonLogSwitch = -690.0;

}  // namespace

PoissonWeights::PoissonWeights(double lt) : lt_(lt), log_w_(-lt) {
    DPMA_REQUIRE(std::isfinite(lt) && lt >= 0.0,
                 "poisson weight parameter must be finite and >= 0");
    in_log_ = log_w_ < kPoissonLogSwitch;
    w_ = in_log_ ? 0.0 : std::exp(log_w_);
}

void PoissonWeights::advance() noexcept {
    ++k_;
    if (in_log_) {
        log_w_ += std::log(lt_) - std::log(static_cast<double>(k_));
        if (log_w_ >= kPoissonLogSwitch) {
            in_log_ = false;
            w_ = std::exp(log_w_);
        }
        return;
    }
    w_ *= lt_ / static_cast<double>(k_);
}

std::vector<double> transient(const Ctmc& chain,
                              const std::vector<std::pair<TangibleId, double>>& initial,
                              double time) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(n >= 1, "empty chain");
    DPMA_REQUIRE(time >= 0.0, "negative time");
    std::vector<double> pi(n, 0.0);
    for (const auto& [s, p] : initial) {
        DPMA_REQUIRE(s < n, "initial state out of range");
        pi[s] += p;
    }
    normalize(pi);
    if (time == 0.0) return pi;

    const double lambda = std::max(chain.max_exit_rate() * 1.05, 1e-9);
    const double lt = lambda * time;

    // Uniformised one-step operator, writing into a caller-owned buffer so
    // the series loop allocates its two vectors once and swaps.
    const auto step = [&](const std::vector<double>& v, std::vector<double>& out) {
        std::fill(out.begin(), out.end(), 0.0);
        for (TangibleId s = 0; s < n; ++s) {
            out[s] += v[s] * (1.0 - chain.exit_rate(s) / lambda);
            const double mass = v[s] / lambda;
            if (mass == 0.0) continue;
            for (const RateEntry& e : chain.row(s)) {
                out[e.target] += mass * e.rate;
            }
        }
    };

    std::vector<double> result(n, 0.0);
    std::vector<double> vk = pi;
    std::vector<double> next(n, 0.0);
    double cumulative = 0.0;
    PoissonWeights weights(lt);
    for (std::size_t k = 0;; ++k, weights.advance()) {
        const double w = weights.current();
        if (w != 0.0) {
            for (std::size_t i = 0; i < n; ++i) result[i] += w * vk[i];
        }
        cumulative += w;
        if (cumulative >= 1.0 - 1e-12 && static_cast<double>(k) >= lt) break;
        if (k > 20 * (static_cast<std::size_t>(lt) + 10)) break;  // safety cap
        step(vk, next);
        vk.swap(next);
    }
    normalize(result);
    return result;
}

double accumulated_reward(const Ctmc& chain,
                          const std::vector<std::pair<TangibleId, double>>& initial,
                          const std::vector<double>& reward_rates, double time) {
    const std::size_t n = chain.num_states();
    DPMA_REQUIRE(n >= 1, "empty chain");
    DPMA_REQUIRE(reward_rates.size() == n, "reward vector does not match the chain");
    DPMA_REQUIRE(time >= 0.0, "negative time");
    if (time == 0.0) return 0.0;

    std::vector<double> pi(n, 0.0);
    for (const auto& [s, p] : initial) {
        DPMA_REQUIRE(s < n, "initial state out of range");
        pi[s] += p;
    }
    normalize(pi);

    const double lambda = std::max(chain.max_exit_rate() * 1.05, 1e-9);
    const double lt = lambda * time;

    const auto step = [&](const std::vector<double>& v, std::vector<double>& out) {
        std::fill(out.begin(), out.end(), 0.0);
        for (TangibleId s = 0; s < n; ++s) {
            out[s] += v[s] * (1.0 - chain.exit_rate(s) / lambda);
            const double mass = v[s] / lambda;
            if (mass == 0.0) continue;
            for (const RateEntry& e : chain.row(s)) {
                out[e.target] += mass * e.rate;
            }
        }
    };

    // tail_k = P(Pois(lt) >= k+1); accumulate (tail_k / lambda) * (v_k . r).
    KahanSum total;
    std::vector<double> vk = pi;
    std::vector<double> next(n, 0.0);
    double cdf = 0.0;  // P(Pois(lt) <= k)
    PoissonWeights weights(lt);
    for (std::size_t k = 0;; ++k, weights.advance()) {
        cdf += weights.current();
        const double tail = std::max(0.0, 1.0 - cdf);
        KahanSum dot;
        for (std::size_t i = 0; i < n; ++i) dot.add(vk[i] * reward_rates[i]);
        total.add(tail / lambda * dot.value());
        if (tail < 1e-13 && static_cast<double>(k) >= lt) break;
        if (k > 20 * (static_cast<std::size_t>(lt) + 10)) break;  // safety cap
        step(vk, next);
        vk.swap(next);
    }
    return total.value();
}

}  // namespace dpma::ctmc
