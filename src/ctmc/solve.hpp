#pragma once

/// \file solve.hpp
/// Numerical solution of CTMCs: steady-state distribution via GTH
/// (Grassmann–Taksar–Heyman, subtraction-free and numerically stable, used
/// for small chains), Gauss–Seidel and power iteration (sparse, for large
/// chains), and transient analysis via uniformisation.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ctmc/ctmc.hpp"

namespace dpma::ctmc {

/// Convergence record of one steady-state solve, filled when the caller
/// hangs a SolveDiagnostics off SolveOptions.  For the iterative methods the
/// residual history is the max-norm change of successive iterates, thinned
/// to at most ~2048 samples (residual_stride reports the decimation factor);
/// GTH is direct, so it reports zero iterations and an empty history.
struct SolveDiagnostics {
    std::string method;            ///< "gth", "gauss_seidel" or "power"
    std::size_t states = 0;        ///< size of the chain actually solved
    std::size_t iterations = 0;
    double final_residual = 0.0;
    std::size_t residual_stride = 1;
    std::vector<double> residuals;

    /// JSON object with the fields above (valid per obs::json_valid); what
    /// exp::ResultSet embeds as a point's "diagnostics".
    [[nodiscard]] std::string json() const;

    void record_residual(double residual);

private:
    std::size_t pending_ = 0;  ///< samples skipped since the last kept one
};

struct SolveOptions {
    double tolerance = 1e-12;          ///< max norm of successive-iterate change
    std::size_t max_iterations = 500000;
    std::size_t dense_threshold = 1500;  ///< up to this size use GTH
    /// When non-null, the solver writes its convergence record here (the
    /// caller keeps ownership; one solve per struct).
    SolveDiagnostics* diagnostics = nullptr;
};

/// True when every state can reach every other state (checked via forward
/// and backward reachability from state 0).
[[nodiscard]] bool is_irreducible(const Ctmc& chain);

/// Bottom strongly connected components (recurrent classes) of the chain.
/// Each inner vector lists the member states of one BSCC.
[[nodiscard]] std::vector<std::vector<TangibleId>> bottom_sccs(const Ctmc& chain);

/// Steady-state distribution, dispatching on chain size: GTH below the dense
/// threshold, Gauss–Seidel (with power-iteration fallback) above.
///
/// Chains with transient states (e.g. a client's one-shot prebuffering
/// delay) are handled by restricting to the recurrent class: the chain must
/// have exactly one bottom SCC, which receives all the probability mass;
/// transient states get probability zero.  Multiple bottom SCCs raise
/// NumericalError (the long-run behaviour would depend on the initial state).
[[nodiscard]] std::vector<double> steady_state(const Ctmc& chain,
                                               const SolveOptions& options = {});

/// GTH state reduction.  O(n^3) time, O(n^2) memory; exact up to rounding,
/// no subtractions.
[[nodiscard]] std::vector<double> steady_state_gth(const Ctmc& chain);

/// Gauss–Seidel iteration on the balance equations pi Q = 0.
/// Throws NumericalError when the iteration limit is reached.
[[nodiscard]] std::vector<double> steady_state_gauss_seidel(const Ctmc& chain,
                                                            const SolveOptions& options = {});

/// Power iteration on the uniformised DTMC P = I + Q/Lambda.
[[nodiscard]] std::vector<double> steady_state_power(const Ctmc& chain,
                                                     const SolveOptions& options = {});

/// Streams the Poisson(lt) probabilities w_k = e^{-lt} lt^k / k! that weight
/// the uniformisation series, without a lgamma per term: each weight follows
/// from its predecessor via w_{k+1} = w_k * lt / (k+1).  For large lt the
/// head of the series underflows; those terms are walked in log space (they
/// report weight 0) until the mass becomes representable, then the recurrence
/// takes over.  Relative error grows like k ulps from the switch point —
/// invisible next to the 1e-12 truncation thresholds of the series users.
class PoissonWeights {
public:
    /// \p lt must be finite and >= 0 (the uniformisation rate times t).
    explicit PoissonWeights(double lt);

    /// Weight of the current term (starts at k = 0).
    [[nodiscard]] double current() const noexcept { return w_; }

    /// Moves to the next term.
    void advance() noexcept;

private:
    double lt_;
    double w_ = 0.0;
    double log_w_;          ///< tracked only while the head underflows
    std::uint64_t k_ = 0;
    bool in_log_;
};

/// Transient distribution pi(t) from \p initial via uniformisation with
/// adaptive truncation of the Poisson series (truncation mass < 1e-12).
[[nodiscard]] std::vector<double> transient(
    const Ctmc& chain, const std::vector<std::pair<TangibleId, double>>& initial,
    double time);

/// Expected reward accumulated over [0, t]:  E[ integral_0^t r(X_s) ds ],
/// where r is a per-state reward rate vector.  Uses the uniformisation
/// identity  integral_0^t pois(L s, k) ds = P(Pois(L t) >= k+1) / L.
/// Answers questions like "how much energy does a cold start cost in its
/// first second?" exactly on the Markovian model.
[[nodiscard]] double accumulated_reward(
    const Ctmc& chain, const std::vector<std::pair<TangibleId, double>>& initial,
    const std::vector<double>& reward_rates, double time);

}  // namespace dpma::ctmc
