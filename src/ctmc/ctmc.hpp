#pragma once

/// \file ctmc.hpp
/// Continuous-time Markov chains extracted from a composed stochastic model.
///
/// The composed graph may contain *vanishing* states (states with enabled
/// immediate transitions; by maximal progress the timed transitions of such
/// states are pre-empted).  Construction eliminates them, producing a CTMC
/// over the *tangible* states, while keeping enough structure to compute
/// the firing frequency of every action — including actions that only occur
/// on immediate transitions — once the steady-state vector is known.

#include <cstdint>
#include <vector>

#include "adl/compose.hpp"
#include "lts/lts.hpp"

namespace dpma::ctmc {

/// Index of a tangible state in the CTMC (dense, 0-based).
using TangibleId = std::uint32_t;

inline constexpr TangibleId kNoTangible = 0xFFFFFFFFu;

/// One entry of the sparse generator: `rate` from the row state to `target`.
struct RateEntry {
    TangibleId target;
    double rate;
};

/// Sparse CTMC.  Diagonal entries are implicit (exit rates).
class Ctmc {
public:
    explicit Ctmc(std::size_t num_states) : rows_(num_states), exit_(num_states, 0.0) {}

    void add_rate(TangibleId from, TangibleId to, double rate);

    [[nodiscard]] std::size_t num_states() const noexcept { return rows_.size(); }
    [[nodiscard]] const std::vector<RateEntry>& row(TangibleId s) const { return rows_[s]; }
    [[nodiscard]] double exit_rate(TangibleId s) const { return exit_[s]; }

    /// Largest exit rate (uniformisation constant baseline).
    [[nodiscard]] double max_exit_rate() const;

private:
    std::vector<std::vector<RateEntry>> rows_;
    std::vector<double> exit_;
};

/// Immediate branch out of a vanishing state after maximal progress and
/// weight normalisation.
struct VanishingBranch {
    lts::StateId target;    ///< composed-graph state id
    double probability;     ///< branch probability (weights normalised)
    lts::ActionId action;   ///< label, for transition rewards
};

/// Result of extracting a CTMC from a composed model.
struct MarkovModel {
    Ctmc chain{0};

    /// tangible_of[g] = dense CTMC index of composed state g, or kNoTangible.
    std::vector<TangibleId> tangible_of;
    /// orig_of[t] = composed-graph state id of CTMC state t.
    std::vector<lts::StateId> orig_of;

    /// For every vanishing composed state, its normalised immediate branches
    /// (empty vector for tangible states).  The vanishing subgraph is acyclic
    /// (checked during construction).
    std::vector<std::vector<VanishingBranch>> vanishing_branches;

    /// Vanishing states in a topological order of the vanishing subgraph
    /// (sources first); used to propagate visit frequencies.
    std::vector<lts::StateId> vanishing_topo_order;

    /// Initial probability distribution over tangible states (the composed
    /// initial state, pushed through vanishing states if needed).
    std::vector<std::pair<TangibleId, double>> initial_distribution;

    [[nodiscard]] bool is_tangible(lts::StateId g) const {
        return tangible_of[g] != kNoTangible;
    }
};

/// Extracts the CTMC.  Requirements checked:
///  * every transition is exponential, immediate or (RateUnspecified ==
///    forbidden) — a functional model cannot be solved;
///  * no passive transition survives composition;
///  * the vanishing subgraph (after maximal progress) has no cycles;
///  * every tangible state has at least one outgoing timed transition
///    unless \p allow_absorbing is true.
[[nodiscard]] MarkovModel build_markov(const adl::ComposedModel& model,
                                       bool allow_absorbing = false);

}  // namespace dpma::ctmc
