#pragma once

/// \file report.hpp
/// Structured sweep results.  The runner collects one PointRecord per grid
/// point — coordinates, measure values, CI half-widths — into a ResultSet,
/// which renders itself as CSV or JSON.  bench::Table remains a third sink,
/// built from a ResultSet by the bench harness; the figure benches keep
/// their tables while gaining machine-readable outputs.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "exp/experiment.hpp"

namespace dpma::exp {

struct PointRecord {
    Point point;
    PointResult result;
};

class ResultSet {
public:
    ResultSet(std::string name, std::vector<std::string> param_names,
              std::vector<std::string> measure_names);

    /// Appends a record; the runner adds them in grid order (point.index
    /// ascending), which both emitters preserve.  result.values must have
    /// one entry per measure; half_widths may be empty (exact evaluation)
    /// or measure-aligned.
    void add(Point point, PointResult result);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<std::string>& params() const noexcept {
        return param_names_;
    }
    [[nodiscard]] const std::vector<std::string>& measures() const noexcept {
        return measure_names_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
    [[nodiscard]] const PointRecord& at(std::size_t i) const { return records_.at(i); }

    /// Value (resp. CI half-width, 0 when exact) of \p measure at record \p i.
    [[nodiscard]] double value(std::size_t i, std::string_view measure) const;
    [[nodiscard]] double half_width(std::size_t i, std::string_view measure) const;

    /// CSV: one header row (params, then each measure and measure_hw), one
    /// row per point, full double round-trip precision.
    [[nodiscard]] std::string csv() const;

    /// JSON object: {"experiment", "params", "measures", "points": [{
    /// "params": {...}, "values": {...}, "half_widths": {...},
    /// "diagnostics": {...}}, ...]}, where "diagnostics" appears only for
    /// points whose PointResult carried one (solver residual history,
    /// simulator convergence trajectory).  A failed point additionally
    /// carries "error" (exception type and message) and "attempts"; its
    /// values are NaN, rendered null.
    [[nodiscard]] std::string json() const;

private:
    [[nodiscard]] std::size_t measure_index(std::string_view measure) const;

    std::string name_;
    std::vector<std::string> param_names_;
    std::vector<std::string> measure_names_;
    std::vector<PointRecord> records_;
};

}  // namespace dpma::exp
