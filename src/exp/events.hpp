#pragma once

/// \file events.hpp
/// Live sweep telemetry: JSONL heartbeats out of exp::run().
///
/// A multi-minute sweep used to be silent until exit.  With an event sink
/// attached (programmatically via RunOptions::event_sink, or for any binary
/// via the DPMA_EVENTS environment variable / dpma_cli --events), the runner
/// streams one strict-JSON value per line as points complete:
///
///   {"type": "sweep_started", "experiment": NAME, "total": N
///    [, "restored": R]}
///   {"type": "point_started", "index": I, "params": {...}}
///   {"type": "point_finished", "index": I, "values": {...},
///    "half_widths": {...}[, "elapsed_s": E]}
///   {"type": "point_failed", "index": I, "error": MSG, "attempts": A
///    [, "elapsed_s": E]}
///   {"type": "sweep_progress", "completed": K, "total": N,
///    "mean_half_width": H[, "elapsed_s": E, "eta_s": T]}
///   {"type": "sweep_finished", "experiment": NAME, "completed": N,
///    "total": N[, "failed": F][, "restored": R][, "elapsed_s": E]}
///   {"type": "sweep_interrupted", ...same fields as sweep_finished}
///
/// point_failed replaces point_finished for a point whose eval exhausted its
/// retry budget (exp/runner.hpp failure isolation); "restored" counts points
/// skipped because a checkpoint already held them (--resume), and
/// sweep_interrupted closes a stream whose sweep stopped early on
/// SIGINT/SIGTERM (exp/shutdown.hpp).  The optional fields appear only when
/// nonzero, so streams of fully successful sweeps are unchanged.
///
/// Ordering contract: events are the canonical in-index-order serialisation
/// of the sweep, not a scheduler trace.  Workers finish points in whatever
/// order the pool schedules them; the emitter drains the contiguous prefix
/// of completed points, so the stream is *identical for every jobs count* —
/// "completed" is strictly monotone and the final event's count equals the
/// ResultSet's point count.  The only non-deterministic fields are the
/// wall-clock ones (elapsed_s, eta_s, and point_finished.elapsed_s); set
/// DPMA_EVENTS_TIMING=0 (or EventOptions::timing = false) to omit them and
/// the stream is bit-identical for any DPMA_JOBS.
///
/// mean_half_width is the running mean, over completed points, of each
/// point's mean CI half-width (0 for exact evaluations) — a live answer to
/// "are the confidence intervals tight enough to stop".
///
/// DPMA_EVENTS values: a file path (opened in append mode, so several
/// sweeps in one process — or one bench binary — share the stream), or
/// "-" / "stderr" to stream to stderr; empty or "0" disables.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "exp/experiment.hpp"

namespace dpma::exp {

/// Receives one complete JSONL line (no trailing newline) per event.
using EventSinkFn = std::function<void(const std::string& line)>;

struct EventOptions {
    EventSinkFn sink;    ///< empty = telemetry disabled
    bool timing = true;  ///< include elapsed_s / eta_s wall-clock fields
};

/// Sink options from DPMA_EVENTS / DPMA_EVENTS_TIMING.  The returned sink
/// owns the output stream (file handles stay open as long as the sink is
/// alive); an unset/disabled variable yields an empty sink.  Throws Error
/// when the file cannot be opened.
[[nodiscard]] EventOptions events_from_env();

/// Per-sweep emitter used by exp::run(); public so the TSan smoke and tests
/// can drive it directly.  All methods are single-threaded by contract: the
/// runner serialises calls under its drain mutex.
class SweepEvents {
public:
    /// Inert when \p options has no sink — every method is then a no-op.
    /// \p restored counts checkpoint-restored points (skipped on resume);
    /// they are announced in sweep_started and pre-counted as completed.
    SweepEvents(EventOptions options, const std::string& experiment,
                const std::vector<std::string>& measures, std::size_t total,
                std::size_t restored = 0);

    [[nodiscard]] bool active() const noexcept { return static_cast<bool>(options_.sink); }

    /// Emits point_started + point_finished (or point_failed) +
    /// sweep_progress for one point, in index order (the runner drains
    /// completed prefixes).
    void point(const Point& point, const PointResult& result);

    /// Emits the final sweep_finished event — or sweep_interrupted when the
    /// sweep stopped early on a shutdown request.
    void finish(bool interrupted = false);

private:
    void emit(const std::string& line);

    EventOptions options_;
    std::string experiment_;
    std::vector<std::string> measures_;
    std::size_t total_ = 0;
    std::size_t completed_ = 0;
    std::size_t failed_ = 0;
    std::size_t restored_ = 0;
    double half_width_sum_ = 0.0;
    std::uint64_t start_ns_ = 0;
};

}  // namespace dpma::exp
