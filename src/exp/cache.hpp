#pragma once

/// \file cache.hpp
/// Memoization over the expensive invariants of a parameter sweep.
///
/// Sweeping a DPM operation rate re-solves the *same* state space at every
/// point: composing the architectural description (a BFS over the global
/// state space) and eliminating vanishing states do not depend on the value
/// of an exponential rate, only on the model's structure.  Following the
/// amortization idea of parametric model checking (Fang et al., fast
/// parametric model checking through model fragmentation), the cache keeps
///
///  * composed LTSs / reachable state spaces, and
///  * extracted CTMC skeletons (vanishing elimination, lumping inputs)
///
/// keyed by a caller-chosen content key, so a sweep composes its family once
/// and each point only patches rates and re-solves.
///
/// Hit/miss accounting lives on the process-wide metrics registry
/// (obs::counter "cache.hits" / "cache.misses"), so bench tables, the CLI's
/// cache line and --metrics dumps all read the same numbers; stats() keeps a
/// per-instance view on top (tests, multi-cache processes).
///
/// Thread safety: all methods may be called concurrently from pool workers.
/// Builds run under the cache lock (a concurrent request for the same key
/// must not build twice); the lock is recursive so a markov() builder may
/// call composed() on the same cache.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "adl/compose.hpp"
#include "core/dist.hpp"
#include "ctmc/ctmc.hpp"

namespace dpma::exp {

class ModelCache {
public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
    };

    /// Process-wide totals from the metrics registry: what --metrics and the
    /// bench harness report.  Covers every ModelCache in the process.
    [[nodiscard]] static Stats global_stats();

    /// The composed model stored under \p key, calling \p build on a miss.
    [[nodiscard]] std::shared_ptr<const adl::ComposedModel> composed(
        const std::string& key, const std::function<adl::ComposedModel()>& build);

    /// The extracted CTMC stored under \p key, calling \p build on a miss.
    [[nodiscard]] std::shared_ptr<const ctmc::MarkovModel> markov(
        const std::string& key, const std::function<ctmc::MarkovModel()>& build);

    [[nodiscard]] Stats stats() const;
    void clear();

private:
    mutable std::recursive_mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const adl::ComposedModel>> composed_;
    std::unordered_map<std::string, std::shared_ptr<const ctmc::MarkovModel>> markov_;
    Stats stats_;
};

/// Copy of \p model with the exponential rate of every transition whose
/// label involves instance.action (either side of a synchronised label, as
/// in measure ENABLED predicates) replaced by \p rate.  The reachable state
/// space is unchanged — an exponential transition is enabled whatever its
/// rate — which is what lets a sweep patch a cached skeleton instead of
/// recomposing.  Throws ModelError when nothing matches or a matching
/// transition is not exponential (patching an immediate or deterministic
/// transition could change the structure, so it is refused).
[[nodiscard]] adl::ComposedModel with_exp_rate(const adl::ComposedModel& model,
                                               const std::string& instance,
                                               const std::string& action, double rate);

/// General-phase counterpart: replaces the general distribution of every
/// matching transition by \p dist.  Same matching and error rules; matches
/// must carry a general distribution already.
[[nodiscard]] adl::ComposedModel with_dist(const adl::ComposedModel& model,
                                           const std::string& instance,
                                           const std::string& action, const Dist& dist);

}  // namespace dpma::exp
