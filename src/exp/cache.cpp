#include "exp/cache.hpp"

#include <variant>

#include "adl/measure.hpp"
#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::exp {
namespace {

obs::Counter& hit_counter() {
    static obs::Counter& counter = obs::counter("cache.hits");
    return counter;
}

obs::Counter& miss_counter() {
    static obs::Counter& counter = obs::counter("cache.misses");
    return counter;
}

/// Shared patching skeleton: copies the model and hands the rate of every
/// transition whose label matches instance.action to \p patch.  Uses the
/// bulk Lts::mutate_rates walk — a frozen source yields a CSR-backed copy
/// that is patched in one contiguous pass.
template <typename PatchFn>
adl::ComposedModel patch_matching(const adl::ComposedModel& model,
                                  const std::string& instance,
                                  const std::string& action, PatchFn patch) {
    DPMA_SPAN("exp.patch_model", "exp");
    const std::vector<char> labels = adl::action_mask(
        model, adl::EnabledPredicate{instance, action});
    adl::ComposedModel copy = model;
    std::size_t patched = 0;
    copy.graph.mutate_rates([&](lts::ActionId a, lts::Rate& rate) {
        if (!labels[a]) return;
        patch(a, rate);
        ++patched;
    });
    if (patched == 0) {
        throw ModelError("no transition matches " + instance + "." + action);
    }
    return copy;
}

}  // namespace

std::shared_ptr<const adl::ComposedModel> ModelCache::composed(
    const std::string& key, const std::function<adl::ComposedModel()>& build) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (const auto it = composed_.find(key); it != composed_.end()) {
        ++stats_.hits;
        hit_counter().add();
        return it->second;
    }
    ++stats_.misses;
    miss_counter().add();
    DPMA_SPAN("cache.build_composed", "cache");
    auto model = std::make_shared<const adl::ComposedModel>(build());
    composed_.emplace(key, model);
    return model;
}

std::shared_ptr<const ctmc::MarkovModel> ModelCache::markov(
    const std::string& key, const std::function<ctmc::MarkovModel()>& build) {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    if (const auto it = markov_.find(key); it != markov_.end()) {
        ++stats_.hits;
        hit_counter().add();
        return it->second;
    }
    ++stats_.misses;
    miss_counter().add();
    DPMA_SPAN("cache.build_markov", "cache");
    auto markov = std::make_shared<const ctmc::MarkovModel>(build());
    markov_.emplace(key, markov);
    return markov;
}

ModelCache::Stats ModelCache::global_stats() {
    return Stats{hit_counter().value(), miss_counter().value()};
}

ModelCache::Stats ModelCache::stats() const {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    return stats_;
}

void ModelCache::clear() {
    const std::lock_guard<std::recursive_mutex> lock(mutex_);
    composed_.clear();
    markov_.clear();
    stats_ = {};
}

adl::ComposedModel with_exp_rate(const adl::ComposedModel& model,
                                 const std::string& instance,
                                 const std::string& action, double rate) {
    DPMA_REQUIRE(rate > 0.0, "exponential rate must be > 0");
    return patch_matching(
        model, instance, action,
        [&](lts::ActionId a, lts::Rate& transition_rate) {
            if (!std::holds_alternative<lts::RateExp>(transition_rate)) {
                throw ModelError("transition " + model.graph.actions()->name(a) +
                                 " is not exponential; cannot patch its rate");
            }
            transition_rate = lts::RateExp{rate};
        });
}

adl::ComposedModel with_dist(const adl::ComposedModel& model,
                             const std::string& instance, const std::string& action,
                             const Dist& dist) {
    return patch_matching(
        model, instance, action,
        [&](lts::ActionId a, lts::Rate& transition_rate) {
            if (!std::holds_alternative<lts::RateGeneral>(transition_rate)) {
                throw ModelError("transition " + model.graph.actions()->name(a) +
                                 " has no general distribution; cannot patch it");
            }
            transition_rate = lts::RateGeneral{dist};
        });
}

}  // namespace dpma::exp
