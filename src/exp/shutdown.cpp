#include "exp/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace dpma::exp {
namespace {

// Lock-free or the handler is not async-signal-safe; every platform this
// repo targets satisfies this, and the static_assert documents the
// requirement instead of hoping.
std::atomic<int> g_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free atomic");

void handle_shutdown_signal(int signal) {
    g_signal.store(signal, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handler() {
    static const bool installed = [] {
        struct sigaction action {};
        action.sa_handler = handle_shutdown_signal;
        sigemptyset(&action.sa_mask);
        // No SA_RESTART: a sweep blocked in a slow read should see EINTR
        // and come around to polling shutdown_requested().
        action.sa_flags = 0;
        (void)sigaction(SIGINT, &action, nullptr);
        (void)sigaction(SIGTERM, &action, nullptr);
        return true;
    }();
    (void)installed;
}

bool shutdown_requested() noexcept {
    return g_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() noexcept {
    return g_signal.load(std::memory_order_relaxed);
}

void reset_shutdown() noexcept { g_signal.store(0, std::memory_order_relaxed); }

}  // namespace dpma::exp
