#pragma once

/// \file experiment.hpp
/// Declarative parameter sweeps.  Every reproduction artifact of this repo is
/// a sweep — solve or simulate one model family at many DPM operation rates,
/// with and without DPM — so the engine makes the sweep itself a value: an
/// Experiment is a parameter Grid (cartesian product of named Axes), a
/// point-evaluation function and the list of measures it returns.  The runner
/// (exp/runner.hpp) turns an Experiment into a ResultSet, in parallel, with
/// per-point seeds derived deterministically from (base_seed, point_index).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpma::exp {

class ThreadPool;

/// One named sweep dimension and its values, in sweep order.
struct Axis {
    std::string name;
    std::vector<double> values;

    [[nodiscard]] static Axis list(std::string name, std::vector<double> values);
    /// \p steps evenly spaced values from lo to hi inclusive (steps >= 1;
    /// steps == 1 yields just lo).
    [[nodiscard]] static Axis linspace(std::string name, double lo, double hi,
                                       std::size_t steps);
    /// \p steps geometrically spaced values from lo to hi inclusive
    /// (lo, hi > 0).
    [[nodiscard]] static Axis logspace(std::string name, double lo, double hi,
                                       std::size_t steps);
    /// The {0, 1} axis, e.g. NO-DPM vs DPM.
    [[nodiscard]] static Axis toggle(std::string name);
};

/// One sweep point: the coordinate of every axis, by name.
struct Point {
    std::size_t index = 0;
    std::vector<std::pair<std::string, double>> coords;

    /// Coordinate of axis \p name; throws Error when the grid has no such
    /// axis (a misspelt name in an eval function should fail loudly).
    [[nodiscard]] double at(std::string_view name) const;
    /// at(name) != 0, for toggle axes.
    [[nodiscard]] bool flag(std::string_view name) const;
};

/// Cartesian product of axes.  The first axis varies slowest, the last one
/// fastest, so point order reads like nested for loops — exactly the loops
/// the bench_fig* binaries used to hand-roll.
class Grid {
public:
    Grid& axis(Axis axis);

    [[nodiscard]] std::size_t size() const;  ///< product of axis lengths (1 when empty)
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] const std::vector<Axis>& axes() const noexcept { return axes_; }

    /// Decodes linear \p index into a Point (mixed-radix).
    [[nodiscard]] Point point(std::size_t index) const;

private:
    std::vector<Axis> axes_;
};

/// What evaluating one point produced: one value per experiment measure and,
/// for statistical evaluations, the CI half-width per measure (empty for
/// exact solvers).
struct PointResult {
    std::vector<double> values;
    std::vector<double> half_widths;
    /// Optional convergence diagnostics as a JSON object literal — e.g.
    /// ctmc::SolveDiagnostics::json() or sim::convergence_json().  Empty
    /// means none; when set it is embedded verbatim in ResultSet::json().
    std::string diagnostics;
    /// Wall-clock seconds the runner spent evaluating this point, filled in
    /// by exp::run() (an eval function's own value is overwritten).  This is
    /// the per-point perf series run records diff (exp/regress.hpp); being
    /// wall clock it is *not* part of the determinism contract.
    double elapsed_s = 0.0;
    /// Failure record: empty for a successful evaluation, otherwise the
    /// exception type and message the runner captured once the retry budget
    /// (RunOptions::retries) was exhausted.  Failed points keep one NaN per
    /// measure (rendered null in JSON) so they stay measure-aligned.
    std::string error;
    /// Evaluation attempts the runner made for this point: 1 means the
    /// first try succeeded, >1 means retries happened, 0 means the result
    /// was restored from a checkpoint without running in this process.
    int attempts = 0;

    [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

/// Per-point context handed to the evaluation function by the runner.
struct PointContext {
    std::uint64_t base_seed = 1;
    std::size_t point_index = 0;
    /// The pool executing the sweep; eval functions may fan out further
    /// (e.g. simulation replications via exp::simulate_replications) —
    /// nested use is safe because the pool's run() is reentrant.
    ThreadPool* pool = nullptr;

    /// Deterministic per-point seed: sim::Rng::derive_seed(base_seed,
    /// point_index).  Independent of how points are scheduled over threads,
    /// which is what makes parallel sweeps bit-identical to serial ones.
    [[nodiscard]] std::uint64_t seed() const;
};

/// A declarative sweep: evaluate `eval` at every grid point and collect the
/// named measures.
struct Experiment {
    std::string name;
    Grid grid;
    std::vector<std::string> measures;
    std::function<PointResult(const Point&, const PointContext&)> eval;
};

}  // namespace dpma::exp
