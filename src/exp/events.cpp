#include "exp/events.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dpma::exp {
namespace {

std::uint64_t wall_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string params_json(const Point& point) {
    std::string out = "{";
    for (std::size_t p = 0; p < point.coords.size(); ++p) {
        if (p > 0) out += ",";
        out += obs::json_quote(point.coords[p].first) + ":" +
               obs::json_number(point.coords[p].second);
    }
    out += "}";
    return out;
}

std::string measure_map_json(const std::vector<std::string>& measures,
                             const std::vector<double>& values) {
    std::string out = "{";
    for (std::size_t m = 0; m < measures.size(); ++m) {
        if (m > 0) out += ",";
        out += obs::json_quote(measures[m]) + ":" +
               obs::json_number(m < values.size() ? values[m] : 0.0);
    }
    out += "}";
    return out;
}

}  // namespace

EventOptions events_from_env() {
    EventOptions options;
    const char* env = std::getenv("DPMA_EVENTS");
    if (env == nullptr) return options;
    const std::string value(env);
    if (value.empty() || value == "0") return options;
    if (const char* timing = std::getenv("DPMA_EVENTS_TIMING")) {
        options.timing = std::string_view(timing) != "0";
    }
    if (value == "-" || value == "stderr") {
        options.sink = [](const std::string& line) {
            std::fprintf(stderr, "%s\n", line.c_str());
            std::fflush(stderr);
        };
        return options;
    }
    // Append: several sweeps in one process (e.g. a bench binary running the
    // DPM and NO-DPM series) share one stream.
    auto out = std::make_shared<std::ofstream>(value, std::ios::binary | std::ios::app);
    if (!*out) throw Error("DPMA_EVENTS: cannot open " + value);
    options.sink = [out, value](const std::string& line) {
        *out << line << '\n';
        out->flush();  // heartbeats must be visible while the sweep runs
        // A full disk must fail the sweep, not silently drop heartbeats.
        if (!*out) throw Error("DPMA_EVENTS: write failed: " + value);
    };
    return options;
}

SweepEvents::SweepEvents(EventOptions options, const std::string& experiment,
                         const std::vector<std::string>& measures, std::size_t total,
                         std::size_t restored)
    : options_(std::move(options)),
      experiment_(experiment),
      measures_(measures),
      total_(total),
      completed_(restored),
      restored_(restored) {
    if (!active()) return;
    start_ns_ = wall_now_ns();
    std::string line =
        "{\"type\":\"sweep_started\",\"experiment\":" + obs::json_quote(experiment_) +
        ",\"total\":" + std::to_string(total_);
    if (restored_ > 0) line += ",\"restored\":" + std::to_string(restored_);
    line += "}";
    emit(line);
}

void SweepEvents::point(const Point& point, const PointResult& result) {
    if (!active()) return;
    emit("{\"type\":\"point_started\",\"index\":" + std::to_string(point.index) +
         ",\"params\":" + params_json(point) + "}");

    if (result.failed()) {
        ++failed_;
        std::string failed =
            "{\"type\":\"point_failed\",\"index\":" + std::to_string(point.index) +
            ",\"error\":" + obs::json_quote(result.error) +
            ",\"attempts\":" + std::to_string(result.attempts);
        if (options_.timing) {
            failed += ",\"elapsed_s\":" + obs::json_number(result.elapsed_s);
        }
        failed += "}";
        emit(failed);
    } else {
        std::string finished =
            "{\"type\":\"point_finished\",\"index\":" + std::to_string(point.index) +
            ",\"values\":" + measure_map_json(measures_, result.values) +
            ",\"half_widths\":" + measure_map_json(measures_, result.half_widths);
        if (options_.timing) {
            finished += ",\"elapsed_s\":" + obs::json_number(result.elapsed_s);
        }
        finished += "}";
        emit(finished);
    }

    ++completed_;
    double point_hw = 0.0;
    if (!result.failed() && !result.half_widths.empty()) {
        for (const double hw : result.half_widths) point_hw += hw;
        point_hw /= static_cast<double>(result.half_widths.size());
    }
    half_width_sum_ += point_hw;
    std::string progress =
        "{\"type\":\"sweep_progress\",\"completed\":" + std::to_string(completed_) +
        ",\"total\":" + std::to_string(total_) + ",\"mean_half_width\":" +
        obs::json_number(half_width_sum_ / static_cast<double>(completed_));
    if (options_.timing) {
        const double elapsed = static_cast<double>(wall_now_ns() - start_ns_) * 1e-9;
        const double eta = completed_ == 0
                               ? 0.0
                               : elapsed / static_cast<double>(completed_) *
                                     static_cast<double>(total_ - completed_);
        progress += ",\"elapsed_s\":" + obs::json_number(elapsed) +
                    ",\"eta_s\":" + obs::json_number(eta);
    }
    progress += "}";
    emit(progress);
}

void SweepEvents::finish(bool interrupted) {
    if (!active()) return;
    std::string line = "{\"type\":";
    line += interrupted ? "\"sweep_interrupted\"" : "\"sweep_finished\"";
    line += ",\"experiment\":" + obs::json_quote(experiment_) +
            ",\"completed\":" + std::to_string(completed_) +
            ",\"total\":" + std::to_string(total_);
    if (failed_ > 0) line += ",\"failed\":" + std::to_string(failed_);
    if (restored_ > 0) line += ",\"restored\":" + std::to_string(restored_);
    if (options_.timing) {
        line += ",\"elapsed_s\":" +
                obs::json_number(static_cast<double>(wall_now_ns() - start_ns_) * 1e-9);
    }
    line += "}";
    emit(line);
}

void SweepEvents::emit(const std::string& line) {
    static obs::Counter& emitted = obs::counter("exp.events.emitted");
    emitted.add();
    options_.sink(line);
}

}  // namespace dpma::exp
