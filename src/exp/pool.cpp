#include "exp/pool.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "obs/log.hpp"

namespace dpma::exp {
namespace {

bool only_trailing_space(const char* rest) {
    while (*rest != '\0') {
        if (std::isspace(static_cast<unsigned char>(*rest)) == 0) return false;
        ++rest;
    }
    return true;
}

}  // namespace

std::size_t default_jobs() {
    const unsigned hardware = std::thread::hardware_concurrency();
    const std::size_t fallback = hardware == 0 ? 1 : hardware;
    const char* env = std::getenv("DPMA_JOBS");
    if (env == nullptr) return fallback;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (errno != 0 || end == env || !only_trailing_space(end) || value < 1) {
        obs::logf(obs::LogLevel::Warn,
                  "ignoring DPMA_JOBS='%s' (want a positive integer); using %zu",
                  env, fallback);
        return fallback;
    }
    return static_cast<std::size_t>(value);
}

double env_positive_double(const char* name, double fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr) return fallback;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(env, &end);
    if (errno != 0 || end == env || !only_trailing_space(end) || !(value > 0.0)) {
        obs::logf(obs::LogLevel::Warn, "ignoring %s='%s' (want a number > 0); using %g",
                  name, env, fallback);
        return fallback;
    }
    return value;
}

/// Shared state of one run()/run_collect() call.  Indices are claimed from
/// `next`; `done` counts completed ones so the submitting thread knows when
/// to wake up.  `slots` (run_collect mode) points at a caller-owned
/// per-index exception array; when set, a throwing job records its exception
/// there instead of cancelling the batch, so siblings keep running.
struct ThreadPool::Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::exception_ptr* slots = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;  // guarded by mutex
};

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(jobs == 0 ? default_jobs() : jobs) {
    for (std::size_t i = 1; i < jobs_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::execute(Batch& batch) {
    for (;;) {
        const std::size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= batch.count) return;
        if (!batch.cancelled.load(std::memory_order_relaxed)) {
            try {
                (*batch.body)(index);
            } catch (...) {
                if (batch.slots != nullptr) {
                    // run_collect(): isolate the failure to its own index.
                    // Each slot is written by exactly one job, so no lock.
                    batch.slots[index] = std::current_exception();
                } else {
                    const std::lock_guard<std::mutex> lock(batch.mutex);
                    if (!batch.error) batch.error = std::current_exception();
                    batch.cancelled.store(true, std::memory_order_relaxed);
                }
            }
        }
        if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
            const std::lock_guard<std::mutex> lock(batch.mutex);
            batch.finished.notify_all();
        }
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty()) return;
            batch = queue_.front();
        }
        execute(*batch);
        {
            // The batch is exhausted (every index claimed); retire it.
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
        }
    }
}

void ThreadPool::run_batch(const std::shared_ptr<Batch>& batch) {
    if (!workers_.empty() && batch->count > 1) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(batch);
        }
        work_available_.notify_all();
    }
    execute(*batch);  // the caller works too — this is what makes run() reentrant
    {
        std::unique_lock<std::mutex> lock(batch->mutex);
        batch->finished.wait(lock, [&] {
            return batch->done.load(std::memory_order_acquire) == batch->count;
        });
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (*it == batch) {
                queue_.erase(it);
                break;
            }
        }
    }
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    const auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->body = &body;
    run_batch(batch);
    if (batch->error) std::rethrow_exception(batch->error);
}

std::vector<std::exception_ptr> ThreadPool::run_collect(
    std::size_t count, const std::function<void(std::size_t)>& body) {
    std::vector<std::exception_ptr> errors(count);
    if (count == 0) return errors;
    const auto batch = std::make_shared<Batch>();
    batch->count = count;
    batch->body = &body;
    batch->slots = errors.data();
    run_batch(batch);
    return errors;
}

}  // namespace dpma::exp
