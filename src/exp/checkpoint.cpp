#include "exp/checkpoint.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <utility>

#include "core/error.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/log.hpp"

namespace dpma::exp {
namespace {

constexpr const char* kSchema = "dpma-checkpoint/1";

std::string quoted_list(const std::vector<std::string>& items) {
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ",";
        out += obs::json_quote(items[i]);
    }
    out += "]";
    return out;
}

std::string measure_map(const std::vector<std::string>& measures,
                        const std::vector<double>& values) {
    std::string out = "{";
    for (std::size_t m = 0; m < measures.size(); ++m) {
        if (m > 0) out += ",";
        out += obs::json_quote(measures[m]) + ":" +
               obs::json_number(m < values.size() ? values[m] : 0.0);
    }
    out += "}";
    return out;
}

/// Seeds are stored as decimal *strings*: a 64-bit seed does not survive a
/// round-trip through a JSON number (53-bit double mantissa).
bool parse_u64(const std::string& text, std::uint64_t& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size()) return false;
    out = value;
    return true;
}

/// The per-point seed the runner would derive — what point records store.
std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index) {
    PointContext context;
    context.base_seed = base_seed;
    context.point_index = index;
    return context.seed();
}

void check_header(const obs::Json& record, const Experiment& experiment,
                  std::uint64_t base_seed, const std::string& path) {
    const auto fail = [&](const std::string& what) {
        throw Error("checkpoint " + path + " does not match this sweep: " + what);
    };
    if (record.string_at("schema") != kSchema) {
        fail("schema '" + record.string_at("schema") + "' (want " + kSchema + ")");
    }
    if (record.string_at("experiment") != experiment.name) {
        fail("experiment '" + record.string_at("experiment") + "' (running '" +
             experiment.name + "')");
    }
    std::uint64_t recorded_base = 0;
    if (!parse_u64(record.string_at("base_seed"), recorded_base) ||
        recorded_base != base_seed) {
        fail("base_seed '" + record.string_at("base_seed") + "' (running with " +
             std::to_string(base_seed) + ")");
    }
    if (static_cast<std::size_t>(record.number_at("total")) != experiment.grid.size()) {
        fail("grid has " + std::to_string(record.number_at("total")) +
             " points (running " + std::to_string(experiment.grid.size()) + ")");
    }
    const auto names_match = [](const obs::Json* list,
                                const std::vector<std::string>& names) {
        if (list == nullptr || !list->is_array() || list->array.size() != names.size()) {
            return false;
        }
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (!list->array[i].is_string() || list->array[i].string != names[i]) {
                return false;
            }
        }
        return true;
    };
    if (!names_match(record.find("params"), experiment.grid.names())) {
        fail("different parameter axes");
    }
    if (!names_match(record.find("measures"), experiment.measures)) {
        fail("different measures");
    }
}

PointResult parse_point(const obs::Json& record, const Experiment& experiment,
                        std::uint64_t base_seed, std::size_t index,
                        const std::string& path) {
    const auto fail = [&](const std::string& what) {
        throw Error("checkpoint " + path + ": point " + std::to_string(index) + ": " +
                    what);
    };
    std::uint64_t recorded_seed = 0;
    if (!parse_u64(record.string_at("seed"), recorded_seed)) fail("missing seed");
    if (recorded_seed != point_seed(base_seed, index)) {
        fail("seed mismatch (checkpoint written with a different base seed?)");
    }
    PointResult result;
    const obs::Json* values = record.find("values");
    if (values == nullptr || !values->is_object()) fail("missing values");
    for (const std::string& measure : experiment.measures) {
        const obs::Json* value = values->find(measure);
        if (value == nullptr) fail("missing measure '" + measure + "'");
        // json_number() renders NaN as null; read it back the same way.
        result.values.push_back(value->is_number()
                                    ? value->number
                                    : std::numeric_limits<double>::quiet_NaN());
    }
    if (const obs::Json* hws = record.find("half_widths")) {
        if (!hws->is_object()) fail("malformed half_widths");
        for (const std::string& measure : experiment.measures) {
            const obs::Json* hw = hws->find(measure);
            if (hw == nullptr) fail("missing half-width '" + measure + "'");
            result.half_widths.push_back(
                hw->is_number() ? hw->number
                                : std::numeric_limits<double>::quiet_NaN());
        }
    }
    result.elapsed_s = record.number_at("elapsed_s");
    result.error = record.string_at("error");
    // "diagnostics" is the original JSON object literal stored as a string;
    // restoring it verbatim keeps resumed artifacts byte-identical.
    result.diagnostics = record.string_at("diagnostics");
    // attempts deliberately stays 0: the marker for "restored, not run here".
    return result;
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::string path, const Experiment& experiment,
                                   std::uint64_t base_seed)
    : appender_(std::move(path)), measures_(experiment.measures) {
    std::string header = "{\"type\":\"sweep_checkpoint\",\"schema\":";
    header += obs::json_quote(kSchema);
    header += ",\"experiment\":" + obs::json_quote(experiment.name);
    header += ",\"base_seed\":" + obs::json_quote(std::to_string(base_seed));
    header += ",\"total\":" + std::to_string(experiment.grid.size());
    header += ",\"params\":" + quoted_list(experiment.grid.names());
    header += ",\"measures\":" + quoted_list(measures_);
    header += "}";
    appender_.append_line(header);
}

void CheckpointWriter::point(const Point& point, const PointResult& result,
                             std::uint64_t seed) {
    std::string line = "{\"type\":\"point\",\"index\":" + std::to_string(point.index);
    line += ",\"seed\":" + obs::json_quote(std::to_string(seed));
    line += ",\"params\":{";
    for (std::size_t p = 0; p < point.coords.size(); ++p) {
        if (p > 0) line += ",";
        line += obs::json_quote(point.coords[p].first) + ":" +
                obs::json_number(point.coords[p].second);
    }
    line += "},\"values\":" + measure_map(measures_, result.values);
    if (!result.half_widths.empty()) {
        line += ",\"half_widths\":" + measure_map(measures_, result.half_widths);
    }
    line += ",\"elapsed_s\":" + obs::json_number(result.elapsed_s);
    line += ",\"attempts\":" + std::to_string(result.attempts);
    if (result.failed()) line += ",\"error\":" + obs::json_quote(result.error);
    if (!result.diagnostics.empty()) {
        line += ",\"diagnostics\":" + obs::json_quote(result.diagnostics);
    }
    line += "}";
    appender_.append_line(line);
}

CheckpointState load_checkpoint(const std::string& path, const Experiment& experiment,
                                std::uint64_t base_seed) {
    CheckpointState state;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        // First run of an always-resume script: nothing to restore yet.
        obs::logf(obs::LogLevel::Warn, "checkpoint %s not found; starting fresh",
                  path.c_str());
        return state;
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        obs::Json record;
        try {
            record = obs::json_parse(line);
        } catch (const Error&) {
            // A torn final line is the expected wound of a killed writer;
            // anything else is corruption and must not be papered over.
            if (in.peek() == std::ifstream::traits_type::eof()) {
                obs::logf(obs::LogLevel::Warn,
                          "checkpoint %s: ignoring torn final line %zu", path.c_str(),
                          line_no);
                break;
            }
            throw Error("checkpoint " + path + ": malformed JSON on line " +
                        std::to_string(line_no));
        }
        const std::string type = record.string_at("type");
        if (type == "sweep_checkpoint") {
            check_header(record, experiment, base_seed, path);
        } else if (type == "point") {
            const auto index = static_cast<std::size_t>(record.number_at("index"));
            if (index >= experiment.grid.size()) {
                throw Error("checkpoint " + path + ": point index " +
                            std::to_string(index) + " out of range");
            }
            PointResult result =
                parse_point(record, experiment, base_seed, index, path);
            if (result.failed()) {
                // Failed points re-run on resume; that is the point of
                // resuming after fixing whatever made them fail.
                ++state.failed_seen;
                state.finished.erase(index);
            } else {
                state.finished[index] = std::move(result);
            }
        } else {
            throw Error("checkpoint " + path + ": unknown record type '" + type +
                        "' on line " + std::to_string(line_no));
        }
    }
    return state;
}

}  // namespace dpma::exp
