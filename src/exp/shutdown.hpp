#pragma once

/// \file shutdown.hpp
/// Cooperative graceful shutdown for long-running sweeps.
///
/// A multi-hour lifetime sweep killed by Ctrl-C or a batch scheduler's
/// SIGTERM used to die point-blank: default signal disposition, process
/// gone, every finished-but-unwritten point lost.  This module turns those
/// signals into a *request*: install_shutdown_handler() registers a
/// sigaction for SIGINT and SIGTERM whose handler only stores the signal
/// number into a lock-free atomic — the full extent of what an
/// async-signal-safe handler may do — and the sweep runner
/// (exp/runner.hpp) polls shutdown_requested() before starting each point.
/// On request it stops dispatching new points, lets in-flight ones drain,
/// flushes the checkpoint, emits a sweep_interrupted event and returns with
/// RunOutcome::interrupted set so the CLI can exit with its distinct code.

namespace dpma::exp {

/// Installs the SIGINT/SIGTERM handler (idempotent; later calls are no-ops).
/// Call once near the top of a CLI command that runs sweeps.  Tools that
/// want default kill behaviour simply never call this.
void install_shutdown_handler();

/// True once SIGINT or SIGTERM has been received since the last
/// reset_shutdown().  Safe to call from any thread; a plain load.
[[nodiscard]] bool shutdown_requested() noexcept;

/// The signal number that triggered the request (SIGINT or SIGTERM), or 0
/// when no request is pending.
[[nodiscard]] int shutdown_signal() noexcept;

/// Clears a pending request.  For tests, which raise(3) signals and must
/// not leak the request into the next test case.
void reset_shutdown() noexcept;

}  // namespace dpma::exp
