#include "exp/regress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <random>

#include "core/error.hpp"
#include "obs/json.hpp"

namespace dpma::exp {
namespace {

struct SeriesPoints {
    /// Canonical param key -> (elapsed_s, measure values, half widths).
    struct PointData {
        double elapsed_s = 0.0;
        bool failed = false;  ///< the record carries an "error" member
        std::vector<std::pair<std::string, double>> values;  ///< measure, value
        std::vector<double> half_widths;                     ///< value-aligned
    };
    std::map<std::string, PointData> points;
};

/// Canonical identity of a point inside a series: the sorted
/// "name=value" coordinates — insensitive to key order in the JSON.
std::string point_key(const obs::Json& params) {
    std::vector<std::string> parts;
    for (const auto& [name, value] : params.object) {
        parts.push_back(name + "=" + obs::json_number(value.number));
    }
    std::sort(parts.begin(), parts.end());
    std::string key;
    for (const std::string& part : parts) {
        if (!key.empty()) key += ";";
        key += part;
    }
    return key;
}

/// Series name -> its points, from a run record's "series" array.
std::map<std::string, SeriesPoints> collect_series(const obs::Json& report) {
    std::map<std::string, SeriesPoints> out;
    const obs::Json* series = report.find("series");
    if (series == nullptr || !series->is_array()) return out;
    for (const obs::Json& one : series->array) {
        const std::string name = one.string_at("experiment");
        if (name.empty()) continue;
        SeriesPoints& bucket = out[name];
        const obs::Json* points = one.find("points");
        if (points == nullptr || !points->is_array()) continue;
        for (const obs::Json& point : points->array) {
            const obs::Json* params = point.find("params");
            if (params == nullptr || !params->is_object()) continue;
            SeriesPoints::PointData data;
            data.elapsed_s = point.number_at("elapsed_s");
            if (const obs::Json* error = point.find("error")) {
                data.failed = error->is_string();
            }
            if (const obs::Json* values = point.find("values");
                values != nullptr && values->is_object()) {
                const obs::Json* hws = point.find("half_widths");
                for (const auto& [measure, value] : values->object) {
                    data.values.emplace_back(measure, value.number);
                    data.half_widths.push_back(
                        hws != nullptr ? hws->number_at(measure) : 0.0);
                }
            }
            bucket.points[point_key(*params)] = std::move(data);
        }
    }
    return out;
}

void require_run_record(const obs::Json& doc, const char* which) {
    const std::string schema = doc.string_at("schema");
    if (schema.rfind("dpma-run-report/", 0) != 0) {
        throw Error(std::string(which) +
                    " is not a run record (missing \"schema\": "
                    "\"dpma-run-report/...\"); produce one with DPMA_REPORT/"
                    "--report");
    }
}

double geomean(const std::vector<double>& ratios) {
    double log_sum = 0.0;
    for (const double r : ratios) log_sum += std::log(r);
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

}  // namespace

void RegressOptions::validate() const {
    if (!(threshold > 1.0) || !std::isfinite(threshold)) {
        throw Error("regression threshold must be a finite ratio > 1");
    }
    if (!(confidence > 0.0) || !(confidence < 1.0)) {
        throw Error("confidence must lie in (0, 1)");
    }
    if (resamples < 1) throw Error("need at least one bootstrap resample");
}

std::string RegressReport::table() const {
    std::string out;
    char line[256];
    std::snprintf(line, sizeof line, "%-36s %7s %10s %10s %8s %-16s %s\n", "series",
                  "points", "old_s", "new_s", "ratio", "ci95", "verdict");
    out += line;
    for (const SeriesComparison& s : series) {
        char ci[48];
        if (s.comparable) {
            std::snprintf(ci, sizeof ci, "[%.3f, %.3f]", s.ci_lo, s.ci_hi);
        } else {
            std::snprintf(ci, sizeof ci, "-");
        }
        std::snprintf(line, sizeof line, "%-36s %7zu %10.4f %10.4f %8.3f %-16s %s\n",
                      s.series.c_str(), s.paired, s.old_total_s, s.new_total_s,
                      s.comparable ? s.ratio : 0.0, ci, s.verdict.c_str());
        out += line;
    }
    for (const std::string& note : notes) {
        out += "note: " + note + "\n";
    }
    return out;
}

RegressReport compare_reports(const obs::Json& older, const obs::Json& newer,
                              const RegressOptions& options) {
    options.validate();
    require_run_record(older, "old record");
    require_run_record(newer, "new record");

    RegressReport report;
    report.threshold = options.threshold;

    const auto old_series = collect_series(older);
    const auto new_series = collect_series(newer);

    for (const auto& [name, bucket] : old_series) {
        if (new_series.find(name) == new_series.end()) {
            report.notes.push_back("series '" + name + "' only in the old record");
        }
    }

    for (const auto& [name, new_bucket] : new_series) {
        const auto old_it = old_series.find(name);
        if (old_it == old_series.end()) {
            report.notes.push_back("series '" + name + "' only in the new record");
            continue;
        }
        const SeriesPoints& old_bucket = old_it->second;

        SeriesComparison cmp;
        cmp.series = name;
        std::vector<double> ratios;
        for (const auto& [key, old_point] : old_bucket.points) {
            const auto new_it = new_bucket.points.find(key);
            if (new_it == new_bucket.points.end()) {
                ++cmp.only_old;
                continue;
            }
            const SeriesPoints::PointData& new_point = new_it->second;
            if (old_point.failed || new_point.failed) {
                // A failed point has NaN values and no meaningful elapsed_s
                // on the failed side; comparing it would poison the ratios
                // and spray bogus drift notes.
                ++cmp.failed;
                continue;
            }
            ++cmp.paired;

            if (old_point.elapsed_s > 0.0 && new_point.elapsed_s > 0.0) {
                cmp.old_total_s += old_point.elapsed_s;
                cmp.new_total_s += new_point.elapsed_s;
                ratios.push_back(new_point.elapsed_s / old_point.elapsed_s);
            }

            // Value drift: deterministic seeding means values should agree
            // within the two runs' combined CIs (plus relative slack for
            // accumulated floating-point churn).
            for (std::size_t m = 0; m < old_point.values.size(); ++m) {
                const auto& [measure, old_value] = old_point.values[m];
                for (std::size_t n = 0; n < new_point.values.size(); ++n) {
                    if (new_point.values[n].first != measure) continue;
                    const double new_value = new_point.values[n].second;
                    const double slack = old_point.half_widths[m] +
                                         new_point.half_widths[n] +
                                         1e-9 * std::abs(old_value) + 1e-12;
                    if (std::abs(new_value - old_value) > slack &&
                        report.notes.size() < 40) {
                        report.notes.push_back(
                            "value drift in '" + name + "' at {" + key + "} " +
                            measure + ": " + obs::json_number(old_value) + " -> " +
                            obs::json_number(new_value));
                    }
                    break;
                }
            }
        }
        for (const auto& [key, unused] : new_bucket.points) {
            (void)unused;
            if (old_bucket.points.find(key) == old_bucket.points.end()) ++cmp.only_new;
        }
        if (cmp.only_old > 0 || cmp.only_new > 0) {
            report.notes.push_back("series '" + name + "': " +
                                   std::to_string(cmp.only_old) + " point(s) only old, " +
                                   std::to_string(cmp.only_new) + " only new");
        }
        if (cmp.failed > 0) {
            report.notes.push_back("series '" + name + "': " +
                                   std::to_string(cmp.failed) +
                                   " failed point(s) excluded from comparison");
        }

        if (!ratios.empty()) {
            cmp.comparable = true;
            cmp.ratio = geomean(ratios);
            // Percentile bootstrap over the paired points, fixed seed.
            std::mt19937_64 rng(options.seed);
            std::uniform_int_distribution<std::size_t> pick(0, ratios.size() - 1);
            std::vector<double> boot;
            boot.reserve(static_cast<std::size_t>(options.resamples));
            std::vector<double> sample(ratios.size());
            for (int b = 0; b < options.resamples; ++b) {
                for (double& r : sample) r = ratios[pick(rng)];
                boot.push_back(geomean(sample));
            }
            std::sort(boot.begin(), boot.end());
            const double alpha = 1.0 - options.confidence;
            const auto lo_index = static_cast<std::size_t>(
                std::floor(alpha / 2.0 * static_cast<double>(boot.size())));
            const auto hi_index = static_cast<std::size_t>(std::min(
                boot.size() - 1,
                static_cast<std::size_t>(
                    std::ceil((1.0 - alpha / 2.0) * static_cast<double>(boot.size()))) -
                    1));
            cmp.ci_lo = boot[lo_index];
            cmp.ci_hi = boot[hi_index];
            if (cmp.ci_lo >= options.threshold) {
                cmp.verdict = "REGRESSION";
                report.regression = true;
            } else if (cmp.ratio >= options.threshold) {
                cmp.verdict = "slower";
            } else if (cmp.ci_hi <= 1.0 / options.threshold) {
                cmp.verdict = "faster";
            } else {
                cmp.verdict = "ok";
            }
        } else {
            cmp.verdict = "incomparable";
            report.notes.push_back("series '" + name +
                                   "': no paired points with positive elapsed_s on "
                                   "both sides");
        }
        report.series.push_back(std::move(cmp));
    }

    // Whole-record wall clock, for the reader; never part of the verdict
    // (it includes composition, printing, everything).
    const double old_wall = older.number_at("wall_s");
    const double new_wall = newer.number_at("wall_s");
    if (old_wall > 0.0 && new_wall > 0.0) {
        report.notes.push_back("wall_s: " + obs::json_number(old_wall) + " -> " +
                               obs::json_number(new_wall) + " (ratio " +
                               obs::json_number(new_wall / old_wall) + ")");
    }
    return report;
}

}  // namespace dpma::exp
