#pragma once

/// \file checkpoint.hpp
/// Sweep checkpointing: crash-safe progress records and resume.
///
/// A long sweep writes nothing until it finishes, so a crash (or a batch
/// scheduler kill) at point 199 of 200 used to cost every point.  With
/// RunOptions::checkpoint_path set, the runner appends one strict-JSON line
/// per finished point to a JSONL file — durably, via obs::DurableAppender
/// (one write(2) + fsync(2) per record) — and a later run with
/// RunOptions::resume restores those points instead of recomputing them.
///
/// File format (`dpma-checkpoint/1`), one JSON value per line:
///
///   {"type": "sweep_checkpoint", "schema": "dpma-checkpoint/1",
///    "experiment": NAME, "base_seed": "B", "total": N,
///    "params": [...], "measures": [...]}
///   {"type": "point", "index": I, "seed": "S", "params": {...},
///    "values": {...}[, "half_widths": {...}], "elapsed_s": E,
///    "attempts": A[, "error": MSG][, "diagnostics": JSON-as-string]}
///
/// One header line is appended each time a run opens the file (several runs
/// of one sweep share it: interrupted run, resumed run, ...); the loader
/// verifies *every* header against the experiment at hand — name, base
/// seed, grid size, axis names, measures — and refuses records written for
/// a different sweep.  "diagnostics" holds the original JSON object literal
/// as a *string* so a restored point reproduces the artifact bytes exactly;
/// "base_seed" and "seed" are decimal strings because a 64-bit seed does not
/// survive a round-trip through a JSON number (53-bit double mantissa).
///
/// Why resume is bit-identical to an uninterrupted run: every point's
/// randomness derives from (base_seed, point_index) alone (see
/// runner.hpp's determinism contract), never from scheduling or from other
/// points, so recomputing the missing points yields the same bytes the
/// interrupted run would have produced, and the restored ones are replayed
/// verbatim.  The one wall-clock field, elapsed_s, is restored from the
/// record; set DPMA_RESULT_TIMING=0 to zero it everywhere when byte-diffing
/// resumed against uninterrupted runs (the ctest does exactly that).
///
/// Failure records ("error" present) are loaded but NOT restored: a resumed
/// run retries failed points — the whole reason to resume after fixing the
/// cause of the failure.  A torn final line (the writer died mid-append,
/// the only damage an append-mode fsync-per-record file admits) is skipped
/// with a warning; a malformed line anywhere else is a hard error.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "exp/experiment.hpp"
#include "obs/atomic_write.hpp"

namespace dpma::exp {

/// Appends checkpoint records for one run.  Constructing the writer appends
/// the header line immediately — so even a run killed before its first
/// point leaves a well-formed, resumable file.
class CheckpointWriter {
public:
    /// Opens \p path for durable appending and writes the header.  Throws
    /// core Error (with the path) when the file cannot be opened or written.
    CheckpointWriter(std::string path, const Experiment& experiment,
                     std::uint64_t base_seed);

    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;

    /// Appends the record of one finished point (success or final failure).
    /// \p seed is the per-point seed the runner derived — recorded so a
    /// resumed run can cross-check the determinism contract.
    void point(const Point& point, const PointResult& result, std::uint64_t seed);

    [[nodiscard]] const std::string& path() const noexcept {
        return appender_.path();
    }

private:
    obs::DurableAppender appender_;
    std::vector<std::string> measures_;
};

/// What load_checkpoint() restored.
struct CheckpointState {
    /// Successfully finished points by grid index; the runner skips these.
    std::map<std::size_t, PointResult> finished;
    /// Point records seen but not restored because they recorded a failure
    /// (those points re-run on resume).
    std::size_t failed_seen = 0;
};

/// Loads \p path and returns the points it finished for \p experiment.
/// A missing file yields an empty state (so `--resume` is safe on the very
/// first run of a script); a mismatched header — different experiment,
/// base seed, grid or measures — throws core Error, as does a malformed
/// line anywhere but the final one.  When one index appears several times
/// (a resumed run re-ran a previously failed point), the last record wins.
[[nodiscard]] CheckpointState load_checkpoint(const std::string& path,
                                              const Experiment& experiment,
                                              std::uint64_t base_seed);

}  // namespace dpma::exp
