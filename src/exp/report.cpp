#include "exp/report.hpp"

#include "core/error.hpp"
#include "obs/json.hpp"

namespace dpma::exp {
namespace {

// One escaping/formatting policy for every JSON artifact of the repo.
std::string number(double v) { return obs::json_number(v); }
std::string quoted(const std::string& s) { return obs::json_quote(s); }

}  // namespace

ResultSet::ResultSet(std::string name, std::vector<std::string> param_names,
                     std::vector<std::string> measure_names)
    : name_(std::move(name)),
      param_names_(std::move(param_names)),
      measure_names_(std::move(measure_names)) {}

void ResultSet::add(Point point, PointResult result) {
    DPMA_REQUIRE(result.values.size() == measure_names_.size(),
                 "point result has " + std::to_string(result.values.size()) +
                     " values for " + std::to_string(measure_names_.size()) +
                     " measures");
    DPMA_REQUIRE(result.half_widths.empty() ||
                     result.half_widths.size() == measure_names_.size(),
                 "half-widths must be empty or measure-aligned");
    records_.push_back(PointRecord{std::move(point), std::move(result)});
}

std::size_t ResultSet::measure_index(std::string_view measure) const {
    for (std::size_t m = 0; m < measure_names_.size(); ++m) {
        if (measure_names_[m] == measure) return m;
    }
    throw Error("result set has no measure named '" + std::string(measure) + "'");
}

double ResultSet::value(std::size_t i, std::string_view measure) const {
    return records_.at(i).result.values[measure_index(measure)];
}

double ResultSet::half_width(std::size_t i, std::string_view measure) const {
    const PointRecord& record = records_.at(i);
    if (record.result.half_widths.empty()) return 0.0;
    return record.result.half_widths[measure_index(measure)];
}

std::string ResultSet::csv() const {
    std::string out;
    for (std::size_t p = 0; p < param_names_.size(); ++p) {
        if (p > 0) out += ',';
        out += param_names_[p];
    }
    for (const std::string& m : measure_names_) {
        if (!out.empty()) out += ',';
        out += m;
        out += ',';
        out += m + "_hw";
    }
    out += '\n';
    for (const PointRecord& record : records_) {
        std::string row;
        for (const auto& [axis, value] : record.point.coords) {
            (void)axis;
            if (!row.empty()) row += ',';
            row += number(value);
        }
        for (std::size_t m = 0; m < measure_names_.size(); ++m) {
            if (!row.empty()) row += ',';
            row += number(record.result.values[m]);
            row += ',';
            row += number(record.result.half_widths.empty()
                              ? 0.0
                              : record.result.half_widths[m]);
        }
        out += row;
        out += '\n';
    }
    return out;
}

std::string ResultSet::json() const {
    std::string out = "{\n  \"experiment\": " + quoted(name_) + ",\n  \"params\": [";
    for (std::size_t p = 0; p < param_names_.size(); ++p) {
        if (p > 0) out += ", ";
        out += quoted(param_names_[p]);
    }
    out += "],\n  \"measures\": [";
    for (std::size_t m = 0; m < measure_names_.size(); ++m) {
        if (m > 0) out += ", ";
        out += quoted(measure_names_[m]);
    }
    out += "],\n  \"points\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const PointRecord& record = records_[i];
        out += "    {\"params\": {";
        for (std::size_t p = 0; p < record.point.coords.size(); ++p) {
            if (p > 0) out += ", ";
            out += quoted(record.point.coords[p].first) + ": " +
                   number(record.point.coords[p].second);
        }
        out += "}, \"values\": {";
        for (std::size_t m = 0; m < measure_names_.size(); ++m) {
            if (m > 0) out += ", ";
            out += quoted(measure_names_[m]) + ": " + number(record.result.values[m]);
        }
        out += "}, \"half_widths\": {";
        for (std::size_t m = 0; m < measure_names_.size(); ++m) {
            if (m > 0) out += ", ";
            out += quoted(measure_names_[m]) + ": " +
                   number(record.result.half_widths.empty()
                              ? 0.0
                              : record.result.half_widths[m]);
        }
        out += "}, \"elapsed_s\": " + number(record.result.elapsed_s);
        if (record.result.failed()) {
            // Failed points are represented, not dropped: their values are
            // NaN (null above) and the failure record rides along so report
            // consumers can tell "measured zero" from "never measured".
            out += ", \"error\": " + quoted(record.result.error) +
                   ", \"attempts\": " + std::to_string(record.result.attempts);
        }
        if (!record.result.diagnostics.empty()) {
            out += ", \"diagnostics\": " + record.result.diagnostics;
        }
        out += "}";
        out += i + 1 < records_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

}  // namespace dpma::exp
