#pragma once

/// \file regress.hpp
/// Perf-regression verdicts from two run records.
///
/// compare_reports() takes two parsed run records (obs/run_report.hpp
/// schema, obs::json_parse), pairs their result series by experiment name
/// and the points within a series by parameter coordinates, and compares
/// the per-point wall times (the "elapsed_s" the runner stamps on every
/// point).  Per series it reports the geometric-mean new/old time ratio
/// with a bootstrap percentile confidence interval over the paired points
/// (resampling with a fixed seed, so the verdict is reproducible), and a
/// verdict:
///
///   REGRESSION    — the CI lower bound is at or above the threshold: the
///                   slowdown is both significant and big enough to care;
///   slower        — point estimate past the threshold but the CI still
///                   reaches below it (noisy; not failed);
///   faster        — CI upper bound at or below 1/threshold;
///   ok            — everything else;
///   incomparable  — no paired points with positive times on both sides
///                   (e.g. a record predating per-point timing).
///
/// Measure *values* are cross-checked too: a paired point whose value moved
/// beyond the two runs' combined CI half-widths (plus a small relative
/// slack) is reported as a drift note — values are supposed to be
/// deterministic given the seed policy, so drift means the code changed
/// behaviour, not just speed.  Notes never set the exit code; the verdict
/// table does.
///
/// This is the CI gate behind `dpma_cli report old.json new.json`: exit 0
/// when no series regressed, nonzero otherwise.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"

namespace dpma::exp {

struct RegressOptions {
    double threshold = 1.20;   ///< ratio at which a slowdown fails the gate
    double confidence = 0.95;  ///< bootstrap CI level
    int resamples = 2000;      ///< bootstrap resamples per series
    std::uint64_t seed = 42;   ///< bootstrap RNG seed (fixed => reproducible)

    void validate() const;  ///< throws Error on out-of-range values
};

struct SeriesComparison {
    std::string series;
    std::size_t paired = 0;    ///< points present in both records
    std::size_t only_old = 0;  ///< points only in the old record
    std::size_t only_new = 0;
    /// Points failed ("error" member) on either side: excluded from pairing
    /// — their values are NaN and their time is meaningless — and surfaced
    /// as a note instead.
    std::size_t failed = 0;
    double old_total_s = 0.0;  ///< summed elapsed_s over paired points
    double new_total_s = 0.0;
    double ratio = 1.0;  ///< geometric mean of per-point new/old ratios
    double ci_lo = 1.0;
    double ci_hi = 1.0;
    bool comparable = false;
    std::string verdict;  ///< "ok" | "faster" | "slower" | "REGRESSION" | "incomparable"
};

struct RegressReport {
    std::vector<SeriesComparison> series;
    std::vector<std::string> notes;  ///< unpaired series/points, value drift
    double threshold = 0.0;
    bool regression = false;  ///< any series verdict == "REGRESSION"

    /// Fixed-width verdict table plus the notes, ready to print.
    [[nodiscard]] std::string table() const;
};

/// Compares two parsed run records.  Throws Error when either document is
/// not a run record (missing "schema": "dpma-run-report/...").
[[nodiscard]] RegressReport compare_reports(const obs::Json& older,
                                            const obs::Json& newer,
                                            const RegressOptions& options = {});

}  // namespace dpma::exp
