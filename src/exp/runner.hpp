#pragma once

/// \file runner.hpp
/// Executes an Experiment over a ThreadPool.
///
/// Determinism contract: results are bit-identical for every jobs count.
/// Each point writes into its own index slot, each point's seed is derived
/// from (base_seed, point_index), and each replication's seed from
/// (point seed, replication_index) — the same splitting the serial code
/// paths use — so DPMA_JOBS=1 and DPMA_JOBS=N produce the same bytes.

#include <cstdint>
#include <vector>

#include "exp/events.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "sim/gsmp.hpp"

namespace dpma::exp {

struct RunOptions {
    /// Total concurrency; 0 means DPMA_JOBS / hardware_concurrency (see
    /// default_jobs()).  Ignored when an external pool is supplied.
    std::size_t jobs = 0;
    std::uint64_t base_seed = 1;
    /// Execute on this pool instead of creating one (e.g. to share workers
    /// between experiments).
    ThreadPool* pool = nullptr;
    /// Live telemetry sink (exp/events.hpp).  When the sink is empty the
    /// runner falls back to the DPMA_EVENTS environment variable; the
    /// stream is in point-index order for every jobs count.
    EventOptions events;
};

/// Evaluates every grid point of \p experiment (in parallel when jobs > 1)
/// and returns the records in grid order.
[[nodiscard]] ResultSet run(const Experiment& experiment, const RunOptions& options = {});

/// Replication-parallel counterpart of sim::simulate_replications: the same
/// per-replication seeds, samples kept in replication order, so estimates
/// (means, CI half-widths) are bit-identical to the serial function — only
/// wall-clock changes.
[[nodiscard]] std::vector<sim::Estimate> simulate_replications(
    const sim::Simulator& simulator, const sim::SimOptions& options, int replications,
    double confidence, ThreadPool& pool);

/// Replication-parallel counterpart of sim::simulate_depletion: same
/// per-replication seeds (offset 7777, like the serial function), samples in
/// replication order, and the too-short-horizon NumericalError raised for
/// the lowest failing replication index — bit-identical for any pool size.
[[nodiscard]] sim::Estimate simulate_depletion(const sim::Simulator& simulator,
                                               std::size_t measure_index,
                                               double threshold,
                                               const sim::SimOptions& options,
                                               int replications, double confidence,
                                               ThreadPool& pool);

}  // namespace dpma::exp
