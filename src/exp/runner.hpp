#pragma once

/// \file runner.hpp
/// Executes an Experiment over a ThreadPool.
///
/// Determinism contract: results are bit-identical for every jobs count.
/// Each point writes into its own index slot, each point's seed is derived
/// from (base_seed, point_index), and each replication's seed from
/// (point seed, replication_index) — the same splitting the serial code
/// paths use — so DPMA_JOBS=1 and DPMA_JOBS=N produce the same bytes.

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "exp/events.hpp"
#include "exp/experiment.hpp"
#include "exp/pool.hpp"
#include "exp/report.hpp"
#include "sim/gsmp.hpp"

namespace dpma::exp {

struct RunOptions {
    /// Total concurrency; 0 means DPMA_JOBS / hardware_concurrency (see
    /// default_jobs()).  Ignored when an external pool is supplied.
    std::size_t jobs = 0;
    std::uint64_t base_seed = 1;
    /// Execute on this pool instead of creating one (e.g. to share workers
    /// between experiments).
    ThreadPool* pool = nullptr;
    /// Live telemetry sink (exp/events.hpp).  When the sink is empty the
    /// runner falls back to the DPMA_EVENTS environment variable; the
    /// stream is in point-index order for every jobs count.
    EventOptions events;
    /// Retry budget per point: a throwing eval is re-run up to this many
    /// extra times (same point, same seed — failures here are environmental,
    /// the computation is deterministic) before the point is recorded as
    /// failed.  0 means one attempt, no retry.
    int retries = 0;
    /// When non-empty, append one durable record per finished point to this
    /// JSONL file (exp/checkpoint.hpp) so a killed sweep can resume.
    std::string checkpoint_path;
    /// Restore previously checkpointed points from checkpoint_path instead
    /// of recomputing them.  Requires checkpoint_path; a missing file is not
    /// an error (first run of an always-resume script).
    bool resume = false;
    /// Record wall-clock elapsed_s per point.  false zeroes the field —
    /// together with DPMA_RESULT_TIMING=0 (which overrides true) this makes
    /// result artifacts bit-comparable across runs.
    bool timing = true;
    /// Optional external stop flag, polled like the SIGINT/SIGTERM flag
    /// (exp/shutdown.hpp): once true, no new point starts, in-flight points
    /// drain, and the outcome reports interrupted.  For embedders and tests.
    const std::atomic<bool>* stop = nullptr;
};

/// What a fault-tolerant sweep produced.  `results` holds one record per
/// point that finished (evaluated here, restored from checkpoint, or failed
/// after retries) in grid order; interrupted sweeps omit the points never
/// started, so results.size() < total exactly when `interrupted`.
struct RunOutcome {
    explicit RunOutcome(ResultSet results) : results(std::move(results)) {}

    ResultSet results;
    std::size_t total = 0;      ///< grid points
    std::size_t completed = 0;  ///< evaluated successfully in this process
    std::size_t restored = 0;   ///< restored from the checkpoint, not re-run
    std::size_t failed = 0;     ///< recorded as failed after the retry budget
    std::size_t skipped = 0;    ///< never started (shutdown/stop request)
    bool interrupted = false;   ///< a shutdown/stop request cut the sweep short
    /// The exception of the lowest-index failed point (null when none) —
    /// what run() rethrows for callers without failure handling.
    std::exception_ptr first_error;

    /// Every point accounted for, none failed: the sweep is done.
    [[nodiscard]] bool complete() const noexcept {
        return !interrupted && failed == 0;
    }
};

/// Fault-tolerant sweep execution: evaluates every grid point of
/// \p experiment (in parallel when jobs > 1) with per-point failure
/// isolation, optional retries, durable checkpointing and cooperative
/// shutdown — see RunOptions.  Throwing points become failed records, not
/// lost sweeps; the determinism contract above is unchanged (retries reuse
/// the same derived seed, restored points replay recorded bytes).
[[nodiscard]] RunOutcome run_sweep(const Experiment& experiment,
                                   const RunOptions& options = {});

/// Evaluates every grid point of \p experiment (in parallel when jobs > 1)
/// and returns the records in grid order.  Thin wrapper over run_sweep():
/// when any point failed, rethrows the lowest-index point's exception after
/// the whole sweep has drained (completed sibling results are no longer
/// discarded mid-flight, they are simply unreachable through this
/// signature — callers that want them use run_sweep()).
[[nodiscard]] ResultSet run(const Experiment& experiment, const RunOptions& options = {});

/// Replication-parallel counterpart of sim::simulate_replications: the same
/// per-replication seeds, samples kept in replication order, so estimates
/// (means, CI half-widths) are bit-identical to the serial function — only
/// wall-clock changes.
[[nodiscard]] std::vector<sim::Estimate> simulate_replications(
    const sim::Simulator& simulator, const sim::SimOptions& options, int replications,
    double confidence, ThreadPool& pool);

/// Replication-parallel counterpart of sim::simulate_depletion: same
/// per-replication seeds (offset 7777, like the serial function), samples in
/// replication order, and the too-short-horizon NumericalError raised for
/// the lowest failing replication index — bit-identical for any pool size.
[[nodiscard]] sim::Estimate simulate_depletion(const sim::Simulator& simulator,
                                               std::size_t measure_index,
                                               double threshold,
                                               const sim::SimOptions& options,
                                               int replications, double confidence,
                                               ThreadPool& pool);

}  // namespace dpma::exp
