#include "exp/experiment.hpp"

#include <cmath>

#include "core/error.hpp"
#include "sim/rng.hpp"

namespace dpma::exp {

Axis Axis::list(std::string name, std::vector<double> values) {
    DPMA_REQUIRE(!values.empty(), "axis '" + name + "' needs at least one value");
    return Axis{std::move(name), std::move(values)};
}

Axis Axis::linspace(std::string name, double lo, double hi, std::size_t steps) {
    DPMA_REQUIRE(steps >= 1, "axis '" + name + "' needs at least one step");
    std::vector<double> values;
    values.reserve(steps);
    if (steps == 1) {
        values.push_back(lo);
    } else {
        const double step = (hi - lo) / static_cast<double>(steps - 1);
        for (std::size_t i = 0; i < steps; ++i) {
            values.push_back(i + 1 == steps ? hi : lo + step * static_cast<double>(i));
        }
    }
    return Axis{std::move(name), std::move(values)};
}

Axis Axis::logspace(std::string name, double lo, double hi, std::size_t steps) {
    DPMA_REQUIRE(lo > 0.0 && hi > 0.0, "axis '" + name + "' needs positive bounds");
    Axis axis = linspace(std::move(name), std::log(lo), std::log(hi), steps);
    for (double& v : axis.values) v = std::exp(v);
    if (steps > 1) axis.values.back() = hi;  // exact despite exp(log(.)) rounding
    return axis;
}

Axis Axis::toggle(std::string name) { return Axis{std::move(name), {0.0, 1.0}}; }

double Point::at(std::string_view name) const {
    for (const auto& [axis, value] : coords) {
        if (axis == name) return value;
    }
    throw Error("sweep point has no axis named '" + std::string(name) + "'");
}

bool Point::flag(std::string_view name) const { return at(name) != 0.0; }

Grid& Grid::axis(Axis axis) {
    DPMA_REQUIRE(!axis.values.empty(), "axis '" + axis.name + "' has no values");
    for (const Axis& existing : axes_) {
        DPMA_REQUIRE(existing.name != axis.name,
                     "duplicate axis name '" + axis.name + "'");
    }
    axes_.push_back(std::move(axis));
    return *this;
}

std::size_t Grid::size() const {
    std::size_t product = 1;
    for (const Axis& axis : axes_) product *= axis.values.size();
    return product;
}

std::vector<std::string> Grid::names() const {
    std::vector<std::string> names;
    names.reserve(axes_.size());
    for (const Axis& axis : axes_) names.push_back(axis.name);
    return names;
}

Point Grid::point(std::size_t index) const {
    DPMA_REQUIRE(index < size(), "grid point index out of range");
    Point point;
    point.index = index;
    point.coords.resize(axes_.size());
    // Last axis fastest: peel radices from the back.
    std::size_t rest = index;
    for (std::size_t k = axes_.size(); k-- > 0;) {
        const Axis& axis = axes_[k];
        point.coords[k] = {axis.name, axis.values[rest % axis.values.size()]};
        rest /= axis.values.size();
    }
    return point;
}

std::uint64_t PointContext::seed() const {
    return sim::Rng::derive_seed(base_seed, static_cast<std::uint64_t>(point_index));
}

}  // namespace dpma::exp
