#pragma once

/// \file pool.hpp
/// Fixed-size worker pool for the experiment engine.
///
/// The pool executes *indexed batches*: run(count, body) calls body(i) for
/// every i in [0, count) exactly once, distributing indices over the workers
/// and the calling thread.  Because the caller participates, a job may itself
/// call run() on the same pool (sweep points fanning out into simulation
/// replications) without risking deadlock: the inner call makes progress on
/// the caller's own thread even when every worker is busy.
///
/// Determinism is the pool's contract with the rest of the engine: the pool
/// only decides *who* executes an index, never *what* the index computes.  As
/// long as body(i) writes results into slot i of a caller-owned container and
/// derives any randomness from i (see sim::Rng::derive_seed), results are
/// bit-identical for every pool size, including the degenerate single-thread
/// pool that runs everything in the caller.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpma::exp {

/// Number of parallel jobs from the environment: DPMA_JOBS when it parses as
/// a positive integer (invalid values earn an obs::log warning and are
/// ignored), otherwise std::thread::hardware_concurrency(), at least 1.
[[nodiscard]] std::size_t default_jobs();

/// Strictly positive double from the environment variable \p name.  Returns
/// \p fallback — with an obs::log warning — when the variable is set but does
/// not parse completely as a number > 0.  Used for DPMA_BENCH_SCALE.
[[nodiscard]] double env_positive_double(const char* name, double fallback);

class ThreadPool {
public:
    /// \p jobs is the total concurrency including the calling thread, so
    /// jobs <= 1 spawns no workers at all and run() degrades to a plain
    /// in-caller loop.  jobs == 0 means default_jobs().
    explicit ThreadPool(std::size_t jobs = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

    /// Executes body(0) .. body(count - 1), each exactly once, and blocks
    /// until all have finished.  The first exception thrown by a job cancels
    /// the indices not yet claimed and is rethrown here once the batch has
    /// drained.  Reentrant: body may call run() on this pool.
    void run(std::size_t count, const std::function<void(std::size_t)>& body);

    /// Like run(), but with per-index failure isolation: every index runs to
    /// completion regardless of siblings, and instead of rethrowing the first
    /// exception — which used to discard the results every other job had
    /// already computed — the exception (if any) of each index is returned in
    /// slot i of the result.  An all-null vector means full success.  The
    /// sweep runner builds its retry/failed-point accounting on top of this.
    /// Reentrant like run().
    [[nodiscard]] std::vector<std::exception_ptr> run_collect(
        std::size_t count, const std::function<void(std::size_t)>& body);

private:
    struct Batch;

    void worker_loop();
    void run_batch(const std::shared_ptr<Batch>& batch);
    static void execute(Batch& batch);

    std::size_t jobs_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::deque<std::shared_ptr<Batch>> queue_;
    bool stopping_ = false;
};

}  // namespace dpma::exp
