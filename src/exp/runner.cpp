#include "exp/runner.hpp"

#include <chrono>
#include <mutex>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace dpma::exp {

ResultSet run(const Experiment& experiment, const RunOptions& options) {
    DPMA_REQUIRE(static_cast<bool>(experiment.eval),
                 "experiment '" + experiment.name + "' has no eval function");
    DPMA_NAMED_SPAN(span, "exp.run", "exp");
    obs::counter("exp.runs").add();
    // When the caller supplies a pool, the local one stays thread-less.
    ThreadPool local(options.pool != nullptr ? 1 : options.jobs);
    ThreadPool& pool = options.pool != nullptr ? *options.pool : local;

    const std::size_t count = experiment.grid.size();
    std::vector<Point> points(count);
    std::vector<PointResult> results(count);

    // Telemetry (exp/events.hpp): explicit sink, else DPMA_EVENTS.  Points
    // finish in scheduler order; the drain below emits the contiguous prefix
    // of completed points under one mutex, so the stream is in index order —
    // identical for every jobs count.
    SweepEvents events(options.events.sink ? options.events : events_from_env(),
                       experiment.name, experiment.measures, count);
    std::mutex drain_mutex;
    std::vector<unsigned char> done(count, 0);
    std::size_t next_drain = 0;

    static obs::Counter& point_counter = obs::counter("exp.points");
    pool.run(count, [&](std::size_t i) {
        DPMA_NAMED_SPAN(point_span, "exp.point", "exp");
        point_span.arg("index", static_cast<double>(i));
        points[i] = experiment.grid.point(i);
        PointContext context;
        context.base_seed = options.base_seed;
        context.point_index = i;
        context.pool = &pool;
        const auto started = std::chrono::steady_clock::now();
        results[i] = experiment.eval(points[i], context);
        results[i].elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        point_counter.add();
        if (events.active()) {
            const std::lock_guard<std::mutex> lock(drain_mutex);
            done[i] = 1;
            while (next_drain < count && done[next_drain] != 0) {
                events.point(points[next_drain], results[next_drain]);
                ++next_drain;
            }
        }
    });
    events.finish();
    span.arg("points", static_cast<double>(count));

    ResultSet set(experiment.name, experiment.grid.names(), experiment.measures);
    for (std::size_t i = 0; i < count; ++i) {
        set.add(std::move(points[i]), std::move(results[i]));
    }
    return set;
}

namespace {

/// Counts replication batches dispatched over a pool wider than one job.
void note_parallel_replications(const ThreadPool& pool) {
    static obs::Counter& counter = obs::counter("sim.replications.parallel");
    if (pool.jobs() > 1) counter.add();
}

}  // namespace

std::vector<sim::Estimate> simulate_replications(const sim::Simulator& simulator,
                                                 const sim::SimOptions& options,
                                                 int replications, double confidence,
                                                 ThreadPool& pool) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    DPMA_NAMED_SPAN(span, "exp.replications", "exp");
    span.arg("replications", static_cast<double>(replications));
    note_parallel_replications(pool);
    const std::size_t num_measures = simulator.measures().size();
    const auto count = static_cast<std::size_t>(replications);

    std::vector<std::vector<double>> samples(count);
    pool.run(count, [&](std::size_t r) {
        sim::SimOptions rep = options;
        rep.seed = sim::Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r));
        samples[r] = simulator.run(rep).values;
    });

    // Assemble in replication order: the samples vectors, and therefore the
    // means and half-widths, match sim::simulate_replications bit for bit.
    std::vector<sim::Estimate> estimates(num_measures);
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].samples.reserve(count);
        for (std::size_t r = 0; r < count; ++r) {
            estimates[m].samples.push_back(samples[r][m]);
        }
        estimates[m].mean = mean_of(estimates[m].samples);
        estimates[m].half_width = confidence_half_width(estimates[m].samples, confidence);
    }
    return estimates;
}

sim::Estimate simulate_depletion(const sim::Simulator& simulator,
                                 std::size_t measure_index, double threshold,
                                 const sim::SimOptions& options, int replications,
                                 double confidence, ThreadPool& pool) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    DPMA_NAMED_SPAN(span, "exp.depletions", "exp");
    span.arg("replications", static_cast<double>(replications));
    note_parallel_replications(pool);
    const auto count = static_cast<std::size_t>(replications);

    std::vector<double> times(count, 0.0);
    std::vector<char> depleted(count, 0);
    pool.run(count, [&](std::size_t r) {
        sim::SimOptions rep = options;
        rep.seed = sim::Rng::derive_seed(options.seed,
                                         static_cast<std::uint64_t>(r) + 7777);
        const sim::DepletionResult result =
            simulator.run_until(measure_index, threshold, rep);
        times[r] = result.time;
        depleted[r] = result.depleted ? 1 : 0;
    });
    // Check in replication order so the error (if any) names the same run
    // the serial loop would have stopped at.
    for (std::size_t r = 0; r < count; ++r) {
        if (!depleted[r]) {
            throw NumericalError(
                "depletion horizon too short: threshold not reached; raise "
                "SimOptions::horizon");
        }
    }

    sim::Estimate estimate;
    estimate.samples = std::move(times);
    estimate.mean = mean_of(estimate.samples);
    estimate.half_width = confidence_half_width(estimate.samples, confidence);
    return estimate;
}

}  // namespace dpma::exp
