#include "exp/runner.hpp"

#include <cxxabi.h>

#include <chrono>
#include <climits>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "exp/checkpoint.hpp"
#include "exp/shutdown.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace dpma::exp {
namespace {

/// Human-readable "Type: message" for a failure record, demangled so the
/// checkpoint says "dpma::NumericalError", not "N4dpma14NumericalErrorE".
std::string describe_exception(const std::exception& e) {
    const char* mangled = typeid(e).name();
    int status = 0;
    char* demangled = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
    std::string name = status == 0 && demangled != nullptr ? demangled : mangled;
    std::free(demangled);
    return name + ": " + e.what();
}

/// Test-only fault injection and pacing, parsed from the environment per
/// run so ctests can script deterministic failures end to end:
///   DPMA_FAULT_POINTS   comma-separated grid indices whose eval throws
///   DPMA_FAULT_ATTEMPTS make only the first K attempts of a faulty point
///                       throw (default: all attempts, the point fails)
///   DPMA_POINT_DELAY_MS sleep per point, to make SIGTERM-mid-sweep
///                       timing reproducible in tests
struct FaultPlan {
    std::vector<std::size_t> points;
    int attempts = INT_MAX;
    int delay_ms = 0;

    [[nodiscard]] bool faulty(std::size_t index, int attempt) const {
        if (attempt > attempts) return false;
        for (const std::size_t p : points) {
            if (p == index) return true;
        }
        return false;
    }
};

FaultPlan fault_plan_from_env() {
    FaultPlan plan;
    if (const char* env = std::getenv("DPMA_FAULT_POINTS")) {
        const char* cursor = env;
        while (*cursor != '\0') {
            char* end = nullptr;
            const unsigned long value = std::strtoul(cursor, &end, 10);
            if (end == cursor) break;  // trailing garbage: stop parsing
            plan.points.push_back(static_cast<std::size_t>(value));
            cursor = *end == ',' ? end + 1 : end;
        }
    }
    if (const char* env = std::getenv("DPMA_FAULT_ATTEMPTS")) {
        plan.attempts = std::atoi(env);
    }
    if (const char* env = std::getenv("DPMA_POINT_DELAY_MS")) {
        plan.delay_ms = std::atoi(env);
    }
    return plan;
}

/// DPMA_RESULT_TIMING=0 zeroes per-point elapsed_s so resumed and
/// uninterrupted result artifacts can be byte-compared.
bool timing_from_env(bool base) {
    if (const char* env = std::getenv("DPMA_RESULT_TIMING")) {
        if (std::string_view(env) == "0") return false;
    }
    return base;
}

/// Per-index lifecycle used by the drain: every state but kPending counts
/// as "accounted for"; only kDone and kFailed emit events and checkpoint
/// records (restored points were recorded by the run that computed them,
/// skipped ones never ran).
enum PointState : unsigned char {
    kPending = 0,
    kDone = 1,
    kFailed = 2,
    kRestored = 3,
    kSkipped = 4,
};

}  // namespace

RunOutcome run_sweep(const Experiment& experiment, const RunOptions& options) {
    DPMA_REQUIRE(static_cast<bool>(experiment.eval),
                 "experiment '" + experiment.name + "' has no eval function");
    DPMA_REQUIRE(options.retries >= 0, "retries must be >= 0");
    DPMA_REQUIRE(!options.resume || !options.checkpoint_path.empty(),
                 "resume requires a checkpoint path");
    DPMA_NAMED_SPAN(span, "exp.run", "exp");
    obs::counter("exp.runs").add();
    // When the caller supplies a pool, the local one stays thread-less.
    ThreadPool local(options.pool != nullptr ? 1 : options.jobs);
    ThreadPool& pool = options.pool != nullptr ? *options.pool : local;

    const std::size_t count = experiment.grid.size();
    std::vector<Point> points(count);
    std::vector<PointResult> results(count);
    std::vector<PointState> state(count, kPending);
    std::vector<std::exception_ptr> point_error(count);

    // Checkpointing (exp/checkpoint.hpp): restore finished points first,
    // then open the file for appending — the header goes out immediately,
    // so even a run killed before its first point leaves a resumable file.
    std::unique_ptr<CheckpointWriter> checkpoint;
    std::size_t restored = 0;
    if (!options.checkpoint_path.empty()) {
        if (options.resume) {
            CheckpointState loaded =
                load_checkpoint(options.checkpoint_path, experiment, options.base_seed);
            for (auto& [index, result] : loaded.finished) {
                points[index] = experiment.grid.point(index);
                results[index] = std::move(result);
                state[index] = kRestored;
                ++restored;
            }
        }
        checkpoint = std::make_unique<CheckpointWriter>(options.checkpoint_path,
                                                        experiment, options.base_seed);
    }

    // Telemetry (exp/events.hpp): explicit sink, else DPMA_EVENTS.  Points
    // finish in scheduler order; the drain below emits the contiguous prefix
    // of accounted points under one mutex, so the stream is in index order —
    // identical for every jobs count.
    SweepEvents events(options.events.sink ? options.events : events_from_env(),
                       experiment.name, experiment.measures, count, restored);
    std::mutex drain_mutex;
    std::size_t next_drain = 0;
    // First sink/checkpoint failure; once set, the sweep stops dispatching
    // (computing unsaveable points helps nobody) and rethrows it at the end.
    std::exception_ptr sink_error;
    std::atomic<bool> sink_failed{false};

    const FaultPlan faults = fault_plan_from_env();
    const bool timing = timing_from_env(options.timing);
    const int max_attempts = options.retries + 1;
    const auto stop_requested = [&] {
        return shutdown_requested() ||
               (options.stop != nullptr && options.stop->load()) ||
               sink_failed.load(std::memory_order_relaxed);
    };
    // Advances over the contiguous prefix of accounted points, emitting
    // events and checkpoint records for the ones that ran here.  Callers
    // hold drain_mutex.
    const auto drain_locked = [&] {
        while (next_drain < count && state[next_drain] != kPending) {
            const std::size_t d = next_drain++;
            if (state[d] != kDone && state[d] != kFailed) continue;
            if (sink_failed.load(std::memory_order_relaxed)) continue;
            try {
                if (events.active()) events.point(points[d], results[d]);
                if (checkpoint) {
                    PointContext drained;
                    drained.base_seed = options.base_seed;
                    drained.point_index = d;
                    checkpoint->point(points[d], results[d], drained.seed());
                }
            } catch (...) {
                // A failing sink (disk full under the checkpoint or the
                // events file) must abort the sweep loudly, not rot.
                sink_error = std::current_exception();
                sink_failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    static obs::Counter& point_counter = obs::counter("exp.points");
    static obs::Counter& failed_counter = obs::counter("exp.point.failed");
    static obs::Counter& retried_counter = obs::counter("exp.point.retried");
    const std::vector<std::exception_ptr> infra_errors =
        pool.run_collect(count, [&](std::size_t i) {
            if (state[i] == kRestored) return;
            if (stop_requested()) {
                // Cooperative shutdown: never start a new point once a
                // SIGINT/SIGTERM (or stop flag) arrived; in-flight siblings
                // drain on their own threads.
                const std::lock_guard<std::mutex> lock(drain_mutex);
                state[i] = kSkipped;
                drain_locked();
                return;
            }
            DPMA_NAMED_SPAN(point_span, "exp.point", "exp");
            point_span.arg("index", static_cast<double>(i));
            points[i] = experiment.grid.point(i);
            PointContext context;
            context.base_seed = options.base_seed;
            context.point_index = i;
            context.pool = &pool;

            const auto started = std::chrono::steady_clock::now();
            PointResult result;
            std::exception_ptr error;
            std::string error_text;
            for (int attempt = 1; attempt <= max_attempts; ++attempt) {
                if (attempt > 1) retried_counter.add();
                try {
                    if (faults.delay_ms > 0) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(faults.delay_ms));
                    }
                    if (faults.faulty(i, attempt)) {
                        throw Error("injected fault (DPMA_FAULT_POINTS) at point " +
                                    std::to_string(i) + ", attempt " +
                                    std::to_string(attempt));
                    }
                    result = experiment.eval(points[i], context);
                    result.attempts = attempt;
                    error = nullptr;
                    break;
                } catch (const std::exception& e) {
                    error = std::current_exception();
                    error_text = describe_exception(e);
                } catch (...) {
                    error = std::current_exception();
                    error_text = "unknown exception";
                }
            }
            if (error) {
                // Retry budget exhausted: this point is a failure *record*,
                // not a lost sweep — NaN values keep it measure-aligned.
                failed_counter.add();
                result = PointResult{};
                result.values.assign(experiment.measures.size(),
                                     std::numeric_limits<double>::quiet_NaN());
                result.error = error_text;
                result.attempts = max_attempts;
            }
            result.elapsed_s =
                timing ? std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count()
                       : 0.0;
            results[i] = std::move(result);
            point_counter.add();

            const std::lock_guard<std::mutex> lock(drain_mutex);
            point_error[i] = error;
            state[i] = error ? kFailed : kDone;
            drain_locked();
        });
    if (sink_error) std::rethrow_exception(sink_error);
    for (const std::exception_ptr& infra : infra_errors) {
        // Exceptions escaping the body are infrastructure bugs (eval errors
        // are caught above); surface the lowest-index one.
        if (infra) std::rethrow_exception(infra);
    }

    RunOutcome outcome(
        ResultSet(experiment.name, experiment.grid.names(), experiment.measures));
    outcome.total = count;
    outcome.restored = restored;
    for (std::size_t i = 0; i < count; ++i) {
        switch (state[i]) {
            case kDone:
                ++outcome.completed;
                break;
            case kFailed:
                ++outcome.failed;
                if (!outcome.first_error) outcome.first_error = point_error[i];
                break;
            case kSkipped:
            case kPending:
                ++outcome.skipped;
                break;
            case kRestored:
                break;
        }
    }
    outcome.interrupted = outcome.skipped > 0;
    events.finish(outcome.interrupted);
    span.arg("points", static_cast<double>(count));

    for (std::size_t i = 0; i < count; ++i) {
        if (state[i] == kDone || state[i] == kFailed || state[i] == kRestored) {
            outcome.results.add(std::move(points[i]), std::move(results[i]));
        }
    }
    return outcome;
}

ResultSet run(const Experiment& experiment, const RunOptions& options) {
    RunOutcome outcome = run_sweep(experiment, options);
    // Keep the historical contract — a throwing eval surfaces to the caller
    // — without the historical data loss: the rethrow happens after every
    // sibling point has drained (and been checkpointed, when enabled).
    if (outcome.first_error) std::rethrow_exception(outcome.first_error);
    return std::move(outcome.results);
}

namespace {

/// Counts replication batches dispatched over a pool wider than one job.
void note_parallel_replications(const ThreadPool& pool) {
    static obs::Counter& counter = obs::counter("sim.replications.parallel");
    if (pool.jobs() > 1) counter.add();
}

}  // namespace

std::vector<sim::Estimate> simulate_replications(const sim::Simulator& simulator,
                                                 const sim::SimOptions& options,
                                                 int replications, double confidence,
                                                 ThreadPool& pool) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    DPMA_NAMED_SPAN(span, "exp.replications", "exp");
    span.arg("replications", static_cast<double>(replications));
    note_parallel_replications(pool);
    const std::size_t num_measures = simulator.measures().size();
    const auto count = static_cast<std::size_t>(replications);

    std::vector<std::vector<double>> samples(count);
    pool.run(count, [&](std::size_t r) {
        sim::SimOptions rep = options;
        rep.seed = sim::Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r));
        samples[r] = simulator.run(rep).values;
    });

    // Assemble in replication order: the samples vectors, and therefore the
    // means and half-widths, match sim::simulate_replications bit for bit.
    std::vector<sim::Estimate> estimates(num_measures);
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].samples.reserve(count);
        for (std::size_t r = 0; r < count; ++r) {
            estimates[m].samples.push_back(samples[r][m]);
        }
        estimates[m].mean = mean_of(estimates[m].samples);
        estimates[m].half_width = confidence_half_width(estimates[m].samples, confidence);
    }
    return estimates;
}

sim::Estimate simulate_depletion(const sim::Simulator& simulator,
                                 std::size_t measure_index, double threshold,
                                 const sim::SimOptions& options, int replications,
                                 double confidence, ThreadPool& pool) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    DPMA_NAMED_SPAN(span, "exp.depletions", "exp");
    span.arg("replications", static_cast<double>(replications));
    note_parallel_replications(pool);
    const auto count = static_cast<std::size_t>(replications);

    std::vector<double> times(count, 0.0);
    std::vector<char> depleted(count, 0);
    pool.run(count, [&](std::size_t r) {
        sim::SimOptions rep = options;
        rep.seed = sim::Rng::derive_seed(options.seed,
                                         static_cast<std::uint64_t>(r) + 7777);
        const sim::DepletionResult result =
            simulator.run_until(measure_index, threshold, rep);
        times[r] = result.time;
        depleted[r] = result.depleted ? 1 : 0;
    });
    // Check in replication order so the error (if any) names the same run
    // the serial loop would have stopped at.
    for (std::size_t r = 0; r < count; ++r) {
        if (!depleted[r]) {
            throw NumericalError(
                "depletion horizon too short: threshold not reached; raise "
                "SimOptions::horizon");
        }
    }

    sim::Estimate estimate;
    estimate.samples = std::move(times);
    estimate.mean = mean_of(estimate.samples);
    estimate.half_width = confidence_half_width(estimate.samples, confidence);
    return estimate;
}

}  // namespace dpma::exp
