#pragma once

/// \file parser.hpp
/// Recursive-descent parser for a faithful subset of the Æmilia concrete
/// syntax used throughout the paper, e.g.:
///
///     ARCHI_TYPE RPC_DPM_Untimed(void)
///     ARCHI_ELEM_TYPES
///       ELEM_TYPE Server_Type(void)
///         BEHAVIOR
///           Idle_Server(void; void) = choice {
///             <receive_rpc_packet, _> . Busy_Server(),
///             <receive_shutdown, _> . Sleeping_Server()
///           };
///           ...
///         INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
///         OUTPUT_INTERACTIONS UNI send_result_packet
///     ARCHI_TOPOLOGY
///       ARCHI_ELEM_INSTANCES
///         S : Server_Type();
///         ...
///       ARCHI_ATTACHMENTS
///         FROM C.send_rpc_packet TO RCS.get_packet;
///         ...
///     END
///
/// Extensions beyond the untimed fragment shown in the paper:
///  * rates: `_` (passive), `exp(r)`, `inf` / `inf(prio, weight)`,
///    `det(t)`, `norm(mean, sd)`, `unif(lo, hi)`, `erlang(k, r)`,
///    `weibull(shape, scale)`, `lognorm(mu, sigma)`;
///  * integer behaviour parameters: `Buffer(integer n, integer cap; void)`,
///    guarded alternatives `cond(n < cap) -> <put, _> . Buffer(n + 1, cap)`;
///  * instance arguments: `AP : AP_Type(0, 10)`.
///
/// The companion measure language is parsed by parse_measures:
///
///     MEASURE throughput IS
///       ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
///     MEASURE energy IS
///       IN_STATE(S, Idle_Server)  -> STATE_REWARD(2)
///       IN_STATE(S, Busy_Server)  -> STATE_REWARD(3)

#include <string_view>
#include <vector>

#include "adl/measure.hpp"
#include "adl/model.hpp"

namespace dpma::aemilia {

/// Parses a full architectural type.  Throws ParseError (with position) on
/// syntax errors and ModelError (also with position) on semantic ones (via
/// adl::validate, which is run on the result before returning).  Every AST
/// node of the result carries the SourceLoc of its defining token.
[[nodiscard]] adl::ArchiType parse_archi_type(std::string_view input);

/// Parses without running adl::validate on the result: the AST may be
/// semantically ill-formed (unknown behaviours, dangling attachments, ...).
/// This is the entry point of the semantic linter (dpma::analysis), which
/// wants to collect *all* problems instead of throwing on the first one.
[[nodiscard]] adl::ArchiType parse_archi_type_unchecked(std::string_view input);

/// Parses a sequence of MEASURE definitions.
[[nodiscard]] std::vector<adl::Measure> parse_measures(std::string_view input);

}  // namespace dpma::aemilia
