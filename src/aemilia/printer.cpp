#include "aemilia/printer.hpp"

#include <cstdio>
#include <sstream>

#include "core/error.hpp"

namespace dpma::aemilia {
namespace {

/// Full-precision, lexer-compatible double rendering.
std::string num(double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

std::string rate_text(const lts::Rate& rate) {
    struct Visitor {
        std::string operator()(const lts::RateUnspecified&) const {
            // The untimed fragment writes every rate as `_'.
            return "_";
        }
        std::string operator()(const lts::RateExp& r) const {
            return "exp(" + num(r.rate) + ")";
        }
        std::string operator()(const lts::RateImmediate& r) const {
            return "inf(" + std::to_string(r.priority) + ", " + num(r.weight) + ")";
        }
        std::string operator()(const lts::RatePassive&) const { return "_"; }
        std::string operator()(const lts::RateGeneral& r) const {
            const Dist& d = r.dist;
            switch (d.kind()) {
                case DistKind::Exponential: return "exp(" + num(d.a()) + ")";
                case DistKind::Deterministic: return "det(" + num(d.a()) + ")";
                case DistKind::Uniform:
                    return "unif(" + num(d.a()) + ", " + num(d.b()) + ")";
                case DistKind::Normal:
                    return "norm(" + num(d.a()) + ", " + num(d.b()) + ")";
                case DistKind::Erlang:
                    return "erlang(" + std::to_string(d.phases()) + ", " + num(d.a()) + ")";
                case DistKind::Weibull:
                    return "weibull(" + num(d.a()) + ", " + num(d.b()) + ")";
                case DistKind::LogNormal:
                    return "lognorm(" + num(d.a()) + ", " + num(d.b()) + ")";
            }
            throw Error("unknown distribution kind");
        }
    };
    return std::visit(Visitor{}, rate);
}

/// Guard in parser-compatible form (no parenthesised boolean factors).
std::string guard_text(const adl::BoolExprPtr& guard) {
    using Kind = adl::BoolExpr::Kind;
    switch (guard->kind()) {
        case Kind::True:
            return "1 == 1";
        case Kind::Cmp:
            return guard->to_string();
        case Kind::And:
            return guard_text(guard->lhs()) + " && " + guard_text(guard->rhs());
        case Kind::Or:
            return guard_text(guard->lhs()) + " || " + guard_text(guard->rhs());
        case Kind::Not:
            throw Error("negated guards are not expressible in the concrete syntax");
    }
    throw Error("unknown guard kind");
}

void print_behavior(std::ostringstream& out, const adl::BehaviorDef& behavior) {
    out << "    " << behavior.name << "(";
    if (behavior.params.empty()) {
        out << "void";
    } else {
        for (std::size_t i = 0; i < behavior.params.size(); ++i) {
            if (i != 0) out << ", ";
            out << "integer " << behavior.params[i];
        }
    }
    out << "; void) =";
    const bool use_choice = behavior.alternatives.size() > 1;
    if (use_choice) out << " choice {";
    for (std::size_t i = 0; i < behavior.alternatives.size(); ++i) {
        const adl::Alternative& alt = behavior.alternatives[i];
        out << "\n      ";
        if (alt.guard != nullptr) {
            out << "cond(" << guard_text(alt.guard) << ") -> ";
        }
        for (const adl::Action& action : alt.actions) {
            out << "<" << action.name << ", " << rate_text(action.rate) << "> . ";
        }
        out << alt.continuation.behavior << "(";
        for (std::size_t a = 0; a < alt.continuation.args.size(); ++a) {
            if (a != 0) out << ", ";
            out << alt.continuation.args[a]->to_string();
        }
        out << ")";
        if (use_choice && i + 1 < behavior.alternatives.size()) out << ",";
    }
    if (use_choice) out << "\n    }";
}

void print_interactions(std::ostringstream& out, const char* keyword,
                        const std::vector<std::string>& names) {
    out << "  " << keyword << ' ';
    if (names.empty()) {
        out << "void\n";
        return;
    }
    out << "UNI ";
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) out << "; ";
        out << names[i];
    }
    out << '\n';
}

}  // namespace

std::string to_aemilia(const adl::ArchiType& archi) {
    std::ostringstream out;
    out << "ARCHI_TYPE " << archi.name << "(void)\n\nARCHI_ELEM_TYPES\n";
    for (const adl::ElemType& type : archi.elem_types) {
        out << "\nELEM_TYPE " << type.name << "(void)\n  BEHAVIOR\n";
        for (std::size_t b = 0; b < type.behaviors.size(); ++b) {
            print_behavior(out, type.behaviors[b]);
            out << (b + 1 < type.behaviors.size() ? ";\n" : "\n");
        }
        print_interactions(out, "INPUT_INTERACTIONS", type.input_interactions);
        print_interactions(out, "OUTPUT_INTERACTIONS", type.output_interactions);
    }
    out << "\nARCHI_TOPOLOGY\n  ARCHI_ELEM_INSTANCES\n";
    for (std::size_t i = 0; i < archi.instances.size(); ++i) {
        const adl::Instance& inst = archi.instances[i];
        out << "    " << inst.name << " : " << inst.type << "(";
        for (std::size_t a = 0; a < inst.args.size(); ++a) {
            if (a != 0) out << ", ";
            out << inst.args[a];
        }
        out << ")";
        out << (i + 1 < archi.instances.size() ? ";\n" : "\n");
    }
    if (!archi.attachments.empty()) {
        out << "  ARCHI_ATTACHMENTS\n";
        for (std::size_t i = 0; i < archi.attachments.size(); ++i) {
            const adl::Attachment& att = archi.attachments[i];
            out << "    FROM " << att.from_instance << "." << att.from_port << " TO "
                << att.to_instance << "." << att.to_port;
            out << (i + 1 < archi.attachments.size() ? ";\n" : "\n");
        }
    }
    out << "END\n";
    return out.str();
}

std::string to_measure_language(const std::vector<adl::Measure>& measures) {
    std::ostringstream out;
    for (const adl::Measure& measure : measures) {
        out << "MEASURE " << measure.name << " IS\n";
        for (const adl::RewardClause& clause : measure.clauses) {
            out << "  ";
            if (const auto* enabled =
                    std::get_if<adl::EnabledPredicate>(&clause.predicate)) {
                out << "ENABLED(" << enabled->instance << "." << enabled->action << ")";
            } else {
                const auto& in_state = std::get<adl::InStatePredicate>(clause.predicate);
                out << "IN_STATE(" << in_state.instance << ", "
                    << in_state.state_prefix << ")";
            }
            out << " -> "
                << (clause.target == adl::RewardClause::Target::State ? "STATE_REWARD"
                                                                      : "TRANS_REWARD")
                << "(" << num(clause.reward) << ")\n";
        }
        out << ";\n";
    }
    return out.str();
}

}  // namespace dpma::aemilia
