#include "aemilia/parser.hpp"

#include <cstdlib>
#include <unordered_map>

#include "aemilia/lexer.hpp"
#include "lts/rate.hpp"

namespace dpma::aemilia {
namespace {

SourceLoc loc_of(const Token& token) {
    return SourceLoc{token.line, token.column};
}

class Parser {
public:
    explicit Parser(std::string_view input) : tokens_(tokenize(input)) {}

    adl::ArchiType parse_archi_type(bool run_validate) {
        adl::ArchiType archi;
        expect_keyword("ARCHI_TYPE");
        archi.loc = loc_of(current());
        archi.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        expect_keyword("void");
        expect(TokenKind::RParen);

        expect_keyword("ARCHI_ELEM_TYPES");
        while (peek_keyword("ELEM_TYPE")) {
            archi.elem_types.push_back(parse_elem_type());
        }

        expect_keyword("ARCHI_TOPOLOGY");
        expect_keyword("ARCHI_ELEM_INSTANCES");
        archi.instances.push_back(parse_instance());
        while (accept(TokenKind::Semicolon)) {
            if (peek_keyword("ARCHI_ATTACHMENTS") || peek_keyword("END")) break;
            archi.instances.push_back(parse_instance());
        }
        if (accept_keyword("ARCHI_ATTACHMENTS")) {
            archi.attachments.push_back(parse_attachment());
            while (accept(TokenKind::Semicolon)) {
                if (peek_keyword("END")) break;
                archi.attachments.push_back(parse_attachment());
            }
        }
        expect_keyword("END");
        expect(TokenKind::EndOfInput);
        if (run_validate) adl::validate(archi);
        return archi;
    }

    std::vector<adl::Measure> parse_measures() {
        std::vector<adl::Measure> measures;
        while (!at(TokenKind::EndOfInput)) {
            expect_keyword("MEASURE");
            adl::Measure measure;
            measure.loc = loc_of(current());
            measure.name = expect(TokenKind::Identifier).text;
            expect_keyword("IS");
            do {
                measure.clauses.push_back(parse_reward_clause());
                while (accept(TokenKind::Semicolon)) {
                }
            } while (peek_keyword("ENABLED") || peek_keyword("IN_STATE"));
            measures.push_back(std::move(measure));
        }
        if (measures.empty()) {
            throw ParseError("expected at least one MEASURE definition",
                             current().line, current().column);
        }
        return measures;
    }

private:
    // --- token plumbing -----------------------------------------------------

    [[nodiscard]] const Token& current() const { return tokens_[pos_]; }

    [[nodiscard]] bool at(TokenKind kind) const { return current().kind == kind; }

    [[nodiscard]] bool peek_keyword(std::string_view keyword) const {
        return current().kind == TokenKind::Identifier && current().text == keyword;
    }

    bool accept(TokenKind kind) {
        if (!at(kind)) return false;
        ++pos_;
        return true;
    }

    bool accept_keyword(std::string_view keyword) {
        if (!peek_keyword(keyword)) return false;
        ++pos_;
        return true;
    }

    Token expect(TokenKind kind) {
        if (!at(kind)) {
            throw ParseError(std::string("expected ") + token_kind_name(kind) +
                                 ", found '" + current().text + "'",
                             current().line, current().column);
        }
        return tokens_[pos_++];
    }

    void expect_keyword(std::string_view keyword) {
        if (!accept_keyword(keyword)) {
            throw ParseError("expected keyword '" + std::string(keyword) + "', found '" +
                                 current().text + "'",
                             current().line, current().column);
        }
    }

    double expect_number() {
        bool negative = false;
        if (accept(TokenKind::Minus)) negative = true;
        const Token token = expect(TokenKind::Number);
        const double value = std::strtod(token.text.c_str(), nullptr);
        return negative ? -value : value;
    }

    long expect_integer(const char* what) {
        bool negative = false;
        if (accept(TokenKind::Minus)) negative = true;
        const Token token = expect(TokenKind::Number);
        if (token.text.find('.') != std::string::npos) {
            throw ParseError(std::string(what) + " must be integer valued, got '" +
                                 token.text + "'",
                             token.line, token.column);
        }
        const long value = std::strtol(token.text.c_str(), nullptr, 10);
        return negative ? -value : value;
    }

    // --- element types ------------------------------------------------------

    adl::ElemType parse_elem_type() {
        expect_keyword("ELEM_TYPE");
        adl::ElemType type;
        type.loc = loc_of(current());
        type.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        expect_keyword("void");
        expect(TokenKind::RParen);
        expect_keyword("BEHAVIOR");
        type.behaviors.push_back(parse_behavior());
        while (accept(TokenKind::Semicolon)) {
            if (peek_keyword("INPUT_INTERACTIONS")) break;
            type.behaviors.push_back(parse_behavior());
        }
        expect_keyword("INPUT_INTERACTIONS");
        parse_interaction_list(type.input_interactions, type.input_interaction_locs);
        expect_keyword("OUTPUT_INTERACTIONS");
        parse_interaction_list(type.output_interactions, type.output_interaction_locs);
        return type;
    }

    [[nodiscard]] bool at_section_boundary() const {
        return peek_keyword("OUTPUT_INTERACTIONS") || peek_keyword("ELEM_TYPE") ||
               peek_keyword("ARCHI_TOPOLOGY");
    }

    void parse_interaction_list(std::vector<std::string>& names,
                                std::vector<SourceLoc>& locs) {
        if (accept_keyword("void")) return;
        expect_keyword("UNI");
        while (true) {
            locs.push_back(loc_of(current()));
            names.push_back(expect(TokenKind::Identifier).text);
            if (!accept(TokenKind::Semicolon)) break;
            accept_keyword("UNI");  // optional repeated qualifier
            if (at_section_boundary()) break;  // trailing semicolon
        }
    }

    adl::BehaviorDef parse_behavior() {
        adl::BehaviorDef def;
        def.loc = loc_of(current());
        def.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        if (!accept_keyword("void")) {
            do {
                expect_keyword("integer");
                def.params.push_back(expect(TokenKind::Identifier).text);
            } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::Semicolon);
        expect_keyword("void");
        expect(TokenKind::RParen);
        expect(TokenKind::Equal);

        params_ = &def.params;
        if (accept_keyword("choice")) {
            expect(TokenKind::LBrace);
            def.alternatives.push_back(parse_alternative());
            while (accept(TokenKind::Comma)) {
                def.alternatives.push_back(parse_alternative());
            }
            expect(TokenKind::RBrace);
        } else {
            def.alternatives.push_back(parse_alternative());
        }
        params_ = nullptr;
        return def;
    }

    adl::Alternative parse_alternative() {
        adl::Alternative alt;
        alt.loc = loc_of(current());
        if (accept_keyword("cond")) {
            expect(TokenKind::LParen);
            alt.guard = parse_bool_expr();
            expect(TokenKind::RParen);
            expect(TokenKind::Arrow);
        }
        alt.actions.push_back(parse_action());
        expect(TokenKind::Dot);
        while (at(TokenKind::Less)) {
            alt.actions.push_back(parse_action());
            expect(TokenKind::Dot);
        }
        alt.continuation.loc = loc_of(current());
        alt.continuation.behavior = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        if (!at(TokenKind::RParen)) {
            alt.continuation.args.push_back(parse_expr());
            while (accept(TokenKind::Comma)) {
                alt.continuation.args.push_back(parse_expr());
            }
        }
        expect(TokenKind::RParen);
        return alt;
    }

    adl::Action parse_action() {
        expect(TokenKind::Less);
        adl::Action action;
        action.loc = loc_of(current());
        action.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::Comma);
        action.rate = parse_rate();
        expect(TokenKind::Greater);
        return action;
    }

    lts::Rate parse_rate() {
        if (accept(TokenKind::Underscore)) return lts::RatePassive{};
        const Token token = expect(TokenKind::Identifier);
        const std::string& kind = token.text;
        const auto args = [&](int count) {
            std::vector<double> values;
            expect(TokenKind::LParen);
            for (int i = 0; i < count; ++i) {
                if (i != 0) expect(TokenKind::Comma);
                values.push_back(expect_number());
            }
            expect(TokenKind::RParen);
            return values;
        };
        if (kind == "exp") {
            return lts::RateExp{args(1)[0]};
        }
        if (kind == "inf") {
            if (!at(TokenKind::LParen)) return lts::RateImmediate{1, 1.0};
            const auto v = args(2);
            return lts::RateImmediate{static_cast<int>(v[0]), v[1]};
        }
        if (kind == "det") {
            return lts::RateGeneral{Dist::deterministic(args(1)[0])};
        }
        if (kind == "norm") {
            const auto v = args(2);
            return lts::RateGeneral{Dist::normal(v[0], v[1])};
        }
        if (kind == "unif") {
            const auto v = args(2);
            return lts::RateGeneral{Dist::uniform(v[0], v[1])};
        }
        if (kind == "erlang") {
            const auto v = args(2);
            return lts::RateGeneral{Dist::erlang(static_cast<int>(v[0]), v[1])};
        }
        if (kind == "weibull") {
            const auto v = args(2);
            return lts::RateGeneral{Dist::weibull(v[0], v[1])};
        }
        if (kind == "lognorm") {
            const auto v = args(2);
            return lts::RateGeneral{Dist::lognormal(v[0], v[1])};
        }
        throw ParseError("unknown rate '" + kind + "'", token.line, token.column);
    }

    // --- expressions ----------------------------------------------------

    adl::ExprPtr parse_expr() {
        adl::ExprPtr lhs = parse_term();
        while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
            const bool plus = accept(TokenKind::Plus);
            if (!plus) expect(TokenKind::Minus);
            lhs = adl::Expr::binary(plus ? adl::Expr::Kind::Add : adl::Expr::Kind::Sub,
                                    lhs, parse_term());
        }
        return lhs;
    }

    adl::ExprPtr parse_term() {
        adl::ExprPtr lhs = parse_factor();
        while (at(TokenKind::Star) || at(TokenKind::Slash) || at(TokenKind::Percent)) {
            adl::Expr::Kind op;
            if (accept(TokenKind::Star)) {
                op = adl::Expr::Kind::Mul;
            } else if (accept(TokenKind::Slash)) {
                op = adl::Expr::Kind::Div;
            } else {
                expect(TokenKind::Percent);
                op = adl::Expr::Kind::Mod;
            }
            lhs = adl::Expr::binary(op, lhs, parse_factor());
        }
        return lhs;
    }

    adl::ExprPtr parse_factor() {
        if (accept(TokenKind::LParen)) {
            adl::ExprPtr inner = parse_expr();
            expect(TokenKind::RParen);
            return inner;
        }
        if (accept(TokenKind::Minus)) {
            return adl::Expr::binary(adl::Expr::Kind::Sub, adl::Expr::constant(0),
                                     parse_factor());
        }
        if (at(TokenKind::Number)) {
            const Token token = expect(TokenKind::Number);
            if (token.text.find('.') != std::string::npos) {
                throw ParseError("behaviour expressions are integer valued",
                                 token.line, token.column);
            }
            return adl::Expr::constant(std::strtol(token.text.c_str(), nullptr, 10));
        }
        const Token token = expect(TokenKind::Identifier);
        if (params_ != nullptr) {
            for (std::size_t i = 0; i < params_->size(); ++i) {
                if ((*params_)[i] == token.text) {
                    return adl::Expr::param(i, token.text);
                }
            }
        }
        throw ParseError("unknown parameter '" + token.text + "'", token.line,
                         token.column);
    }

    adl::BoolExprPtr parse_bool_expr() {
        adl::BoolExprPtr lhs = parse_bool_term();
        while (accept(TokenKind::OrOr)) {
            lhs = adl::BoolExpr::disj(lhs, parse_bool_term());
        }
        return lhs;
    }

    adl::BoolExprPtr parse_bool_term() {
        adl::BoolExprPtr lhs = parse_bool_factor();
        while (accept(TokenKind::AndAnd)) {
            lhs = adl::BoolExpr::conj(lhs, parse_bool_factor());
        }
        return lhs;
    }

    adl::BoolExprPtr parse_bool_factor() {
        if (accept(TokenKind::Not)) {
            return adl::BoolExpr::negate(parse_bool_factor());
        }
        // Parenthesised boolean vs parenthesised arithmetic: try boolean
        // first by scanning — simpler to require comparisons not to start
        // with '(' around the whole comparison, which Æmilia specs satisfy.
        adl::ExprPtr lhs = parse_expr();
        adl::BoolExpr::CmpOp op;
        if (accept(TokenKind::Less)) {
            op = adl::BoolExpr::CmpOp::Lt;
        } else if (accept(TokenKind::LessEq)) {
            op = adl::BoolExpr::CmpOp::Le;
        } else if (accept(TokenKind::EqEq)) {
            op = adl::BoolExpr::CmpOp::Eq;
        } else if (accept(TokenKind::NotEq)) {
            op = adl::BoolExpr::CmpOp::Ne;
        } else if (accept(TokenKind::GreaterEq)) {
            op = adl::BoolExpr::CmpOp::Ge;
        } else if (accept(TokenKind::Greater)) {
            op = adl::BoolExpr::CmpOp::Gt;
        } else {
            throw ParseError("expected comparison operator in cond(...)",
                             current().line, current().column);
        }
        return adl::BoolExpr::compare(op, lhs, parse_expr());
    }

    // --- topology ---------------------------------------------------------

    adl::Instance parse_instance() {
        adl::Instance inst;
        inst.loc = loc_of(current());
        inst.name = expect(TokenKind::Identifier).text;
        expect(TokenKind::Colon);
        inst.type = expect(TokenKind::Identifier).text;
        expect(TokenKind::LParen);
        if (!at(TokenKind::RParen)) {
            inst.args.push_back(expect_integer("instance arguments"));
            while (accept(TokenKind::Comma)) {
                inst.args.push_back(expect_integer("instance arguments"));
            }
        }
        expect(TokenKind::RParen);
        return inst;
    }

    adl::Attachment parse_attachment() {
        adl::Attachment att;
        att.loc = loc_of(current());
        expect_keyword("FROM");
        att.from_instance = expect(TokenKind::Identifier).text;
        expect(TokenKind::Dot);
        att.from_loc = loc_of(current());
        att.from_port = expect(TokenKind::Identifier).text;
        expect_keyword("TO");
        att.to_instance = expect(TokenKind::Identifier).text;
        expect(TokenKind::Dot);
        att.to_loc = loc_of(current());
        att.to_port = expect(TokenKind::Identifier).text;
        return att;
    }

    // --- measures ---------------------------------------------------------

    adl::RewardClause parse_reward_clause() {
        adl::RewardClause clause;
        clause.loc = loc_of(current());
        if (accept_keyword("ENABLED")) {
            expect(TokenKind::LParen);
            const std::string instance = expect(TokenKind::Identifier).text;
            expect(TokenKind::Dot);
            const std::string action = expect(TokenKind::Identifier).text;
            expect(TokenKind::RParen);
            clause.predicate = adl::EnabledPredicate{instance, action};
        } else if (accept_keyword("IN_STATE")) {
            expect(TokenKind::LParen);
            const std::string instance = expect(TokenKind::Identifier).text;
            expect(TokenKind::Comma);
            const std::string prefix = expect(TokenKind::Identifier).text;
            expect(TokenKind::RParen);
            clause.predicate = adl::InStatePredicate{instance, prefix};
        } else {
            throw ParseError("expected ENABLED(...) or IN_STATE(...)",
                             current().line, current().column);
        }
        expect(TokenKind::Arrow);
        if (accept_keyword("STATE_REWARD")) {
            clause.target = adl::RewardClause::Target::State;
        } else if (accept_keyword("TRANS_REWARD")) {
            clause.target = adl::RewardClause::Target::Trans;
        } else {
            throw ParseError("expected STATE_REWARD or TRANS_REWARD",
                             current().line, current().column);
        }
        expect(TokenKind::LParen);
        clause.reward = expect_number();
        expect(TokenKind::RParen);
        return clause;
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    const std::vector<std::string>* params_ = nullptr;
};

}  // namespace

adl::ArchiType parse_archi_type(std::string_view input) {
    Parser parser(input);
    return parser.parse_archi_type(/*run_validate=*/true);
}

adl::ArchiType parse_archi_type_unchecked(std::string_view input) {
    Parser parser(input);
    return parser.parse_archi_type(/*run_validate=*/false);
}

std::vector<adl::Measure> parse_measures(std::string_view input) {
    Parser parser(input);
    return parser.parse_measures();
}

}  // namespace dpma::aemilia
