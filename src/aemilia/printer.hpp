#pragma once

/// \file printer.hpp
/// Serialises an in-memory architectural model back to the Æmilia concrete
/// syntax accepted by the parser, enabling model exchange and the
/// parse-print-parse round-trip property tests.
///
/// Limitations: boolean guards using negation are not printable (the
/// concrete grammar has no parenthesised boolean factor); none of the
/// shipped models needs it.

#include <string>
#include <vector>

#include "adl/measure.hpp"
#include "adl/model.hpp"

namespace dpma::aemilia {

/// Renders \p archi in Æmilia concrete syntax.  The output parses back
/// (parse_archi_type) to a model whose composition is strongly bisimilar to
/// the original's, with rates reproduced to full double precision.
[[nodiscard]] std::string to_aemilia(const adl::ArchiType& archi);

/// Renders measures in the companion measure language (parse_measures
/// round-trips).
[[nodiscard]] std::string to_measure_language(const std::vector<adl::Measure>& measures);

}  // namespace dpma::aemilia
