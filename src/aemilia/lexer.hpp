#pragma once

/// \file lexer.hpp
/// Tokenizer for the Æmilia concrete syntax (and the companion measure
/// language).  Keywords are not reserved at the lexer level: the parser
/// matches identifier text, which keeps the token set small and the
/// diagnostics precise.

#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace dpma::aemilia {

enum class TokenKind {
    Identifier,  ///< letters, digits, underscores; starts with letter or '_'
    Number,      ///< integer or decimal literal
    LParen,      ///< (
    RParen,      ///< )
    LBrace,      ///< {
    RBrace,      ///< }
    Comma,       ///< ,
    Semicolon,   ///< ;
    Colon,       ///< :
    Dot,         ///< .
    Less,        ///< <
    Greater,     ///< >
    Arrow,       ///< ->
    Equal,       ///< =
    EqEq,        ///< ==
    NotEq,       ///< !=
    LessEq,      ///< <=
    GreaterEq,   ///< >=
    AndAnd,      ///< &&
    OrOr,        ///< ||
    Not,         ///< !
    Plus,        ///< +
    Minus,       ///< -
    Star,        ///< *
    Slash,       ///< /
    Percent,     ///< %
    Underscore,  ///< _ (the passive rate)
    EndOfInput,
};

struct Token {
    TokenKind kind = TokenKind::EndOfInput;
    std::string text;
    int line = 1;
    int column = 1;
};

/// Tokenizes the whole input.  Throws ParseError on an unexpected character.
/// `//` starts a comment running to the end of the line.
[[nodiscard]] std::vector<Token> tokenize(std::string_view input);

/// Human-readable token-kind name (for error messages).
[[nodiscard]] const char* token_kind_name(TokenKind kind);

}  // namespace dpma::aemilia
