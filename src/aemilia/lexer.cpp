#include "aemilia/lexer.hpp"

#include <cctype>

namespace dpma::aemilia {
namespace {

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0;
}

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
    switch (kind) {
        case TokenKind::Identifier: return "identifier";
        case TokenKind::Number: return "number";
        case TokenKind::LParen: return "'('";
        case TokenKind::RParen: return "')'";
        case TokenKind::LBrace: return "'{'";
        case TokenKind::RBrace: return "'}'";
        case TokenKind::Comma: return "','";
        case TokenKind::Semicolon: return "';'";
        case TokenKind::Colon: return "':'";
        case TokenKind::Dot: return "'.'";
        case TokenKind::Less: return "'<'";
        case TokenKind::Greater: return "'>'";
        case TokenKind::Arrow: return "'->'";
        case TokenKind::Equal: return "'='";
        case TokenKind::EqEq: return "'=='";
        case TokenKind::NotEq: return "'!='";
        case TokenKind::LessEq: return "'<='";
        case TokenKind::GreaterEq: return "'>='";
        case TokenKind::AndAnd: return "'&&'";
        case TokenKind::OrOr: return "'||'";
        case TokenKind::Not: return "'!'";
        case TokenKind::Plus: return "'+'";
        case TokenKind::Minus: return "'-'";
        case TokenKind::Star: return "'*'";
        case TokenKind::Slash: return "'/'";
        case TokenKind::Percent: return "'%'";
        case TokenKind::Underscore: return "'_'";
        case TokenKind::EndOfInput: return "end of input";
    }
    return "?";
}

std::vector<Token> tokenize(std::string_view input) {
    std::vector<Token> tokens;
    int line = 1;
    int column = 1;
    std::size_t i = 0;

    const auto push = [&](TokenKind kind, std::string text, int start_col) {
        tokens.push_back(Token{kind, std::move(text), line, start_col});
    };

    while (i < input.size()) {
        const char c = input[i];
        if (c == '\n') {
            ++line;
            column = 1;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++column;
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < input.size() && input[i + 1] == '/') {
            while (i < input.size() && input[i] != '\n') ++i;
            continue;
        }
        const int start_col = column;
        if (is_ident_start(c)) {
            std::size_t j = i;
            while (j < input.size() && is_ident_char(input[j])) ++j;
            push(TokenKind::Identifier, std::string(input.substr(i, j - i)), start_col);
            column += static_cast<int>(j - i);
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            bool saw_dot = false;
            while (j < input.size() &&
                   (std::isdigit(static_cast<unsigned char>(input[j])) ||
                    (input[j] == '.' && !saw_dot && j + 1 < input.size() &&
                     std::isdigit(static_cast<unsigned char>(input[j + 1]))))) {
                if (input[j] == '.') saw_dot = true;
                ++j;
            }
            // Optional exponent: e / E, optional sign, one or more digits.
            if (j < input.size() && (input[j] == 'e' || input[j] == 'E')) {
                std::size_t k = j + 1;
                if (k < input.size() && (input[k] == '+' || input[k] == '-')) ++k;
                std::size_t digits = k;
                while (digits < input.size() &&
                       std::isdigit(static_cast<unsigned char>(input[digits]))) {
                    ++digits;
                }
                if (digits > k) j = digits;
            }
            push(TokenKind::Number, std::string(input.substr(i, j - i)), start_col);
            column += static_cast<int>(j - i);
            i = j;
            continue;
        }

        const auto two = input.substr(i, 2);
        const auto emit2 = [&](TokenKind kind) {
            push(kind, std::string(two), start_col);
            column += 2;
            i += 2;
        };
        if (two == "->") { emit2(TokenKind::Arrow); continue; }
        if (two == "==") { emit2(TokenKind::EqEq); continue; }
        if (two == "!=") { emit2(TokenKind::NotEq); continue; }
        if (two == "<=") { emit2(TokenKind::LessEq); continue; }
        if (two == ">=") { emit2(TokenKind::GreaterEq); continue; }
        if (two == "&&") { emit2(TokenKind::AndAnd); continue; }
        if (two == "||") { emit2(TokenKind::OrOr); continue; }

        const auto emit1 = [&](TokenKind kind) {
            push(kind, std::string(1, c), start_col);
            ++column;
            ++i;
        };
        switch (c) {
            case '(': emit1(TokenKind::LParen); continue;
            case ')': emit1(TokenKind::RParen); continue;
            case '{': emit1(TokenKind::LBrace); continue;
            case '}': emit1(TokenKind::RBrace); continue;
            case ',': emit1(TokenKind::Comma); continue;
            case ';': emit1(TokenKind::Semicolon); continue;
            case ':': emit1(TokenKind::Colon); continue;
            case '.': emit1(TokenKind::Dot); continue;
            case '<': emit1(TokenKind::Less); continue;
            case '>': emit1(TokenKind::Greater); continue;
            case '=': emit1(TokenKind::Equal); continue;
            case '!': emit1(TokenKind::Not); continue;
            case '+': emit1(TokenKind::Plus); continue;
            case '-': emit1(TokenKind::Minus); continue;
            case '*': emit1(TokenKind::Star); continue;
            case '/': emit1(TokenKind::Slash); continue;
            case '%': emit1(TokenKind::Percent); continue;
            case '_': emit1(TokenKind::Underscore); continue;
            default:
                throw ParseError("unexpected character '" + std::string(1, c) + "'",
                                 line, start_col);
        }
    }
    tokens.push_back(Token{TokenKind::EndOfInput, "", line, column});
    return tokens;
}

}  // namespace dpma::aemilia
