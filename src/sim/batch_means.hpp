#pragma once

/// \file batch_means.hpp
/// Single-run steady-state estimation by the method of batch means: one
/// long trajectory is split into contiguous batches whose means are treated
/// as approximately independent samples.  Cheaper than independent
/// replications when the model has a long warm-up (each replication would
/// pay it again); the paper's 30-replication setup (Fig. 5) is the
/// replication counterpart in sim/gsmp.hpp.

#include <cstddef>
#include <string>

#include "sim/gsmp.hpp"

namespace dpma::sim {

struct BatchOptions {
    double warmup = 0.0;       ///< discarded prefix
    double batch_length = 0.0; ///< time span of one batch (must be > 0)
    std::size_t num_batches = 20;
    std::uint64_t seed = 1;
    double confidence = 0.90;
};

/// Runs one trajectory of length warmup + num_batches * batch_length and
/// returns per-measure estimates whose half-widths come from the batch-mean
/// variance (Student-t with num_batches - 1 degrees of freedom).
///
/// The estimator is consistent when batches are long relative to the
/// model's autocorrelation time; the lag-1 autocorrelation of the batch
/// means is reported so callers can check (|rho1| well below ~0.3 is the
/// usual rule of thumb; enlarge batch_length otherwise).
struct BatchEstimate {
    double mean = 0.0;
    double half_width = 0.0;
    double lag1_autocorrelation = 0.0;
    /// Convergence trajectory: entry k is the CI half-width computed from
    /// the first k+2 batches only, so a caller (or a ResultSet JSON reader)
    /// can see whether the estimate was still drifting when the run ended.
    /// The last entry equals half_width.
    std::vector<double> cumulative_half_widths;
};

[[nodiscard]] std::vector<BatchEstimate> batch_means(const Simulator& simulator,
                                                     const BatchOptions& options);

/// JSON object describing the convergence of a batch-means run, one entry
/// per measure name: {"simulator": {"<name>": {"mean", "half_width",
/// "lag1_autocorrelation", "half_width_trajectory": [...]}}}.  Suitable for
/// exp::PointResult::diagnostics.
[[nodiscard]] std::string convergence_json(const std::vector<BatchEstimate>& estimates,
                                           const std::vector<std::string>& names);

}  // namespace dpma::sim
