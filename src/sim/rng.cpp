#include "sim/rng.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dpma::sim {

std::uint64_t Rng::below(std::uint64_t bound) {
    DPMA_REQUIRE(bound > 0, "empty range");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t x;
    do {
        x = engine_();
    } while (x >= limit);
    return x % bound;
}

double Rng::standard_normal() {
    // Box–Muller; no caching of the second variate to keep replay simple.
    const double u1 = uniform01_open();
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::sample_rare(const Dist& dist) {
    switch (dist.kind()) {
        case DistKind::Normal: {
            // Truncate at zero by resampling; the delay models used here
            // have stddev << mean, so rejections are astronomically rare.
            for (int i = 0; i < 64; ++i) {
                const double x = dist.a() + dist.b() * standard_normal();
                if (x >= 0.0) return x;
            }
            return 0.0;
        }
        case DistKind::Erlang: {
            double sum = 0.0;
            for (int i = 0; i < dist.phases(); ++i) {
                sum += -std::log(uniform01_open()) / dist.a();
            }
            return sum;
        }
        case DistKind::Weibull:
            return dist.b() * std::pow(-std::log(uniform01_open()), 1.0 / dist.a());
        case DistKind::LogNormal:
            return std::exp(dist.a() + dist.b() * standard_normal());
        default:
            break;  // inline families never reach the fallback
    }
    throw Error("unknown distribution kind");
}

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t index) {
    // splitmix64 over base ^ golden-ratio-scrambled index.
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t point,
                               std::uint64_t replication) {
    return derive_seed(derive_seed(base, point), replication);
}

}  // namespace dpma::sim
