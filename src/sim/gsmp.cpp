#include "sim/gsmp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::sim {

Simulator::Simulator(const adl::ComposedModel& model, std::vector<adl::Measure> measures)
    : model_(model), measures_(std::move(measures)) {
    // Sanity: reject functional or passive leftovers early.
    for (lts::StateId s = 0; s < model_.graph.num_states(); ++s) {
        for (const lts::Transition& t : model_.graph.out(s)) {
            if (std::holds_alternative<lts::RateUnspecified>(t.rate)) {
                throw ModelError("functional model cannot be simulated: action " +
                                 model_.graph.actions()->name(t.action) + " has no rate");
            }
            if (lts::is_passive(t.rate)) {
                throw ModelError("passive transition survived composition: " +
                                 model_.graph.actions()->name(t.action));
            }
        }
    }

    const std::size_t num_states = model_.graph.num_states();
    const std::size_t num_actions = model_.graph.actions()->size();
    state_reward_rate_.assign(measures_.size(), {});
    action_reward_.assign(measures_.size(), {});
    for (std::size_t m = 0; m < measures_.size(); ++m) {
        state_reward_rate_[m].assign(num_states, 0.0);
        action_reward_[m].assign(num_actions, 0.0);
        for (const adl::RewardClause& clause : measures_[m].clauses) {
            if (clause.target == adl::RewardClause::Target::State) {
                const auto mask = adl::state_mask(model_, clause.predicate);
                for (lts::StateId s = 0; s < num_states; ++s) {
                    if (mask[s]) state_reward_rate_[m][s] += clause.reward;
                }
            } else {
                const auto mask = adl::action_mask(model_, clause.predicate);
                for (Symbol a = 0; a < num_actions; ++a) {
                    if (mask[a]) action_reward_[m][a] += clause.reward;
                }
            }
        }
    }
    compiled_ = compile_model(model_, state_reward_rate_, action_reward_);
}

RunResult Simulator::run(const SimOptions& options, std::vector<TraceEvent>* trace) const {
    RunResult result = run_impl(options, nullptr, trace, nullptr, nullptr);
    for (double& v : result.values) v /= options.horizon;
    return result;
}

DepletionResult Simulator::run_until(std::size_t measure_index, double threshold,
                                     const SimOptions& options) const {
    DPMA_REQUIRE(measure_index < measures_.size(), "measure index out of range");
    DPMA_REQUIRE(threshold > 0.0, "threshold must be positive");
    DPMA_REQUIRE(options.warmup == 0.0, "run_until accumulates from time zero");
    const StopSpec stop{measure_index, threshold};
    DepletionResult out;
    out.time = options.warmup + options.horizon;
    const RunResult raw =
        run_impl(options, &stop, nullptr, &out.time, &out.depleted);
    out.totals = raw.values;
    return out;
}

ObservedResult Simulator::run_observed(const SimOptions& options,
                                       TrajectoryObserver& observer) const {
    DPMA_REQUIRE(options.warmup == 0.0, "run_observed accumulates from time zero");
    ObservedResult out;
    out.time = options.horizon;
    const RunResult raw =
        run_impl(options, nullptr, nullptr, &out.time, &out.stopped, nullptr, &observer);
    out.totals = raw.values;
    out.events = raw.events;
    return out;
}

RunResult Simulator::run_impl(const SimOptions& options, const StopSpec* stop,
                              std::vector<TraceEvent>* trace, double* stop_time,
                              bool* depleted, BatchSink* batches,
                              TrajectoryObserver* observer) const {
    DPMA_ASSERT(stop == nullptr || observer == nullptr,
                "stop spec and trajectory observer are mutually exclusive");
    DPMA_NAMED_SPAN(span, "sim.run", "sim");
    span.arg("horizon", options.horizon);
    DPMA_REQUIRE(options.horizon > 0.0, "simulation horizon must be positive");
    DPMA_REQUIRE(options.warmup >= 0.0, "negative warmup");
    Rng rng(options.seed);

    const double t_begin = options.warmup;
    const double t_end = options.warmup + options.horizon;

    lts::StateId state = model_.graph.initial();
    DPMA_REQUIRE(state != lts::kNoState, "model has no initial state");

    const bool fast = compiled_.all_exponential && options.markov_fast_path;

    double now = 0.0;
    std::uint64_t events = 0;
    bool finished = false;

    std::vector<KahanSum> totals(measures_.size());

    // Dense clocks keyed by action label (enabling memory): value plus a
    // scheduling-round stamp per label.  A clock carries to the next round
    // iff its stamp is the previous round's; firing or disabling a label
    // just leaves its stamp behind — no per-round map churn.  The fast path
    // never touches them.
    constexpr std::uint64_t kUnscheduled = std::numeric_limits<std::uint64_t>::max();
    struct Clock {
        double value = 0.0;
        std::uint64_t round = kUnscheduled;
    };
    std::vector<Clock> clocks;
    std::uint64_t round = 0;
    if (!fast) clocks.assign(compiled_.num_actions, Clock{});
    std::uint64_t fresh_samples = 0;

    // Distributes a state-residence reward interval over the batch buckets
    // (intervals may span several batch boundaries).
    const auto batch_state_time = [&](lts::StateId s, double lo, double hi) {
        if (batches == nullptr) return;
        const CompiledModel::StateInfo& info = compiled_.states[s];
        double from = lo;
        while (from < hi) {
            const auto index = static_cast<std::size_t>((from - t_begin) / batches->length);
            if (index >= batches->totals.size()) break;
            const double boundary = t_begin + (index + 1) * batches->length;
            const double to = std::min(hi, boundary);
            for (std::uint32_t e = info.reward_begin; e < info.reward_end; ++e) {
                const CompiledModel::RewardEntry& entry = compiled_.state_rewards[e];
                batches->totals[index][entry.measure] += entry.value * (to - from);
            }
            from = to;
        }
    };

    // Accumulates state rewards over [from, to) in `s`.  Returns the stop
    // crossing time if the stop measure crosses its threshold inside the
    // interval (its reward accrues linearly), NaN otherwise.
    const auto accumulate_state_time = [&](lts::StateId s, double from,
                                           double to) -> double {
        const double lo = std::max(from, t_begin);
        const double hi = std::min(to, t_end);
        if (hi <= lo) return std::numeric_limits<double>::quiet_NaN();
        const double dt = hi - lo;
        double crossing = std::numeric_limits<double>::quiet_NaN();
        if (stop != nullptr) {
            const double rate = state_reward_rate_[stop->measure][s];
            const double current = totals[stop->measure].value();
            if (rate > 0.0 && current + rate * dt >= stop->threshold) {
                crossing = lo + (stop->threshold - current) / rate;
            }
        }
        const CompiledModel::StateInfo& info = compiled_.states[s];
        for (std::uint32_t e = info.reward_begin; e < info.reward_end; ++e) {
            const CompiledModel::RewardEntry& entry = compiled_.state_rewards[e];
            totals[entry.measure].add(entry.value * dt);
        }
        batch_state_time(s, lo, hi);
        return crossing;
    };

    const auto accumulate_firing = [&](lts::ActionId action, double at) {
        if (at < t_begin || at > t_end) return;
        const std::uint32_t reward_begin = compiled_.action_reward_begin[action];
        const std::uint32_t reward_end = compiled_.action_reward_begin[action + 1];
        for (std::uint32_t e = reward_begin; e < reward_end; ++e) {
            const CompiledModel::RewardEntry& entry = compiled_.action_rewards[e];
            totals[entry.measure].add(entry.value);
        }
        if (batches != nullptr && at > t_begin) {
            const auto index =
                static_cast<std::size_t>((at - t_begin) / batches->length);
            if (index < batches->totals.size()) {
                for (std::uint32_t e = reward_begin; e < reward_end; ++e) {
                    const CompiledModel::RewardEntry& entry = compiled_.action_rewards[e];
                    batches->totals[index][entry.measure] += entry.value;
                }
            }
        }
    };

    const auto stop_reached = [&]() {
        return stop != nullptr && totals[stop->measure].value() >= stop->threshold;
    };

    // Reports the residence interval [from, to) to the observer; returns the
    // observer's stop time when it ends the run there, NaN otherwise.
    const auto observe = [&](lts::StateId s, double from, double to) -> double {
        if (observer == nullptr || to <= from) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        const double at = observer->residence(s, from, to);
        if (at < 0.0) return std::numeric_limits<double>::quiet_NaN();
        DPMA_ASSERT(at >= from && at <= to, "observer stop time outside the interval");
        return at;
    };

    std::uint64_t immediate_burst = 0;
    while (now < t_end) {
        const CompiledModel::StateInfo& info = compiled_.states[state];

        // Maximal progress: drain immediate transitions without advancing
        // time.  The table holds the best-priority candidates with positive
        // weight; the draw replays the reference scanner (same total, same
        // sequential subtraction, last candidate as numerical-slack
        // fallback).
        if (info.imm_begin != info.imm_end) {
            if (++immediate_burst > options.max_immediate_burst) {
                throw NumericalError(
                    "immediate-action livelock: over " +
                    std::to_string(options.max_immediate_burst) +
                    " immediate firings without time advancing");
            }
            double pick = rng.uniform01() * info.imm_total_weight;
            const CompiledModel::ImmediateCandidate* chosen =
                &compiled_.immediates[info.imm_end - 1];
            for (std::uint32_t k = info.imm_begin; k < info.imm_end; ++k) {
                pick -= compiled_.immediates[k].weight;
                if (pick <= 0.0) {
                    chosen = &compiled_.immediates[k];
                    break;
                }
            }
            accumulate_firing(chosen->action, now);
            if (now >= t_begin) {
                ++events;
                if (trace != nullptr) {
                    trace->push_back(TraceEvent{now, chosen->action, chosen->target});
                }
            }
            state = chosen->target;
            if (stop_reached()) {
                if (stop_time != nullptr) *stop_time = now;
                if (depleted != nullptr) *depleted = true;
                finished = true;
                break;
            }
            continue;
        }
        immediate_burst = 0;

        if (info.timed_begin == info.timed_end) {
            // Deadlock: the remaining time is spent here.
            double seg_end = t_end;
            bool observer_stop = false;
            if (const double at = observe(state, now, t_end); !std::isnan(at)) {
                seg_end = at;
                observer_stop = true;
            }
            const double crossing = accumulate_state_time(state, now, seg_end);
            if (!std::isnan(crossing) || observer_stop) {
                if (stop_time != nullptr) {
                    *stop_time = observer_stop ? seg_end : crossing;
                }
                if (depleted != nullptr) *depleted = true;
                finished = true;
            }
            now = seg_end;
            break;
        }

        // Schedule: earliest clock expiry, or — on the fast path — the
        // exponential sojourn of the state's total exit rate (equal in law
        // by memorylessness; no clock memory).
        double min_remaining;
        if (fast) {
            min_remaining = -std::log(rng.uniform01_open()) / info.exit_rate;
        } else {
            ++round;
            min_remaining = std::numeric_limits<double>::infinity();
            for (std::uint32_t li = info.timed_begin; li < info.timed_end; ++li) {
                const CompiledModel::TimedLabel& tl = compiled_.timed[li];
                Clock& clock = clocks[tl.action];
                double remaining;
                if (clock.round == round - 1) {
                    remaining = clock.value;
                } else {
                    remaining = rng.sample(tl.dist);
                    clock.value = remaining;
                    ++fresh_samples;
                }
                clock.round = round;
                min_remaining = std::min(min_remaining, remaining);
            }
        }

        // Advance time to the expiry.
        const double fire_time = now + min_remaining;
        if (const double at = observe(state, now, std::min(fire_time, t_end));
            !std::isnan(at)) {
            (void)accumulate_state_time(state, now, at);
            if (stop_time != nullptr) *stop_time = at;
            if (depleted != nullptr) *depleted = true;
            finished = true;
            now = at;
            break;
        }
        const double crossing =
            accumulate_state_time(state, now, std::min(fire_time, t_end));
        if (!std::isnan(crossing)) {
            if (stop_time != nullptr) *stop_time = crossing;
            if (depleted != nullptr) *depleted = true;
            // Roll the overshoot back so the totals reflect the stop instant.
            const double overshoot = std::min(fire_time, t_end) - crossing;
            for (std::uint32_t e = info.reward_begin; e < info.reward_end; ++e) {
                const CompiledModel::RewardEntry& entry = compiled_.state_rewards[e];
                totals[entry.measure].add(-entry.value * overshoot);
            }
            finished = true;
            now = crossing;
            break;
        }
        if (fire_time >= t_end) {
            now = t_end;
            break;
        }
        now = fire_time;

        // Identify the firing and its target.
        lts::ActionId fired_action;
        lts::StateId fired_target;
        if (fast) {
            // One uniform draw over the cumulative successor rates; a single
            // successor needs no draw at all.
            std::uint32_t c = info.fast_begin;
            if (info.fast_end - info.fast_begin > 1) {
                const double u = rng.uniform01() * info.exit_rate;
                while (c + 1 < info.fast_end && u >= compiled_.fast[c].cum) ++c;
            }
            fired_action = compiled_.fast[c].action;
            fired_target = compiled_.fast[c].target;
        } else {
            // Expiring label (ties: collect all minimal labels and pick
            // uniformly).  The scan walks the labels in the retired
            // unordered_map's iteration order — the tie-break draws are
            // order-sensitive — while decrementing every running clock.
            lts::ActionId fired_label = kNoSymbol;
            std::uint32_t fired_index = 0;
            std::uint32_t minimal = 0;
            for (std::uint32_t k = info.timed_begin; k < info.timed_end; ++k) {
                const std::uint32_t li = info.timed_begin + compiled_.tie_order[k];
                const CompiledModel::TimedLabel& tl = compiled_.timed[li];
                const double remaining = (clocks[tl.action].value -= min_remaining);
                if (remaining <= 1e-15) {
                    ++minimal;
                    if (fired_label == kNoSymbol || rng.below(minimal) == 0) {
                        fired_label = tl.action;
                        fired_index = li;
                    }
                }
            }
            DPMA_ASSERT(fired_label != kNoSymbol, "no clock expired at the minimum");

            // Among transitions carrying the fired label, choose uniformly.
            const CompiledModel::TimedLabel& fired = compiled_.timed[fired_index];
            std::uint32_t candidates = 0;
            fired_target = lts::kNoState;
            for (std::uint32_t c = fired.cand_begin; c < fired.cand_end; ++c) {
                ++candidates;
                if (rng.below(candidates) == 0) fired_target = compiled_.targets[c];
            }
            DPMA_ASSERT(fired_target != lts::kNoState, "fired label has no transition");
            clocks[fired_label].round = kUnscheduled;
            fired_action = fired_label;
        }

        accumulate_firing(fired_action, now);
        if (now >= t_begin) {
            ++events;
            if (trace != nullptr) {
                trace->push_back(TraceEvent{now, fired_action, fired_target});
            }
        }
        state = fired_target;
        if (stop_reached()) {
            if (stop_time != nullptr) *stop_time = now;
            if (depleted != nullptr) *depleted = true;
            finished = true;
            break;
        }
    }
    (void)finished;

    RunResult result;
    result.events = events;
    result.values.reserve(measures_.size());
    for (std::size_t m = 0; m < measures_.size(); ++m) {
        result.values.push_back(totals[m].value());
    }
    // One registry update per run, not per event: pool workers would contend
    // on a per-event atomic, and `events` already aggregates the loop.
    static obs::Counter& run_counter = obs::counter("sim.runs");
    static obs::Counter& event_counter = obs::counter("sim.events");
    static obs::Counter& fastpath_counter = obs::counter("sim.fastpath.runs");
    static obs::Counter& clock_counter = obs::counter("sim.clock.samples");
    run_counter.add();
    event_counter.add(events);
    if (fast) fastpath_counter.add();
    if (fresh_samples != 0) clock_counter.add(fresh_samples);
    span.arg("events", static_cast<double>(events));
    return result;
}

std::vector<Estimate> simulate_replications(const Simulator& simulator,
                                            const SimOptions& options, int replications,
                                            double confidence) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    const std::size_t num_measures = simulator.measures().size();
    std::vector<Estimate> estimates(num_measures);
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].samples.reserve(static_cast<std::size_t>(replications));
    }
    for (int r = 0; r < replications; ++r) {
        SimOptions rep = options;
        rep.seed = Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r));
        const RunResult run = simulator.run(rep);
        for (std::size_t m = 0; m < num_measures; ++m) {
            estimates[m].samples.push_back(run.values[m]);
        }
    }
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].mean = mean_of(estimates[m].samples);
        estimates[m].half_width = confidence_half_width(estimates[m].samples, confidence);
    }
    return estimates;
}

Estimate simulate_depletion(const Simulator& simulator, std::size_t measure_index,
                            double threshold, const SimOptions& options,
                            int replications, double confidence) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    Estimate estimate;
    estimate.samples.reserve(static_cast<std::size_t>(replications));
    for (int r = 0; r < replications; ++r) {
        SimOptions rep = options;
        rep.seed = Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r) + 7777);
        const DepletionResult result =
            simulator.run_until(measure_index, threshold, rep);
        if (!result.depleted) {
            throw NumericalError(
                "depletion horizon too short: threshold not reached; raise "
                "SimOptions::horizon");
        }
        estimate.samples.push_back(result.time);
    }
    estimate.mean = mean_of(estimate.samples);
    estimate.half_width = confidence_half_width(estimate.samples, confidence);
    return estimate;
}

}  // namespace dpma::sim
