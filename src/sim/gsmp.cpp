#include "sim/gsmp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::sim {
namespace {

/// Chooses among the enabled immediate transitions of a state following
/// maximal progress (highest priority, then weight-proportional choice).
/// Returns the transition index or -1 when the state has no immediates.
int choose_immediate(const adl::ComposedModel& model, lts::StateId state, Rng& rng) {
    int best_priority = std::numeric_limits<int>::min();
    double total_weight = 0.0;
    const auto out = model.graph.out(state);
    for (const lts::Transition& t : out) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
            if (imm->priority > best_priority) {
                best_priority = imm->priority;
                total_weight = 0.0;
            }
            if (imm->priority == best_priority) total_weight += imm->weight;
        }
    }
    if (total_weight <= 0.0) return -1;
    double pick = rng.uniform01() * total_weight;
    int fallback = -1;
    for (std::size_t k = 0; k < out.size(); ++k) {
        if (const auto* imm = std::get_if<lts::RateImmediate>(&out[k].rate)) {
            if (imm->priority != best_priority || imm->weight <= 0.0) continue;
            fallback = static_cast<int>(k);
            pick -= imm->weight;
            if (pick <= 0.0) return static_cast<int>(k);
        }
    }
    return fallback;  // numerical slack: last candidate
}

Dist dist_of(const lts::Rate& rate) {
    if (const auto* exp_rate = std::get_if<lts::RateExp>(&rate)) {
        return Dist::exponential(exp_rate->rate);
    }
    if (const auto* gen = std::get_if<lts::RateGeneral>(&rate)) {
        return gen->dist;
    }
    throw ModelError("transition without a timed rate reached the scheduler");
}

}  // namespace

Simulator::Simulator(const adl::ComposedModel& model, std::vector<adl::Measure> measures)
    : model_(model), measures_(std::move(measures)) {
    // Sanity: reject functional or passive leftovers early.
    for (lts::StateId s = 0; s < model_.graph.num_states(); ++s) {
        for (const lts::Transition& t : model_.graph.out(s)) {
            if (std::holds_alternative<lts::RateUnspecified>(t.rate)) {
                throw ModelError("functional model cannot be simulated: action " +
                                 model_.graph.actions()->name(t.action) + " has no rate");
            }
            if (lts::is_passive(t.rate)) {
                throw ModelError("passive transition survived composition: " +
                                 model_.graph.actions()->name(t.action));
            }
        }
    }

    const std::size_t num_states = model_.graph.num_states();
    const std::size_t num_actions = model_.graph.actions()->size();
    state_reward_rate_.assign(measures_.size(), {});
    action_reward_.assign(measures_.size(), {});
    for (std::size_t m = 0; m < measures_.size(); ++m) {
        state_reward_rate_[m].assign(num_states, 0.0);
        action_reward_[m].assign(num_actions, 0.0);
        for (const adl::RewardClause& clause : measures_[m].clauses) {
            if (clause.target == adl::RewardClause::Target::State) {
                const auto mask = adl::state_mask(model_, clause.predicate);
                for (lts::StateId s = 0; s < num_states; ++s) {
                    if (mask[s]) state_reward_rate_[m][s] += clause.reward;
                }
            } else {
                const auto mask = adl::action_mask(model_, clause.predicate);
                for (Symbol a = 0; a < num_actions; ++a) {
                    if (mask[a]) action_reward_[m][a] += clause.reward;
                }
            }
        }
    }
}

RunResult Simulator::run(const SimOptions& options, std::vector<TraceEvent>* trace) const {
    RunResult result = run_impl(options, nullptr, trace, nullptr, nullptr);
    for (double& v : result.values) v /= options.horizon;
    return result;
}

DepletionResult Simulator::run_until(std::size_t measure_index, double threshold,
                                     const SimOptions& options) const {
    DPMA_REQUIRE(measure_index < measures_.size(), "measure index out of range");
    DPMA_REQUIRE(threshold > 0.0, "threshold must be positive");
    DPMA_REQUIRE(options.warmup == 0.0, "run_until accumulates from time zero");
    const StopSpec stop{measure_index, threshold};
    DepletionResult out;
    out.time = options.warmup + options.horizon;
    const RunResult raw =
        run_impl(options, &stop, nullptr, &out.time, &out.depleted);
    out.totals = raw.values;
    return out;
}

ObservedResult Simulator::run_observed(const SimOptions& options,
                                       TrajectoryObserver& observer) const {
    DPMA_REQUIRE(options.warmup == 0.0, "run_observed accumulates from time zero");
    ObservedResult out;
    out.time = options.horizon;
    const RunResult raw =
        run_impl(options, nullptr, nullptr, &out.time, &out.stopped, nullptr, &observer);
    out.totals = raw.values;
    out.events = raw.events;
    return out;
}

RunResult Simulator::run_impl(const SimOptions& options, const StopSpec* stop,
                              std::vector<TraceEvent>* trace, double* stop_time,
                              bool* depleted, BatchSink* batches,
                              TrajectoryObserver* observer) const {
    DPMA_ASSERT(stop == nullptr || observer == nullptr,
                "stop spec and trajectory observer are mutually exclusive");
    DPMA_NAMED_SPAN(span, "sim.run", "sim");
    span.arg("horizon", options.horizon);
    DPMA_REQUIRE(options.horizon > 0.0, "simulation horizon must be positive");
    DPMA_REQUIRE(options.warmup >= 0.0, "negative warmup");
    Rng rng(options.seed);

    const double t_begin = options.warmup;
    const double t_end = options.warmup + options.horizon;

    lts::StateId state = model_.graph.initial();
    DPMA_REQUIRE(state != lts::kNoState, "model has no initial state");

    double now = 0.0;
    std::uint64_t events = 0;
    bool finished = false;

    std::vector<KahanSum> totals(measures_.size());

    // Clocks keyed by action label (enabling memory).
    std::unordered_map<lts::ActionId, double> clocks;
    std::unordered_map<lts::ActionId, double> next_clocks;

    // Distributes a state-residence reward interval over the batch buckets
    // (intervals may span several batch boundaries).
    const auto batch_state_time = [&](lts::StateId s, double lo, double hi) {
        if (batches == nullptr) return;
        double from = lo;
        while (from < hi) {
            const auto index = static_cast<std::size_t>((from - t_begin) / batches->length);
            if (index >= batches->totals.size()) break;
            const double boundary = t_begin + (index + 1) * batches->length;
            const double to = std::min(hi, boundary);
            for (std::size_t m = 0; m < totals.size(); ++m) {
                const double rate = state_reward_rate_[m][s];
                if (rate != 0.0) batches->totals[index][m] += rate * (to - from);
            }
            from = to;
        }
    };

    // Accumulates state rewards over [from, to) in `s`.  Returns the stop
    // crossing time if the stop measure crosses its threshold inside the
    // interval (its reward accrues linearly), NaN otherwise.
    const auto accumulate_state_time = [&](lts::StateId s, double from,
                                           double to) -> double {
        const double lo = std::max(from, t_begin);
        const double hi = std::min(to, t_end);
        if (hi <= lo) return std::numeric_limits<double>::quiet_NaN();
        const double dt = hi - lo;
        double crossing = std::numeric_limits<double>::quiet_NaN();
        if (stop != nullptr) {
            const double rate = state_reward_rate_[stop->measure][s];
            const double current = totals[stop->measure].value();
            if (rate > 0.0 && current + rate * dt >= stop->threshold) {
                crossing = lo + (stop->threshold - current) / rate;
            }
        }
        for (std::size_t m = 0; m < totals.size(); ++m) {
            const double rate = state_reward_rate_[m][s];
            if (rate != 0.0) totals[m].add(rate * dt);
        }
        batch_state_time(s, lo, hi);
        return crossing;
    };

    const auto accumulate_firing = [&](lts::ActionId action, double at) {
        if (at < t_begin || at > t_end) return;
        for (std::size_t m = 0; m < totals.size(); ++m) {
            const double reward = action_reward_[m][action];
            if (reward != 0.0) totals[m].add(reward);
        }
        if (batches != nullptr && at > t_begin) {
            const auto index =
                static_cast<std::size_t>((at - t_begin) / batches->length);
            if (index < batches->totals.size()) {
                for (std::size_t m = 0; m < totals.size(); ++m) {
                    const double reward = action_reward_[m][action];
                    if (reward != 0.0) batches->totals[index][m] += reward;
                }
            }
        }
    };

    const auto stop_reached = [&]() {
        return stop != nullptr && totals[stop->measure].value() >= stop->threshold;
    };

    // Reports the residence interval [from, to) to the observer; returns the
    // observer's stop time when it ends the run there, NaN otherwise.
    const auto observe = [&](lts::StateId s, double from, double to) -> double {
        if (observer == nullptr || to <= from) {
            return std::numeric_limits<double>::quiet_NaN();
        }
        const double at = observer->residence(s, from, to);
        if (at < 0.0) return std::numeric_limits<double>::quiet_NaN();
        DPMA_ASSERT(at >= from && at <= to, "observer stop time outside the interval");
        return at;
    };

    std::uint64_t immediate_burst = 0;
    while (now < t_end) {
        // Maximal progress: drain immediate transitions without advancing time.
        const int imm = choose_immediate(model_, state, rng);
        if (imm >= 0) {
            if (++immediate_burst > options.max_immediate_burst) {
                throw NumericalError(
                    "immediate-action livelock: over " +
                    std::to_string(options.max_immediate_burst) +
                    " immediate firings without time advancing");
            }
            const lts::Transition& t = model_.graph.out(state)[static_cast<std::size_t>(imm)];
            accumulate_firing(t.action, now);
            if (now >= t_begin) {
                ++events;
                if (trace != nullptr) trace->push_back(TraceEvent{now, t.action, t.target});
            }
            state = t.target;
            if (stop_reached()) {
                if (stop_time != nullptr) *stop_time = now;
                if (depleted != nullptr) *depleted = true;
                finished = true;
                break;
            }
            continue;
        }
        immediate_burst = 0;

        // Schedule timed transitions of the current state.
        const auto out = model_.graph.out(state);
        if (out.empty()) {
            // Deadlock: the remaining time is spent here.
            double seg_end = t_end;
            bool observer_stop = false;
            if (const double at = observe(state, now, t_end); !std::isnan(at)) {
                seg_end = at;
                observer_stop = true;
            }
            const double crossing = accumulate_state_time(state, now, seg_end);
            if (!std::isnan(crossing) || observer_stop) {
                if (stop_time != nullptr) {
                    *stop_time = observer_stop ? seg_end : crossing;
                }
                if (depleted != nullptr) *depleted = true;
                finished = true;
            }
            now = seg_end;
            break;
        }
        next_clocks.clear();
        double min_remaining = std::numeric_limits<double>::infinity();
        for (const lts::Transition& t : out) {
            if (next_clocks.contains(t.action)) continue;  // same-label transitions share a clock
            double remaining;
            if (auto it = clocks.find(t.action); it != clocks.end()) {
                remaining = it->second;
            } else {
                remaining = rng.sample(dist_of(t.rate));
            }
            next_clocks.emplace(t.action, remaining);
            min_remaining = std::min(min_remaining, remaining);
        }
        clocks.swap(next_clocks);

        // Advance time to the earliest expiry.
        const double fire_time = now + min_remaining;
        if (const double at = observe(state, now, std::min(fire_time, t_end));
            !std::isnan(at)) {
            (void)accumulate_state_time(state, now, at);
            if (stop_time != nullptr) *stop_time = at;
            if (depleted != nullptr) *depleted = true;
            finished = true;
            now = at;
            break;
        }
        const double crossing =
            accumulate_state_time(state, now, std::min(fire_time, t_end));
        if (!std::isnan(crossing)) {
            if (stop_time != nullptr) *stop_time = crossing;
            if (depleted != nullptr) *depleted = true;
            // Roll the overshoot back so the totals reflect the stop instant.
            const double overshoot = std::min(fire_time, t_end) - crossing;
            for (std::size_t m = 0; m < totals.size(); ++m) {
                const double rate = state_reward_rate_[m][state];
                if (rate != 0.0) totals[m].add(-rate * overshoot);
            }
            finished = true;
            now = crossing;
            break;
        }
        if (fire_time >= t_end) {
            now = t_end;
            break;
        }
        now = fire_time;

        // Identify the expiring label (ties: collect all minimal labels and
        // pick uniformly).
        lts::ActionId fired_label = kNoSymbol;
        std::uint32_t minimal = 0;
        for (auto& [label, remaining] : clocks) {
            remaining -= min_remaining;
            if (remaining <= 1e-15) {
                ++minimal;
                if (fired_label == kNoSymbol || rng.below(minimal) == 0) {
                    fired_label = label;
                }
            }
        }
        DPMA_ASSERT(fired_label != kNoSymbol, "no clock expired at the minimum");

        // Among transitions carrying the fired label, choose uniformly.
        std::uint32_t candidates = 0;
        const lts::Transition* chosen = nullptr;
        for (const lts::Transition& t : out) {
            if (t.action != fired_label) continue;
            ++candidates;
            if (rng.below(candidates) == 0) chosen = &t;
        }
        DPMA_ASSERT(chosen != nullptr, "fired label has no transition");

        accumulate_firing(fired_label, now);
        if (now >= t_begin) {
            ++events;
            if (trace != nullptr) {
                trace->push_back(TraceEvent{now, fired_label, chosen->target});
            }
        }
        clocks.erase(fired_label);
        state = chosen->target;
        if (stop_reached()) {
            if (stop_time != nullptr) *stop_time = now;
            if (depleted != nullptr) *depleted = true;
            finished = true;
            break;
        }
    }
    (void)finished;

    RunResult result;
    result.events = events;
    result.values.reserve(measures_.size());
    for (std::size_t m = 0; m < measures_.size(); ++m) {
        result.values.push_back(totals[m].value());
    }
    // One registry update per run, not per event: pool workers would contend
    // on a per-event atomic, and `events` already aggregates the loop.
    static obs::Counter& run_counter = obs::counter("sim.runs");
    static obs::Counter& event_counter = obs::counter("sim.events");
    run_counter.add();
    event_counter.add(events);
    span.arg("events", static_cast<double>(events));
    return result;
}

std::vector<Estimate> simulate_replications(const Simulator& simulator,
                                            const SimOptions& options, int replications,
                                            double confidence) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    const std::size_t num_measures = simulator.measures().size();
    std::vector<Estimate> estimates(num_measures);
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].samples.reserve(static_cast<std::size_t>(replications));
    }
    for (int r = 0; r < replications; ++r) {
        SimOptions rep = options;
        rep.seed = Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r));
        const RunResult run = simulator.run(rep);
        for (std::size_t m = 0; m < num_measures; ++m) {
            estimates[m].samples.push_back(run.values[m]);
        }
    }
    for (std::size_t m = 0; m < num_measures; ++m) {
        estimates[m].mean = mean_of(estimates[m].samples);
        estimates[m].half_width = confidence_half_width(estimates[m].samples, confidence);
    }
    return estimates;
}

Estimate simulate_depletion(const Simulator& simulator, std::size_t measure_index,
                            double threshold, const SimOptions& options,
                            int replications, double confidence) {
    DPMA_REQUIRE(replications >= 1, "need at least one replication");
    Estimate estimate;
    estimate.samples.reserve(static_cast<std::size_t>(replications));
    for (int r = 0; r < replications; ++r) {
        SimOptions rep = options;
        rep.seed = Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r) + 7777);
        const DepletionResult result =
            simulator.run_until(measure_index, threshold, rep);
        if (!result.depleted) {
            throw NumericalError(
                "depletion horizon too short: threshold not reached; raise "
                "SimOptions::horizon");
        }
        estimate.samples.push_back(result.time);
    }
    estimate.mean = mean_of(estimate.samples);
    estimate.half_width = confidence_half_width(estimate.samples, confidence);
    return estimate;
}

}  // namespace dpma::sim
