#include "sim/batch_means.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dpma::sim {

std::vector<BatchEstimate> batch_means_impl(const Simulator& simulator,
                                            const BatchOptions& options) {
    DPMA_REQUIRE(options.batch_length > 0.0, "batch length must be positive");
    DPMA_REQUIRE(options.num_batches >= 2, "need at least two batches");

    const std::size_t num_measures = simulator.measures().size();
    Simulator::BatchSink sink;
    sink.length = options.batch_length;
    sink.totals.assign(options.num_batches, std::vector<double>(num_measures, 0.0));

    SimOptions run_options;
    run_options.warmup = options.warmup;
    run_options.horizon =
        options.batch_length * static_cast<double>(options.num_batches);
    run_options.seed = options.seed;
    (void)simulator.run_impl(run_options, nullptr, nullptr, nullptr, nullptr, &sink);

    std::vector<BatchEstimate> estimates(num_measures);
    for (std::size_t m = 0; m < num_measures; ++m) {
        std::vector<double> means;
        means.reserve(options.num_batches);
        for (const auto& batch : sink.totals) {
            means.push_back(batch[m] / options.batch_length);
        }
        estimates[m].mean = mean_of(means);
        estimates[m].half_width = confidence_half_width(means, options.confidence);

        // Half-width after each prefix of batches: the convergence curve a
        // practitioner reads to judge whether the run was long enough.
        estimates[m].cumulative_half_widths.reserve(means.size() - 1);
        for (std::size_t k = 2; k <= means.size(); ++k) {
            const std::vector<double> prefix(means.begin(),
                                             means.begin() + static_cast<std::ptrdiff_t>(k));
            estimates[m].cumulative_half_widths.push_back(
                confidence_half_width(prefix, options.confidence));
        }

        // Lag-1 autocorrelation of the batch means.
        RunningMoments moments;
        for (double v : means) moments.add(v);
        const double variance = moments.variance();
        if (variance > 0.0) {
            double cov = 0.0;
            for (std::size_t i = 0; i + 1 < means.size(); ++i) {
                cov += (means[i] - estimates[m].mean) * (means[i + 1] - estimates[m].mean);
            }
            cov /= static_cast<double>(means.size() - 1);
            estimates[m].lag1_autocorrelation = cov / variance;
        }
    }
    return estimates;
}

std::vector<BatchEstimate> batch_means(const Simulator& simulator,
                                       const BatchOptions& options) {
    DPMA_SPAN("sim.batch_means", "sim");
    return batch_means_impl(simulator, options);
}

std::string convergence_json(const std::vector<BatchEstimate>& estimates,
                             const std::vector<std::string>& names) {
    DPMA_REQUIRE(estimates.size() == names.size(),
                 "convergence_json: one name per estimate required");
    std::string out = "{\"simulator\": {";
    for (std::size_t m = 0; m < estimates.size(); ++m) {
        const BatchEstimate& e = estimates[m];
        if (m > 0) out += ", ";
        out += obs::json_quote(names[m]) +
               ": {\"mean\": " + obs::json_number(e.mean) +
               ", \"half_width\": " + obs::json_number(e.half_width) +
               ", \"lag1_autocorrelation\": " +
               obs::json_number(e.lag1_autocorrelation) +
               ", \"half_width_trajectory\": [";
        for (std::size_t k = 0; k < e.cumulative_half_widths.size(); ++k) {
            if (k > 0) out += ", ";
            out += obs::json_number(e.cumulative_half_widths[k]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

}  // namespace dpma::sim
