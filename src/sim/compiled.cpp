#include "sim/compiled.hpp"

#include <limits>
#include <string>
#include <variant>

#include "core/error.hpp"

namespace dpma::sim {
namespace {

Dist dist_of(const lts::Rate& rate) {
    if (const auto* exp_rate = std::get_if<lts::RateExp>(&rate)) {
        return Dist::exponential(exp_rate->rate);
    }
    if (const auto* gen = std::get_if<lts::RateGeneral>(&rate)) {
        return gen->dist;
    }
    throw ModelError("transition without a timed rate reached the scheduler");
}

/// Bucket count of the retired scheduler's clock maps.  libstdc++ grows a
/// fresh unordered_map from 1 bucket to 13 on the first insert and keeps 13
/// for up to 13 elements; clear() preserves the bucket array, so every
/// scheduling round inserted into a 13-bucket table.
constexpr std::size_t kClockBuckets = 13;

/// Replays libstdc++'s _Hashtable iteration order for distinct keys
/// emplaced in the given order into an empty 13-bucket map (identity hash):
/// all nodes live on one global forward list; inserting into an empty
/// bucket pushes the node to the *front* of that list, inserting into a
/// non-empty bucket places the node immediately before the bucket's current
/// first node (which it replaces as bucket head).  Verified against real
/// unordered_map iteration over randomized key sets, including maps reused
/// across clear() rounds.  Returns positions into `keys` in iteration
/// order.
/// \p order receives positions into \p keys in iteration order; \p n must
/// be <= kClockBuckets.  Allocation-free (called once per state).
void map_iteration_order(const lts::ActionId* keys, std::uint32_t n,
                         std::uint32_t* order) {
    // Doubly-linked list over node indexes 0..n-1; -1 terminates.
    int next[kClockBuckets];
    int prev[kClockBuckets];
    int bucket_head[kClockBuckets];
    for (int& b : bucket_head) b = -1;
    int head = -1;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::size_t b = keys[i] % kClockBuckets;
        const int at = bucket_head[b] < 0 ? head : bucket_head[b];
        // Insert node i before `at` (at == -1: empty list).
        const int before = at < 0 ? -1 : prev[at];
        next[i] = at;
        prev[i] = before;
        if (at >= 0) prev[at] = static_cast<int>(i);
        if (before >= 0) {
            next[before] = static_cast<int>(i);
        } else {
            head = static_cast<int>(i);
        }
        bucket_head[b] = static_cast<int>(i);
    }
    std::uint32_t at = 0;
    for (int node = head; node >= 0; node = next[node]) {
        order[at++] = static_cast<std::uint32_t>(node);
    }
}

}  // namespace

CompiledModel compile_model(const adl::ComposedModel& model,
                            const std::vector<std::vector<double>>& state_reward_rate,
                            const std::vector<std::vector<double>>& action_reward) {
    CompiledModel compiled;
    const std::size_t num_states = model.graph.num_states();
    const std::size_t num_measures = state_reward_rate.size();
    compiled.num_actions = model.graph.actions()->size();
    compiled.states.resize(num_states);

    // The iteration-order replay models a fixed 13-bucket table; a state
    // with more timed labels would have grown the shared maps and changed
    // the order model globally.  No shipped spec comes close, but fall back
    // to first-occurrence tie order (still a valid GSMP tie-breaker, just a
    // different random choice than the retired scheduler) rather than
    // replay a wrong permutation.
    bool order_modeled = true;

    // Reserve against the transition count: candidates are one entry per
    // timed transition, labels/immediates at most that many.
    std::size_t num_transitions = 0;
    for (lts::StateId s = 0; s < num_states; ++s) {
        num_transitions += model.graph.out(s).size();
    }
    compiled.immediates.reserve(num_transitions / 4 + 8);
    compiled.timed.reserve(num_transitions / 2 + 8);
    compiled.targets.reserve(num_transitions);
    compiled.tie_order.reserve(num_transitions / 2 + 8);
    compiled.state_rewards.reserve(num_states);

    std::vector<lts::ActionId> labels;     // scratch: per-state timed labels
    std::vector<std::uint32_t> label_pos;  // scratch: label -> timed index
    labels.reserve(64);
    label_pos.reserve(64);
    bool all_exponential = true;
    for (lts::StateId s = 0; s < num_states; ++s) {
        CompiledModel::StateInfo& info = compiled.states[s];
        const auto out = model.graph.out(s);

        // Immediates, maximal progress: same two-pass scan (and the same
        // floating-point total) as the reference chooser.
        int best_priority = std::numeric_limits<int>::min();
        double total_weight = 0.0;
        bool has_immediate = false;
        for (const lts::Transition& t : out) {
            if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
                has_immediate = true;
                if (imm->priority > best_priority) {
                    best_priority = imm->priority;
                    total_weight = 0.0;
                }
                if (imm->priority == best_priority) total_weight += imm->weight;
            }
        }
        if (has_immediate && total_weight <= 0.0) {
            throw ModelError(
                "state " + std::to_string(s) +
                " has immediate transitions whose best-priority weights sum to " +
                std::to_string(total_weight) +
                " <= 0: the choice distribution is undefined (the retired "
                "scheduler silently fell through to timed scheduling)");
        }
        info.imm_begin = static_cast<std::uint32_t>(compiled.immediates.size());
        if (has_immediate) {
            for (const lts::Transition& t : out) {
                if (const auto* imm = std::get_if<lts::RateImmediate>(&t.rate)) {
                    if (imm->priority != best_priority || imm->weight <= 0.0) continue;
                    compiled.immediates.push_back(
                        CompiledModel::ImmediateCandidate{imm->weight, t.action, t.target});
                }
            }
            info.imm_total_weight = total_weight;
        }
        info.imm_end = static_cast<std::uint32_t>(compiled.immediates.size());

        // Timed labels — only reachable by the scheduler when the state has
        // no immediates (maximal progress always preempts).
        info.timed_begin = static_cast<std::uint32_t>(compiled.timed.size());
        if (!has_immediate) {
            labels.clear();
            for (const lts::Transition& t : out) {
                std::uint32_t li = std::numeric_limits<std::uint32_t>::max();
                for (std::uint32_t k = 0; k < labels.size(); ++k) {
                    if (labels[k] == t.action) {
                        li = label_pos[k];
                        break;
                    }
                }
                if (li == std::numeric_limits<std::uint32_t>::max()) {
                    // First occurrence: the shared clock samples *this*
                    // transition's distribution (as the reference did).
                    labels.push_back(t.action);
                    label_pos.resize(labels.size());
                    label_pos[labels.size() - 1] =
                        static_cast<std::uint32_t>(compiled.timed.size());
                    CompiledModel::TimedLabel tl;
                    tl.dist = dist_of(t.rate);
                    tl.action = t.action;
                    compiled.timed.push_back(tl);
                    if (tl.dist.kind() != DistKind::Exponential) all_exponential = false;
                }
            }
            // Candidate target groups, per label, in out-transition order.
            for (std::uint32_t k = 0; k < labels.size(); ++k) {
                CompiledModel::TimedLabel& tl = compiled.timed[label_pos[k]];
                tl.cand_begin = static_cast<std::uint32_t>(compiled.targets.size());
                for (const lts::Transition& t : out) {
                    if (t.action == labels[k]) compiled.targets.push_back(t.target);
                }
                tl.cand_end = static_cast<std::uint32_t>(compiled.targets.size());
            }
            // Tie-scan permutation (offsets within this state's label range).
            if (labels.size() > kClockBuckets) order_modeled = false;
            if (order_modeled && labels.size() > 1) {
                std::uint32_t order[kClockBuckets];
                map_iteration_order(labels.data(),
                                    static_cast<std::uint32_t>(labels.size()), order);
                for (std::uint32_t k = 0; k < labels.size(); ++k) {
                    compiled.tie_order.push_back(order[k]);
                }
            } else {
                for (std::uint32_t k = 0; k < labels.size(); ++k) {
                    compiled.tie_order.push_back(k);
                }
            }
        }
        info.timed_end = static_cast<std::uint32_t>(compiled.timed.size());

        // Sparse state rewards, measure-ascending (the dense loop's order).
        info.reward_begin = static_cast<std::uint32_t>(compiled.state_rewards.size());
        for (std::uint32_t m = 0; m < num_measures; ++m) {
            const double rate = state_reward_rate[m][s];
            if (rate != 0.0) {
                compiled.state_rewards.push_back(CompiledModel::RewardEntry{m, rate});
            }
        }
        info.reward_end = static_cast<std::uint32_t>(compiled.state_rewards.size());
    }
    // If a late state broke the order model, earlier states may already
    // carry replayed permutations — rebuild them as first-occurrence.
    if (!order_modeled) {
        std::size_t at = 0;
        for (const CompiledModel::StateInfo& info : compiled.states) {
            for (std::uint32_t k = 0; k < info.timed_end - info.timed_begin; ++k) {
                compiled.tie_order[at++] = k;
            }
        }
    }

    // Sparse action rewards, grouped per label.
    compiled.action_reward_begin.resize(compiled.num_actions + 1, 0);
    for (std::uint32_t a = 0; a < compiled.num_actions; ++a) {
        compiled.action_reward_begin[a] =
            static_cast<std::uint32_t>(compiled.action_rewards.size());
        for (std::uint32_t m = 0; m < num_measures; ++m) {
            const double reward = action_reward[m][a];
            if (reward != 0.0) {
                compiled.action_rewards.push_back(CompiledModel::RewardEntry{m, reward});
            }
        }
    }
    compiled.action_reward_begin[compiled.num_actions] =
        static_cast<std::uint32_t>(compiled.action_rewards.size());

    // Markov fast path: total exit rate + cumulative successor table.
    compiled.all_exponential = all_exponential;
    if (all_exponential) {
        for (CompiledModel::StateInfo& info : compiled.states) {
            info.fast_begin = static_cast<std::uint32_t>(compiled.fast.size());
            double exit_rate = 0.0;
            double cum = 0.0;
            for (std::uint32_t li = info.timed_begin; li < info.timed_end; ++li) {
                const CompiledModel::TimedLabel& tl = compiled.timed[li];
                exit_rate += tl.dist.a();
                const double share =
                    tl.dist.a() / static_cast<double>(tl.cand_end - tl.cand_begin);
                for (std::uint32_t c = tl.cand_begin; c < tl.cand_end; ++c) {
                    cum += share;
                    compiled.fast.push_back(
                        CompiledModel::FastSuccessor{cum, tl.action, compiled.targets[c]});
                }
            }
            info.exit_rate = exit_rate;
            info.fast_end = static_cast<std::uint32_t>(compiled.fast.size());
        }
    }
    return compiled;
}

}  // namespace dpma::sim
