#pragma once

/// \file compiled.hpp
/// Frozen per-state scheduler tables for the GSMP simulator.
///
/// The simulator's hot loop used to interrogate the composed graph on every
/// event: a two-pass variant scan over the out-transitions to resolve the
/// maximal-progress immediate choice, a `dist_of` variant dispatch per clock
/// sample, an `unordered_map<ActionId,double>` clear/emplace/swap per timed
/// round, and a full sweep over *all* measures per residence interval.  All
/// of that is a pure function of the model and the measure list, so the
/// constructor now compiles it once into flat arrays:
///
///  * per state, the best-priority immediate candidates (weight > 0, in
///    out-transition order) together with the reference implementation's
///    floating-point total weight, so the choice is one uniform draw plus a
///    short cumulative scan;
///  * per state, the timed labels in first-occurrence order with their
///    pre-resolved `Dist` and the contiguous group of candidate targets
///    (same-label transitions share a clock; the firing picks uniformly
///    within the group);
///  * per state, the *tie-scan permutation*: the order in which the retired
///    scheduler's `unordered_map` iterated the clocks.  Tie resolution
///    draws `rng.below(k)` per minimal clock *in encounter order*, so the
///    scan order is part of the sampled process; the permutation replays
///    libstdc++'s hashtable iteration order (see compiled.cpp) and keeps
///    compiled traces bit-identical to the reference even through ties;
///  * sparse (measure, value) reward lists per state and per action label,
///    ordered by measure index — the same KahanSum accumulation order as
///    the dense loops they replace;
///  * when every timed rate in the model is exponential, the per-state
///    total exit rate and a cumulative-rate successor table: the Markov
///    fast path samples the sojourn from Exp(exit_rate) and picks the
///    successor with one uniform draw, never touching clock memory
///    (equal in law by memorylessness, not samplewise — SimOptions::
///    markov_fast_path turns it off to recover the clocked stream).
///
/// Construction also diagnoses the silent `choose_immediate` edge case: a
/// state whose best-priority immediates all have weight <= 0 used to fall
/// through to timed scheduling, simulating a semantically different
/// process; it is now a ModelError.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adl/compose.hpp"
#include "core/dist.hpp"

namespace dpma::sim {

struct CompiledModel {
    /// One best-priority immediate candidate (weight > 0), in
    /// out-transition order.
    struct ImmediateCandidate {
        double weight = 0.0;
        lts::ActionId action = 0;
        lts::StateId target = 0;
    };

    /// One timed label of a state (first-occurrence order).  Candidates are
    /// targets[cand_begin, cand_end), in out-transition order.
    struct TimedLabel {
        Dist dist = Dist::deterministic(0.0);
        lts::ActionId action = 0;
        std::uint32_t cand_begin = 0;
        std::uint32_t cand_end = 0;
    };

    /// One nonzero reward entry of a sparse per-state / per-action list.
    struct RewardEntry {
        std::uint32_t measure = 0;
        double value = 0.0;
    };

    /// Fast-path successor: cumulative rate mass up to and including this
    /// candidate (label rate split uniformly over its candidates).
    struct FastSuccessor {
        double cum = 0.0;
        lts::ActionId action = 0;
        lts::StateId target = 0;
    };

    struct StateInfo {
        std::uint32_t imm_begin = 0, imm_end = 0;        ///< into immediates
        std::uint32_t timed_begin = 0, timed_end = 0;    ///< into timed / tie_order
        std::uint32_t reward_begin = 0, reward_end = 0;  ///< into state_rewards
        std::uint32_t fast_begin = 0, fast_end = 0;      ///< into fast
        /// Reference-order sum of the best-priority immediate weights (the
        /// exact double the retired scanner multiplied the uniform by).
        double imm_total_weight = 0.0;
        /// Fast path only: total exponential exit rate of the state.
        double exit_rate = 0.0;
    };

    std::vector<StateInfo> states;
    std::vector<ImmediateCandidate> immediates;
    std::vector<TimedLabel> timed;
    /// Candidate targets, grouped per timed label.
    std::vector<lts::StateId> targets;
    /// Parallel to `timed`: tie_order[timed_begin + k] is the offset (from
    /// timed_begin) of the k-th label in the reference tie-scan order.
    std::vector<std::uint32_t> tie_order;
    std::vector<RewardEntry> state_rewards;
    /// Per-action sparse rewards: action_rewards[action_reward_begin[a],
    /// action_reward_begin[a + 1]).
    std::vector<RewardEntry> action_rewards;
    std::vector<std::uint32_t> action_reward_begin;
    /// Fast-path successors, grouped per state (empty unless
    /// all_exponential).
    std::vector<FastSuccessor> fast;
    std::size_t num_actions = 0;
    /// Every timed rate reachable by the scheduler is exponential: the
    /// Markov fast path applies.
    bool all_exponential = false;
};

/// Builds the tables from the composed graph and the dense reward matrices
/// (state_reward_rate[m][s], action_reward[m][a]).  Throws ModelError when a
/// state's best-priority immediates sum to a non-positive weight.
[[nodiscard]] CompiledModel compile_model(
    const adl::ComposedModel& model,
    const std::vector<std::vector<double>>& state_reward_rate,
    const std::vector<std::vector<double>>& action_reward);

}  // namespace dpma::sim
