#pragma once

/// \file gsmp.hpp
/// Discrete-event simulation of a composed stochastic model as a generalised
/// semi-Markov process (GSMP).
///
/// Semantics:
///  * a clock is associated with every *enabled* timed transition, keyed by
///    its action label; clocks keep their remaining time while the label
///    stays continuously enabled (enabling memory) and are resampled when
///    the label becomes enabled anew — with exponential distributions this
///    coincides with the CTMC semantics by memorylessness, which is exactly
///    the cross-validation argument of Sect. 5.1 of the paper;
///  * immediate transitions pre-empt timed ones (maximal progress) and are
///    resolved by priority, then weight-proportional random choice;
///  * measures accumulate over an observation window [warmup, warmup+horizon]:
///    STATE_REWARD clauses integrate reward over time and are reported as
///    time averages; TRANS_REWARD clauses count weighted firings and are
///    reported as frequencies — the same meaning their CTMC evaluation has.
///
/// Besides steady-state estimation (run / simulate_replications) the
/// simulator answers first-passage questions on accumulated rewards
/// (run_until): "how long until the battery has spent E units of energy?" —
/// the battery-lifetime question behind the paper's setting.

#include <cstdint>
#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "sim/compiled.hpp"
#include "sim/rng.hpp"

namespace dpma::sim {

struct BatchOptions;
struct BatchEstimate;

struct SimOptions {
    double warmup = 0.0;    ///< time discarded before measuring
    double horizon = 0.0;   ///< measured time span (must be > 0)
    std::uint64_t seed = 1;
    /// Guard against immediate-action livelock.
    std::uint64_t max_immediate_burst = 1'000'000;
    /// Use the all-exponential fast path when the model qualifies (see
    /// Simulator::fast_path_eligible).  Identical in law but not samplewise
    /// to the clocked scheduler; turn off to reproduce the clocked stream
    /// (the differential tests do).
    bool markov_fast_path = true;
};

/// One simulation run's estimate of each measure (index-aligned with the
/// measure list passed in).
struct RunResult {
    std::vector<double> values;
    std::uint64_t events = 0;  ///< transitions fired inside the window
};

/// One recorded firing (see Simulator::run's trace parameter).
struct TraceEvent {
    double time;
    lts::ActionId action;
    lts::StateId target;  ///< state entered by the firing
};

/// Outcome of a first-passage (run_until) simulation.
struct DepletionResult {
    double time = 0.0;      ///< when the threshold was crossed, or the horizon
    bool depleted = false;  ///< threshold reached before the horizon?
    /// Raw accumulated totals of every measure at `time` (not time-averaged).
    std::vector<double> totals;
};

/// Observes a simulated trajectory as the sequence of its constant-state
/// residence intervals — the coupling point for continuous side models that
/// integrate something over the trajectory (a battery draining at the
/// current state's power, a thermal model, ...).  Immediate firings take
/// zero time and are not reported; the final (horizon-truncated) interval
/// is.  The observer may end the run early by returning a stop instant
/// (e.g. the exact battery-depletion crossing inside the interval).
class TrajectoryObserver {
public:
    virtual ~TrajectoryObserver() = default;

    /// One residence interval [from, to) spent in composed state \p state.
    /// Return a stop time within [from, to] to end the run there, or any
    /// negative value to continue.
    virtual double residence(lts::StateId state, double from, double to) = 0;
};

/// Outcome of an observed (run_observed) simulation.
struct ObservedResult {
    double time = 0.0;     ///< observer stop time, or the horizon
    bool stopped = false;  ///< did the observer end the run?
    /// Raw accumulated totals of every measure at `time` (not time-averaged).
    std::vector<double> totals;
    std::uint64_t events = 0;  ///< transitions fired before `time`
};

/// GSMP simulator bound to a composed model and a list of measures.
/// Per-state and per-action reward rates are precomputed once, so repeated
/// runs are cheap.
class Simulator {
public:
    Simulator(const adl::ComposedModel& model, std::vector<adl::Measure> measures);

    /// Runs one replication.  When \p trace is non-null, every firing inside
    /// the observation window is appended to it (time-ordered).
    [[nodiscard]] RunResult run(const SimOptions& options,
                                std::vector<TraceEvent>* trace = nullptr) const;

    /// Runs from time 0 (no warmup) until the accumulated raw total of
    /// measure \p measure_index reaches \p threshold, or until the horizon.
    /// State-reward crossings are located exactly (reward accrues linearly
    /// within a state); transition rewards cross at the firing instant.
    [[nodiscard]] DepletionResult run_until(std::size_t measure_index, double threshold,
                                            const SimOptions& options) const;

    /// Runs from time 0 (no warmup), reporting every residence interval to
    /// \p observer, until the observer stops the run or the horizon is
    /// reached.  Measure totals in the result are accumulated exactly up to
    /// the stop instant (state rewards accrue linearly within a state).
    [[nodiscard]] ObservedResult run_observed(const SimOptions& options,
                                              TrajectoryObserver& observer) const;

    [[nodiscard]] const std::vector<adl::Measure>& measures() const noexcept {
        return measures_;
    }

    /// Every timed rate the scheduler can reach is exponential, so runs with
    /// SimOptions::markov_fast_path take the clock-free CTMC path.
    [[nodiscard]] bool fast_path_eligible() const noexcept {
        return compiled_.all_exponential;
    }

    /// Total STATE_REWARD accrual rate of measure \p measure_index in every
    /// composed state — e.g. the power the battery sees per state.  Indexed
    /// by composed-graph StateId.
    [[nodiscard]] const std::vector<double>& state_reward_rates(
        std::size_t measure_index) const {
        return state_reward_rate_.at(measure_index);
    }

private:
    struct StopSpec {
        std::size_t measure;
        double threshold;
    };

    /// Optional per-batch accumulation (batch-means estimation): raw totals
    /// of every measure per batch of length `length`, starting at the end of
    /// the warmup.  Residence intervals spanning batch boundaries are split.
    struct BatchSink {
        double length = 0.0;
        /// totals[batch][measure]
        std::vector<std::vector<double>> totals;
    };

    /// \p stop and \p observer are mutually exclusive ways to end the run
    /// early; the public entry points never combine them.
    RunResult run_impl(const SimOptions& options, const StopSpec* stop,
                       std::vector<TraceEvent>* trace, double* stop_time,
                       bool* depleted, BatchSink* batches = nullptr,
                       TrajectoryObserver* observer = nullptr) const;

    friend std::vector<BatchEstimate> batch_means_impl(const Simulator&,
                                                       const BatchOptions&);

    const adl::ComposedModel& model_;
    std::vector<adl::Measure> measures_;
    /// Frozen per-state scheduler tables (sim/compiled.hpp), built once.
    CompiledModel compiled_;
    /// state_reward_rate_[m][s]: total STATE_REWARD accrual rate of measure
    /// m while in composed state s.
    std::vector<std::vector<double>> state_reward_rate_;
    /// action_reward_[m][a]: total TRANS_REWARD of measure m per firing of
    /// action label a.
    std::vector<std::vector<double>> action_reward_;
};

/// Aggregate of independent replications.
struct Estimate {
    double mean = 0.0;
    double half_width = 0.0;  ///< half-width of the two-sided CI
    std::vector<double> samples;
};

/// Runs \p replications independent runs (seeds derived from options.seed)
/// and returns one Estimate per measure at the given confidence level.
[[nodiscard]] std::vector<Estimate> simulate_replications(const Simulator& simulator,
                                                          const SimOptions& options,
                                                          int replications,
                                                          double confidence);

/// Repeated run_until: mean and CI of the first-passage time (e.g. battery
/// lifetime at a given capacity).
[[nodiscard]] Estimate simulate_depletion(const Simulator& simulator,
                                          std::size_t measure_index, double threshold,
                                          const SimOptions& options, int replications,
                                          double confidence);

}  // namespace dpma::sim
