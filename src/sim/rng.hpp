#pragma once

/// \file rng.hpp
/// Random number generation for the simulator.  The engine is std::mt19937_64
/// (its output sequence is fully specified by the standard, so runs are
/// reproducible given a seed); all variate transformations are implemented
/// here rather than with std:: distributions, whose algorithms are
/// implementation-defined.

#include <cstdint>
#include <random>

#include "core/dist.hpp"

namespace dpma::sim {

/// Reproducible random source.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [0, 1) with 53 random bits.
    [[nodiscard]] double uniform01() {
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [0, 1) bounded away from 0 (safe for log()).
    [[nodiscard]] double uniform01_open() {
        const double u = uniform01();
        return u > 0.0 ? u : 0x1.0p-53;
    }

    /// Uniform integer in [0, bound).
    [[nodiscard]] std::uint64_t below(std::uint64_t bound);

    /// Standard normal via Box–Muller.
    [[nodiscard]] double standard_normal();

    /// Draws a sample of \p dist (>= 0 by construction for every family;
    /// the Normal family is truncated at zero by resampling).
    [[nodiscard]] double sample(const Dist& dist);

    /// Derives an independent stream for replication \p index (splitmix64 of
    /// the base seed and the index).
    [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

private:
    std::mt19937_64 engine_;
};

}  // namespace dpma::sim
