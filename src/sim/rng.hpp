#pragma once

/// \file rng.hpp
/// Random number generation for the simulator.  The engine is std::mt19937_64
/// (its output sequence is fully specified by the standard, so runs are
/// reproducible given a seed); all variate transformations are implemented
/// here rather than with std:: distributions, whose algorithms are
/// implementation-defined.

#include <cmath>
#include <cstdint>
#include <random>

#include "core/dist.hpp"

namespace dpma::sim {

/// Reproducible random source.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [0, 1) with 53 random bits.
    [[nodiscard]] double uniform01() {
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /// Uniform in [0, 1) bounded away from 0 (safe for log()).
    [[nodiscard]] double uniform01_open() {
        const double u = uniform01();
        return u > 0.0 ? u : 0x1.0p-53;
    }

    /// Uniform integer in [0, bound).
    [[nodiscard]] std::uint64_t below(std::uint64_t bound);

    /// Standard normal via Box–Muller.
    [[nodiscard]] double standard_normal();

    /// Draws a sample of \p dist (>= 0 by construction for every family;
    /// the Normal family is truncated at zero by resampling).  The three
    /// families on the simulator's hot path are inline; the rest go through
    /// the out-of-line fallback.
    [[nodiscard]] double sample(const Dist& dist) {
        switch (dist.kind()) {
            case DistKind::Exponential:
                return -std::log(uniform01_open()) / dist.a();
            case DistKind::Deterministic:
                return dist.a();
            case DistKind::Uniform:
                return dist.a() + (dist.b() - dist.a()) * uniform01();
            default:
                return sample_rare(dist);
        }
    }

    /// Derives an independent stream for replication \p index (splitmix64 of
    /// the base seed and the index).
    [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

    /// Two-level split for parameter sweeps: the stream of replication
    /// \p replication of sweep point \p point.  Equals
    /// derive_seed(derive_seed(base, point), replication), i.e. exactly the
    /// seed a serial sweep would hand that replication — the experiment
    /// engine relies on this for jobs-count-independent results.
    [[nodiscard]] static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t point,
                                                   std::uint64_t replication);

private:
    /// Sampling for the distribution families not worth inlining.
    [[nodiscard]] double sample_rare(const Dist& dist);

    std::mt19937_64 engine_;
};

}  // namespace dpma::sim
