#include "bisim/hml.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dpma::bisim {
namespace {

void indent(std::ostringstream& out, int depth) {
    for (int i = 0; i < depth; ++i) out << "  ";
}

void print_tt(std::ostringstream& out, const FormulaPtr& f, int depth) {
    switch (f->kind) {
        case Formula::Kind::True:
            indent(out, depth);
            out << "TRUE";
            return;
        case Formula::Kind::Not:
            indent(out, depth);
            out << "NOT(\n";
            print_tt(out, f->children.at(0), depth + 1);
            out << '\n';
            indent(out, depth);
            out << ')';
            return;
        case Formula::Kind::And: {
            if (f->children.empty()) {
                indent(out, depth);
                out << "TRUE";
                return;
            }
            if (f->children.size() == 1) {
                print_tt(out, f->children.front(), depth);
                return;
            }
            indent(out, depth);
            out << "AND(\n";
            for (std::size_t i = 0; i < f->children.size(); ++i) {
                print_tt(out, f->children[i], depth + 1);
                out << (i + 1 < f->children.size() ? ";\n" : "\n");
            }
            indent(out, depth);
            out << ')';
            return;
        }
        case Formula::Kind::Diamond: {
            indent(out, depth);
            out << (f->weak ? "EXISTS_WEAK_TRANS(" : "EXISTS_TRANS(") << '\n';
            indent(out, depth + 1);
            if (f->label == "tau") {
                out << "TAU;\n";
            } else {
                out << "LABEL(" << f->label << ");\n";
            }
            indent(out, depth + 1);
            out << "REACHED_STATE_SAT(\n";
            print_tt(out, f->children.at(0), depth + 2);
            out << '\n';
            indent(out, depth + 1);
            out << ")\n";
            indent(out, depth);
            out << ')';
            return;
        }
    }
    throw Error("unknown formula kind");
}

void print_compact(std::ostringstream& out, const FormulaPtr& f) {
    switch (f->kind) {
        case Formula::Kind::True:
            out << "tt";
            return;
        case Formula::Kind::Not:
            out << "~(";
            print_compact(out, f->children.at(0));
            out << ')';
            return;
        case Formula::Kind::And:
            if (f->children.empty()) {
                out << "tt";
                return;
            }
            out << '(';
            for (std::size_t i = 0; i < f->children.size(); ++i) {
                if (i != 0) out << " & ";
                print_compact(out, f->children[i]);
            }
            out << ')';
            return;
        case Formula::Kind::Diamond:
            out << (f->weak ? "<<" : "<") << f->label << (f->weak ? ">>" : ">");
            print_compact(out, f->children.at(0));
            return;
    }
    throw Error("unknown formula kind");
}

}  // namespace

FormulaPtr hml_true() {
    static const FormulaPtr instance = std::make_shared<Formula>();
    return instance;
}

FormulaPtr hml_not(FormulaPtr sub) {
    DPMA_REQUIRE(sub != nullptr, "hml_not needs a subformula");
    // ~~phi == phi: keep diagnostics small.
    if (sub->kind == Formula::Kind::Not) return sub->children.front();
    auto node = std::make_shared<Formula>();
    node->kind = Formula::Kind::Not;
    node->children.push_back(std::move(sub));
    return node;
}

FormulaPtr hml_and(std::vector<FormulaPtr> subs) {
    // Drop TRUE and structurally duplicated conjuncts, collapse singletons.
    std::vector<FormulaPtr> kept;
    std::vector<std::string> seen;
    for (auto& s : subs) {
        DPMA_REQUIRE(s != nullptr, "hml_and needs subformulae");
        if (s->kind == Formula::Kind::True) continue;
        std::string key = to_compact(s);
        bool duplicate = false;
        for (const std::string& k : seen) {
            if (k == key) {
                duplicate = true;
                break;
            }
        }
        if (duplicate) continue;
        seen.push_back(std::move(key));
        kept.push_back(std::move(s));
    }
    if (kept.empty()) return hml_true();
    if (kept.size() == 1) return kept.front();
    auto node = std::make_shared<Formula>();
    node->kind = Formula::Kind::And;
    node->children = std::move(kept);
    return node;
}

FormulaPtr hml_diamond(std::string label, bool weak, FormulaPtr sub) {
    DPMA_REQUIRE(sub != nullptr, "hml_diamond needs a subformula");
    auto node = std::make_shared<Formula>();
    node->kind = Formula::Kind::Diamond;
    node->label = std::move(label);
    node->weak = weak;
    node->children.push_back(std::move(sub));
    return node;
}

std::string to_two_towers(const FormulaPtr& formula) {
    DPMA_REQUIRE(formula != nullptr, "null formula");
    std::ostringstream out;
    print_tt(out, formula, 0);
    return out.str();
}

std::string to_compact(const FormulaPtr& formula) {
    DPMA_REQUIRE(formula != nullptr, "null formula");
    std::ostringstream out;
    print_compact(out, formula);
    return out.str();
}

std::size_t formula_size(const FormulaPtr& formula) {
    if (formula == nullptr) return 0;
    std::size_t n = 1;
    for (const auto& c : formula->children) n += formula_size(c);
    return n;
}

}  // namespace dpma::bisim
