#pragma once

/// \file partition.hpp
/// Signature-based partition refinement for strong bisimulation, recording
/// the per-round partitions.  The round history is what makes it possible to
/// construct distinguishing formulae with guaranteed termination
/// (Cleaveland, "On automatically explaining bisimulation inequivalence").

#include <cstdint>
#include <vector>

#include "lts/lts.hpp"

namespace dpma::bisim {

using BlockId = std::uint32_t;

/// Outcome of the refinement: rounds[0] is the trivial partition (all states
/// in block 0); rounds.back() is the stable partition, i.e. strong
/// bisimilarity on the input system.  Each later round refines the previous
/// one (blocks only ever split).
struct RefinementResult {
    std::vector<std::vector<BlockId>> rounds;

    [[nodiscard]] const std::vector<BlockId>& final_blocks() const {
        return rounds.back();
    }

    [[nodiscard]] bool same_block(lts::StateId a, lts::StateId b) const {
        return final_blocks()[a] == final_blocks()[b];
    }

    /// First round index at which \p a and \p b land in different blocks;
    /// returns 0 when they are never separated (i.e. bisimilar).
    [[nodiscard]] std::size_t separation_round(lts::StateId a, lts::StateId b) const;
};

/// Runs signature refinement to a fixpoint.  Rates are ignored: this is the
/// functional notion of bisimulation used by the noninterference check.
///
/// The refiner works incrementally on the CSR view of \p model: after the
/// first round only *dirty* states — those with a successor whose block
/// changed in the previous round — are re-signed, into a preallocated
/// signature arena.  \p jobs > 1 computes the per-round signatures on a
/// thread pool; block splitting and numbering stay serial (new sub-blocks
/// numbered by first-state occurrence), so the result is bit-identical for
/// every jobs value.  jobs == 0 uses exp::default_jobs() (DPMA_JOBS).
[[nodiscard]] RefinementResult refine_strong(const lts::Lts& model, std::size_t jobs);

/// Same, with jobs == 0 (the DPMA_JOBS / hardware default).
[[nodiscard]] RefinementResult refine_strong(const lts::Lts& model);

/// Quotient of \p model by its strong-bisimilarity partition: one state per
/// block, transitions deduplicated.  Keeps the block of the initial state as
/// the new initial state.
[[nodiscard]] lts::Lts quotient(const lts::Lts& model, const RefinementResult& refinement);

}  // namespace dpma::bisim
