#include "bisim/trace_equiv.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "core/error.hpp"
#include "lts/ops.hpp"

namespace dpma::bisim {
namespace {

/// Sorted, deduplicated state set (canonical form for hashing).
using StateSet = std::vector<lts::StateId>;

void canonicalise(StateSet& set) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
}

/// Weak determinisation helper over a tau-collapsed system: closures are
/// descendant sets in the condensation DAG, memoised per state.
class WeakStepper {
public:
    explicit WeakStepper(const lts::Lts& model) : model_(model) {}

    /// tau* closure of a single state (reflexive).
    const StateSet& closure(lts::StateId state) {
        auto [it, inserted] = closures_.try_emplace(state);
        if (!inserted) return it->second;
        const lts::ActionId tau = model_.actions()->tau();
        std::deque<lts::StateId> queue{state};
        std::unordered_set<lts::StateId> seen{state};
        while (!queue.empty()) {
            const lts::StateId u = queue.front();
            queue.pop_front();
            it->second.push_back(u);
            for (const lts::Transition& t : model_.out(u)) {
                if (t.action == tau && seen.insert(t.target).second) {
                    queue.push_back(t.target);
                }
            }
        }
        canonicalise(it->second);
        return it->second;
    }

    StateSet closure_of(const StateSet& states) {
        StateSet out;
        for (lts::StateId s : states) {
            const StateSet& c = closure(s);
            out.insert(out.end(), c.begin(), c.end());
        }
        canonicalise(out);
        return out;
    }

    /// Weak move: closure(a-successors(closure(states))).  `states` must
    /// already be closed.
    StateSet weak_move(const StateSet& states, lts::ActionId action) {
        StateSet direct;
        for (lts::StateId s : states) {
            for (const lts::Transition& t : model_.out(s)) {
                if (t.action == action) direct.push_back(t.target);
            }
        }
        canonicalise(direct);
        return closure_of(direct);
    }

    /// Visible actions enabled (weakly) from a closed set.
    std::vector<lts::ActionId> enabled_visible(const StateSet& states) {
        const lts::ActionId tau = model_.actions()->tau();
        std::set<lts::ActionId> out;
        for (lts::StateId s : states) {
            for (const lts::Transition& t : model_.out(s)) {
                if (t.action != tau) out.insert(t.action);
            }
        }
        return {out.begin(), out.end()};
    }

private:
    const lts::Lts& model_;
    std::map<lts::StateId, StateSet> closures_;
};

}  // namespace

TraceEquivalenceResult weakly_trace_equivalent(const lts::Lts& lhs, const lts::Lts& rhs,
                                               std::size_t max_pairs) {
    DPMA_REQUIRE(lhs.initial() != lts::kNoState && rhs.initial() != lts::kNoState,
                 "trace equivalence needs rooted systems");
    // Merge onto a common action table, then collapse tau-SCCs so closures
    // are small.
    const lts::UnionResult merged = lts::disjoint_union(lhs, rhs);
    const lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(merged.combined);
    const lts::Lts& system = collapsed.collapsed;
    WeakStepper stepper(system);

    struct Pair {
        StateSet left;
        StateSet right;
    };
    // Parent pointers to reconstruct the shortest distinguishing trace.
    struct Visit {
        Pair pair;
        std::size_t parent;      // index into `visits`
        lts::ActionId action;    // action taken from the parent
    };
    std::vector<Visit> visits;
    std::map<std::pair<StateSet, StateSet>, char> seen;
    std::deque<std::size_t> queue;

    const auto push = [&](Pair pair, std::size_t parent, lts::ActionId action) {
        auto key = std::make_pair(pair.left, pair.right);
        if (!seen.emplace(std::move(key), 1).second) return;
        if (visits.size() >= max_pairs) {
            throw NumericalError("trace-equivalence subset construction exceeded " +
                                 std::to_string(max_pairs) + " pairs");
        }
        visits.push_back(Visit{std::move(pair), parent, kNoSymbol});
        visits.back().action = action;
        queue.push_back(visits.size() - 1);
    };

    const auto trace_to = [&](std::size_t index, lts::ActionId last) {
        std::vector<std::string> trace{system.actions()->name(last)};
        for (std::size_t i = index; visits[i].action != kNoSymbol; i = visits[i].parent) {
            trace.push_back(system.actions()->name(visits[i].action));
        }
        std::reverse(trace.begin(), trace.end());
        return trace;
    };

    TraceEquivalenceResult result;
    push(Pair{stepper.closure(collapsed.representative_of[merged.initial_lhs]),
              stepper.closure(collapsed.representative_of[merged.initial_rhs])},
         0, kNoSymbol);

    while (!queue.empty()) {
        const std::size_t index = queue.front();
        queue.pop_front();
        const Pair pair = visits[index].pair;  // copy: visits may reallocate

        std::set<lts::ActionId> actions;
        for (lts::ActionId a : stepper.enabled_visible(pair.left)) actions.insert(a);
        for (lts::ActionId a : stepper.enabled_visible(pair.right)) actions.insert(a);

        for (lts::ActionId action : actions) {
            StateSet next_left = stepper.weak_move(pair.left, action);
            StateSet next_right = stepper.weak_move(pair.right, action);
            const bool left_can = !next_left.empty();
            const bool right_can = !next_right.empty();
            if (left_can != right_can) {
                result.equivalent = false;
                result.lhs_has_trace = left_can;
                result.distinguishing_trace = trace_to(index, action);
                result.explored_pairs = visits.size();
                return result;
            }
            if (left_can) {
                push(Pair{std::move(next_left), std::move(next_right)}, index, action);
            }
        }
    }
    result.equivalent = true;
    result.explored_pairs = visits.size();
    return result;
}

}  // namespace dpma::bisim
