#pragma once

/// \file trace_equiv.hpp
/// Weak (observational) trace equivalence: two systems are equivalent when
/// they exhibit the same set of finite sequences of visible actions,
/// ignoring tau.  This is the equivalence underlying the *trace-based*
/// noninterference properties (NNI/SNNI) of the Focardi–Gorrieri
/// classification the paper cites [7].  It is strictly coarser than weak
/// bisimilarity: in particular it cannot see deadlocks — which is exactly
/// why the simplified rpc system of Sect. 2.3 passes the trace-based check
/// while failing the bisimulation-based one (see the Sect. 3 bench).
///
/// Decided by subset construction over the weak transition relation and a
/// BFS over pairs of determinised state sets (prefix-closed languages are
/// equal iff no reachable pair enables a visible action on one side only).

#include <string>
#include <vector>

#include "lts/lts.hpp"

namespace dpma::bisim {

struct TraceEquivalenceResult {
    bool equivalent = false;
    /// When not equivalent: a shortest distinguishing trace (visible action
    /// names) and which side can perform it.
    std::vector<std::string> distinguishing_trace;
    bool lhs_has_trace = false;
    /// Determinised pairs explored (diagnostic).
    std::size_t explored_pairs = 0;
};

/// Checks weak trace equivalence of the initial states.  Throws
/// NumericalError when the subset construction exceeds \p max_pairs pairs
/// (exponential in the worst case; the methodology's models are far below).
[[nodiscard]] TraceEquivalenceResult weakly_trace_equivalent(
    const lts::Lts& lhs, const lts::Lts& rhs, std::size_t max_pairs = 1u << 20);

}  // namespace dpma::bisim
