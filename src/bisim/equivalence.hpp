#pragma once

/// \file equivalence.hpp
/// Strong and weak bisimulation equivalence checking of two rooted LTSs,
/// with distinguishing-formula generation on failure.  Weak bisimilarity is
/// decided as strong bisimilarity of the weak saturations (tau-reflexive
/// closure), the textbook reduction also used by TwoTowers.

#include <string>

#include "bisim/hml.hpp"
#include "bisim/partition.hpp"
#include "lts/lts.hpp"

namespace dpma::bisim {

/// Outcome of an equivalence check.
struct EquivalenceResult {
    bool equivalent = false;
    /// Distinguishing formula satisfied by the *first* system's initial state
    /// but not by the second's; null when equivalent.
    FormulaPtr distinguishing;
};

/// Checks strong bisimilarity of the initial states of \p lhs and \p rhs.
[[nodiscard]] EquivalenceResult strongly_bisimilar(const lts::Lts& lhs, const lts::Lts& rhs);

/// Checks weak bisimilarity of the initial states of \p lhs and \p rhs.
/// A returned distinguishing formula uses weak modalities.
[[nodiscard]] EquivalenceResult weakly_bisimilar(const lts::Lts& lhs, const lts::Lts& rhs);

/// Distinguishing formula for two non-bisimilar states of one system, given
/// a completed refinement.  \p weak_modality only affects printing.
/// Precondition: the states are in different final blocks.
[[nodiscard]] FormulaPtr distinguishing_formula(const lts::Lts& model,
                                                const RefinementResult& refinement,
                                                lts::StateId lhs, lts::StateId rhs,
                                                bool weak_modality);

}  // namespace dpma::bisim
