#pragma once

/// \file hml_check.hpp
/// A small HML model checker.  Its main use is verifying diagnostics: a
/// distinguishing formula produced by the equivalence checker must be
/// satisfied by the first system's initial state and refuted by the
/// second's.  The property tests of the library rely on this.

#include "bisim/hml.hpp"
#include "lts/lts.hpp"

namespace dpma::bisim {

/// Evaluates \p formula at \p state.  Diamonds marked weak are interpreted
/// over the weak transition relation (tau* a tau* for visible labels, tau*
/// for "tau"); strong diamonds over single transitions.  A diamond whose
/// label does not occur in the system is simply unsatisfiable.
[[nodiscard]] bool satisfies(const lts::Lts& model, lts::StateId state,
                             const FormulaPtr& formula);

}  // namespace dpma::bisim
