#include "bisim/equivalence.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "lts/ops.hpp"
#include "obs/trace.hpp"

namespace dpma::bisim {
namespace {

/// Finds an action/block witness present in the round-(r-1) signature of
/// \p from but absent from the signature of \p other, together with the
/// concrete successor of \p from that realises it.
struct Witness {
    lts::ActionId action;
    lts::StateId successor;  // successor of `from` landing in the witness block
};

std::optional<Witness> find_witness(const lts::Lts& model,
                                    const std::vector<BlockId>& prev_blocks,
                                    lts::StateId from, lts::StateId other) {
    for (const lts::Transition& t : model.out(from)) {
        const BlockId target_block = prev_blocks[t.target];
        bool matched = false;
        for (const lts::Transition& u : model.out(other)) {
            if (u.action == t.action && prev_blocks[u.target] == target_block) {
                matched = true;
                break;
            }
        }
        if (!matched) return Witness{t.action, t.target};
    }
    return std::nullopt;
}

FormulaPtr distinguish(const lts::Lts& model, const RefinementResult& refinement,
                       lts::StateId lhs, lts::StateId rhs, bool weak_modality) {
    const std::size_t round = refinement.separation_round(lhs, rhs);
    DPMA_ASSERT(round >= 1, "distinguish called on equivalent states");
    const std::vector<BlockId>& prev = refinement.rounds[round - 1];

    if (auto witness = find_witness(model, prev, lhs, rhs)) {
        // lhs moves with `action` into block B; every same-action move of rhs
        // lands outside B, so each rhs-successor is separated from our
        // successor strictly earlier than `round` -- the recursion terminates.
        const BlockId target_block = prev[witness->successor];
        std::vector<FormulaPtr> conjuncts;
        for (const lts::Transition& u : model.out(rhs)) {
            if (u.action != witness->action) continue;
            DPMA_ASSERT(prev[u.target] != target_block, "witness not distinguishing");
            conjuncts.push_back(
                distinguish(model, refinement, witness->successor, u.target, weak_modality));
        }
        return hml_diamond(model.actions()->name(witness->action), weak_modality,
                           hml_and(std::move(conjuncts)));
    }

    // Symmetric case: rhs has the extra capability; negate its formula.
    auto witness = find_witness(model, prev, rhs, lhs);
    DPMA_ASSERT(witness.has_value(), "states separated but no witness found");
    const BlockId target_block = prev[witness->successor];
    std::vector<FormulaPtr> conjuncts;
    for (const lts::Transition& u : model.out(lhs)) {
        if (u.action != witness->action) continue;
        conjuncts.push_back(
            distinguish(model, refinement, witness->successor, u.target, weak_modality));
    }
    (void)target_block;
    return hml_not(hml_diamond(model.actions()->name(witness->action), weak_modality,
                               hml_and(std::move(conjuncts))));
}

EquivalenceResult check(const lts::Lts& lhs, const lts::Lts& rhs, bool weak) {
    DPMA_SPAN(weak ? "bisim.weak_check" : "bisim.strong_check", "bisim");
    DPMA_REQUIRE(lhs.initial() != lts::kNoState && rhs.initial() != lts::kNoState,
                 "equivalence check needs rooted systems");
    lts::UnionResult merged = lts::disjoint_union(lhs, rhs);
    lts::StateId init_lhs = merged.initial_lhs;
    lts::StateId init_rhs = merged.initial_rhs;

    lts::Lts system;
    if (weak) {
        // Collapsing tau-SCCs first is sound (mutually tau-reachable states
        // are weakly bisimilar) and keeps the saturation small even when
        // almost every action is hidden, as in the noninterference checks.
        lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(merged.combined);
        init_lhs = collapsed.representative_of[init_lhs];
        init_rhs = collapsed.representative_of[init_rhs];
        if (init_lhs == init_rhs) {
            return EquivalenceResult{true, nullptr};
        }
        system = lts::saturate(collapsed.collapsed);
    } else {
        system = std::move(merged.combined);
    }

    const RefinementResult refinement = refine_strong(system);
    EquivalenceResult result;
    result.equivalent = refinement.same_block(init_lhs, init_rhs);
    if (!result.equivalent) {
        result.distinguishing =
            distinguishing_formula(system, refinement, init_lhs, init_rhs, weak);
    }
    return result;
}

}  // namespace

FormulaPtr distinguishing_formula(const lts::Lts& model,
                                  const RefinementResult& refinement,
                                  lts::StateId lhs, lts::StateId rhs,
                                  bool weak_modality) {
    DPMA_REQUIRE(!refinement.same_block(lhs, rhs),
                 "states are bisimilar; nothing to distinguish");
    return distinguish(model, refinement, lhs, rhs, weak_modality);
}

EquivalenceResult strongly_bisimilar(const lts::Lts& lhs, const lts::Lts& rhs) {
    return check(lhs, rhs, /*weak=*/false);
}

EquivalenceResult weakly_bisimilar(const lts::Lts& lhs, const lts::Lts& rhs) {
    return check(lhs, rhs, /*weak=*/true);
}

}  // namespace dpma::bisim
