#include "bisim/partition.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_set>

#include "core/error.hpp"
#include "exp/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::bisim {
namespace {

/// Signature entry: (action, target block) packed into 64 bits — exact,
/// both ids are 32-bit.  Sorting packed entries sorts by action then block,
/// the same order the old pair-vector signatures used.
inline std::uint64_t pack_entry(lts::ActionId action, BlockId block) noexcept {
    return (static_cast<std::uint64_t>(action) << 32) | block;
}

/// FNV-1a over the packed entries of a signature with extra avalanching;
/// collisions are resolved by comparing the arena slices, so correctness
/// never depends on hash quality.
inline std::uint64_t hash_sig(const std::uint64_t* data, std::uint32_t len) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull ^ len;
    for (std::uint32_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
        h ^= h >> 29;
    }
    return h;
}

/// Process-wide pool for signature computation (jobs == 0 callers).  Sized
/// by DPMA_JOBS / hardware once; refine calls may nest inside experiment
/// workers, which the pool supports (the caller participates in run()).
exp::ThreadPool& shared_pool() {
    static exp::ThreadPool pool;
    return pool;
}

}  // namespace

std::size_t RefinementResult::separation_round(lts::StateId a, lts::StateId b) const {
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        if (rounds[r][a] != rounds[r][b]) return r;
    }
    return 0;
}

RefinementResult refine_strong(const lts::Lts& model) {
    return refine_strong(model, 0);
}

RefinementResult refine_strong(const lts::Lts& model, std::size_t jobs) {
    const std::size_t n = model.num_states();
    DPMA_NAMED_SPAN(span, "bisim.refine", "bisim");
    span.arg("states", static_cast<double>(n));
    RefinementResult result;
    result.rounds.emplace_back(n, BlockId{0});
    if (n == 0) return result;

    const lts::Lts::CsrView& csr = model.csr();
    const std::span<const std::uint32_t> off = csr.offsets();
    const std::span<const lts::Transition> trans = csr.transitions();
    const std::size_t m = trans.size();

    // 8-byte shadow of the transition array: refinement only ever reads
    // (action, target), not the 48-byte rate-carrying Transition, and the
    // rounds re-walk this array many times.
    std::vector<std::uint64_t> edges(m);
    for (std::size_t k = 0; k < m; ++k) {
        edges[k] = pack_entry(trans[k].action, trans[k].target);
    }

    // Reverse adjacency in CSR form: who has to be re-signed when a state
    // changes block.
    std::vector<std::uint32_t> pred_off(n + 1, 0);
    for (const std::uint64_t e : edges) ++pred_off[static_cast<std::uint32_t>(e) + 1];
    for (std::size_t s = 0; s < n; ++s) pred_off[s + 1] += pred_off[s];
    std::vector<lts::StateId> preds(m);
    {
        std::vector<std::uint32_t> cursor(pred_off.begin(), pred_off.end() - 1);
        for (lts::StateId s = 0; s < n; ++s) {
            for (std::uint32_t k = off[s]; k < off[s + 1]; ++k) {
                preds[cursor[static_cast<std::uint32_t>(edges[k])]++] = s;
            }
        }
    }

    // Sort each row by action once, so re-signing can walk equal-action runs
    // and never needs a per-round sort (see resign_range below).
    for (lts::StateId s = 0; s < n; ++s) {
        std::sort(edges.begin() + off[s], edges.begin() + off[s + 1]);
    }

    // Signature arena: state s owns sig_data[off[s] .. off[s+1]), of which
    // the first sig_len[s] entries are its current sorted deduplicated
    // signature.  Stored signatures stay valid until a successor changes
    // block, which is exactly when the state is marked dirty — split blocks
    // keep their id for the first-occurrence sub-block, so an unchanged
    // block id always still denotes the successor's block.
    std::vector<std::uint64_t> sig_data(m);
    std::vector<std::uint32_t> sig_len(n, 0);
    std::vector<char> sig_changed(n, 0);

    // Partition state: block id per state, plus the members of each block as
    // a contiguous segment of `members` (kept in stable order across splits
    // so numbering by first-state occurrence is deterministic).
    std::vector<BlockId> cur(n, 0);
    std::vector<lts::StateId> members(n);
    for (lts::StateId s = 0; s < n; ++s) members[s] = s;
    std::vector<std::uint32_t> seg_begin{0};
    std::vector<std::uint32_t> seg_end{static_cast<std::uint32_t>(n)};
    seg_begin.reserve(n);
    seg_end.reserve(n);
    std::size_t num_blocks = 1;

    std::vector<lts::StateId> dirty(n);
    for (lts::StateId s = 0; s < n; ++s) dirty[s] = s;
    std::vector<char> in_dirty(n, 0);
    std::vector<char> block_affected(n, 0);

    std::optional<exp::ThreadPool> local_pool;
    exp::ThreadPool* pool = nullptr;
    if (jobs == 0) {
        pool = &shared_pool();
    } else if (jobs > 1) {
        local_pool.emplace(jobs);
        pool = &*local_pool;
    }

    // Re-signs dirty[lo..hi) against the current block ids; flags states
    // whose signature value actually changed.  Writes only per-state slots,
    // so chunks may run concurrently and results are chunking-independent.
    //
    // Rows are pre-sorted by action, so the canonical sorted deduplicated
    // signature falls out without any per-round sorting: walk each
    // equal-action run, mark the successors' blocks in a bitmap, and emit
    // the set bits in ascending order.  Saturated systems have huge tau
    // runs, which this reduces to O(edges + touched words).
    struct SigScratch {
        std::vector<std::uint64_t> entries;
        std::vector<std::uint64_t> block_bits;
    };
    const auto resign_range = [&](std::size_t lo, std::size_t hi, SigScratch& sc) {
        if (sc.block_bits.empty()) sc.block_bits.assign((n >> 6) + 1, 0);
        for (std::size_t i = lo; i < hi; ++i) {
            const lts::StateId s = dirty[i];
            std::vector<std::uint64_t>& entries = sc.entries;
            entries.clear();
            std::uint32_t k = off[s];
            const std::uint32_t kend = off[s + 1];
            while (k < kend) {
                const std::uint64_t action_tag = edges[k] & 0xFFFFFFFF00000000ull;
                std::uint32_t run_end = k + 1;
                while (run_end < kend &&
                       (edges[run_end] & 0xFFFFFFFF00000000ull) == action_tag) {
                    ++run_end;
                }
                if (run_end - k == 1) {
                    entries.push_back(action_tag |
                                      cur[static_cast<std::uint32_t>(edges[k])]);
                } else {
                    std::size_t min_w = static_cast<std::size_t>(-1);
                    std::size_t max_w = 0;
                    for (; k < run_end; ++k) {
                        const BlockId blk = cur[static_cast<std::uint32_t>(edges[k])];
                        const std::size_t w = blk >> 6;
                        sc.block_bits[w] |= std::uint64_t{1} << (blk & 63);
                        min_w = std::min(min_w, w);
                        max_w = std::max(max_w, w);
                    }
                    for (std::size_t w = min_w; w <= max_w; ++w) {
                        std::uint64_t bits = sc.block_bits[w];
                        sc.block_bits[w] = 0;
                        while (bits != 0) {
                            entries.push_back(
                                action_tag | ((w << 6) + static_cast<std::size_t>(
                                                             std::countr_zero(bits))));
                            bits &= bits - 1;
                        }
                    }
                }
                k = run_end;
            }
            const auto len = static_cast<std::uint32_t>(entries.size());
            if (len == sig_len[s] &&
                std::equal(entries.begin(), entries.end(), sig_data.begin() + off[s])) {
                continue;
            }
            std::copy(entries.begin(), entries.end(), sig_data.begin() + off[s]);
            sig_len[s] = len;
            sig_changed[s] = 1;
        }
    };

    // Per-block grouping scratch (reused across rounds).
    std::vector<std::uint32_t> slot;
    std::vector<lts::StateId> group_rep;
    std::vector<std::uint32_t> group_count;
    std::vector<std::uint32_t> group_of;
    std::vector<BlockId> group_id;
    std::vector<std::uint32_t> group_cursor;
    std::vector<lts::StateId> seg_scratch;
    std::vector<BlockId> affected;
    std::vector<lts::StateId> newly_changed;

    std::size_t total_resigned = 0;
    while (!dirty.empty()) {
        total_resigned += dirty.size();
        constexpr std::size_t kMinParallel = 2048;
        if (pool != nullptr && pool->jobs() > 1 && dirty.size() >= kMinParallel) {
            const std::size_t chunks =
                std::min(pool->jobs() * 4, dirty.size() / (kMinParallel / 4));
            pool->run(chunks, [&](std::size_t c) {
                SigScratch scratch;
                resign_range(dirty.size() * c / chunks,
                             dirty.size() * (c + 1) / chunks, scratch);
            });
        } else {
            SigScratch scratch;
            resign_range(0, dirty.size(), scratch);
        }

        // Blocks with at least one member whose signature changed are the
        // only candidates for splitting: every block's members had equal
        // signatures after the previous round, and untouched signatures are
        // still valid.
        affected.clear();
        for (const lts::StateId s : dirty) {
            if (sig_changed[s] != 0 && block_affected[cur[s]] == 0) {
                block_affected[cur[s]] = 1;
                affected.push_back(cur[s]);
            }
        }
        std::sort(affected.begin(), affected.end());
        for (const lts::StateId s : dirty) sig_changed[s] = 0;
        for (const BlockId b : affected) block_affected[b] = 0;

        newly_changed.clear();
        for (const BlockId b : affected) {
            const std::uint32_t lo = seg_begin[b];
            const std::uint32_t hi = seg_end[b];
            const std::uint32_t count = hi - lo;
            if (count <= 1) continue;

            // Group the members by signature, groups numbered in order of
            // first occurrence (open addressing, arena-slice compares).
            std::size_t cap = 16;
            while (cap < static_cast<std::size_t>(count) * 2) cap <<= 1;
            slot.assign(cap, 0);
            group_rep.clear();
            group_count.clear();
            group_of.resize(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                const lts::StateId s = members[lo + i];
                std::size_t pos =
                    hash_sig(sig_data.data() + off[s], sig_len[s]) & (cap - 1);
                while (true) {
                    if (slot[pos] == 0) {
                        slot[pos] = static_cast<std::uint32_t>(group_rep.size()) + 1;
                        group_of[i] = static_cast<std::uint32_t>(group_rep.size());
                        group_rep.push_back(s);
                        group_count.push_back(1);
                        break;
                    }
                    const std::uint32_t g = slot[pos] - 1;
                    const lts::StateId r = group_rep[g];
                    if (sig_len[r] == sig_len[s] &&
                        std::equal(sig_data.begin() + off[s],
                                   sig_data.begin() + off[s] + sig_len[s],
                                   sig_data.begin() + off[r])) {
                        group_of[i] = g;
                        ++group_count[g];
                        break;
                    }
                    pos = (pos + 1) & (cap - 1);
                }
            }
            const auto num_groups = static_cast<std::uint32_t>(group_rep.size());
            if (num_groups <= 1) continue;

            // Stable split: the first-occurrence group keeps id b, later
            // groups get fresh sequential ids.
            group_id.resize(num_groups);
            group_cursor.assign(num_groups + 1, 0);
            for (std::uint32_t g = 0; g < num_groups; ++g) {
                group_cursor[g + 1] = group_cursor[g] + group_count[g];
            }
            group_id[0] = b;
            seg_end[b] = lo + group_count[0];
            for (std::uint32_t g = 1; g < num_groups; ++g) {
                group_id[g] = static_cast<BlockId>(num_blocks++);
                seg_begin.push_back(lo + group_cursor[g]);
                seg_end.push_back(lo + group_cursor[g + 1]);
            }
            seg_scratch.assign(members.begin() + lo, members.begin() + hi);
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint32_t g = group_of[i];
                const lts::StateId s = seg_scratch[i];
                members[lo + group_cursor[g]++] = s;
                if (g != 0) {
                    cur[s] = group_id[g];
                    newly_changed.push_back(s);
                }
            }
        }

        if (newly_changed.empty()) break;
        result.rounds.push_back(cur);

        // Next round's dirty set: predecessors of every state that moved.
        dirty.clear();
        for (const lts::StateId t : newly_changed) {
            for (std::uint32_t k = pred_off[t]; k < pred_off[t + 1]; ++k) {
                const lts::StateId p = preds[k];
                if (in_dirty[p] == 0) {
                    in_dirty[p] = 1;
                    dirty.push_back(p);
                }
            }
        }
        for (const lts::StateId p : dirty) in_dirty[p] = 0;
    }

    obs::counter("bisim.refine.calls").add();
    obs::counter("bisim.refine.rounds").add(result.rounds.size() - 1);
    obs::counter("bisim.refine.states_resigned").add(total_resigned);
    obs::histogram("bisim.refine.rounds_per_call")
        .observe(static_cast<double>(result.rounds.size() - 1));
    span.arg("rounds", static_cast<double>(result.rounds.size() - 1));
    return result;
}

lts::Lts quotient(const lts::Lts& model, const RefinementResult& refinement) {
    DPMA_REQUIRE(model.num_states() > 0, "cannot quotient an empty system");
    const std::vector<BlockId>& blocks = refinement.final_blocks();
    DPMA_REQUIRE(blocks.size() == model.num_states(),
                 "refinement does not match the model");
    const BlockId num_blocks = 1 + *std::max_element(blocks.begin(), blocks.end());

    lts::Lts out(model.actions());
    for (BlockId b = 0; b < num_blocks; ++b) {
        out.add_state("block" + std::to_string(b));
    }
    // One representative per block suffices: bisimilar states have the same
    // signature by construction.  (action, block) pairs are deduplicated
    // through the same packed-64-bit keys the refiner uses.
    std::vector<char> done(num_blocks, 0);
    std::unordered_set<std::uint64_t> seen;
    for (lts::StateId s = 0; s < model.num_states(); ++s) {
        const BlockId b = blocks[s];
        if (done[b]) continue;
        done[b] = 1;
        seen.clear();
        for (const lts::Transition& t : model.out(s)) {
            if (seen.insert(pack_entry(t.action, blocks[t.target])).second) {
                out.add_transition(b, t.action, blocks[t.target], t.rate);
            }
        }
    }
    if (model.initial() != lts::kNoState) {
        out.set_initial(blocks[model.initial()]);
    }
    return out;
}

}  // namespace dpma::bisim
