#include "bisim/partition.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::bisim {
namespace {

/// Signature of a state: the sorted, deduplicated list of
/// (action, target block) pairs of its outgoing transitions.
using Signature = std::vector<std::pair<lts::ActionId, BlockId>>;

Signature signature_of(const lts::Lts& model, lts::StateId state,
                       const std::vector<BlockId>& blocks) {
    Signature sig;
    const auto out = model.out(state);
    sig.reserve(out.size());
    for (const lts::Transition& t : out) {
        sig.emplace_back(t.action, blocks[t.target]);
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    return sig;
}

}  // namespace

std::size_t RefinementResult::separation_round(lts::StateId a, lts::StateId b) const {
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        if (rounds[r][a] != rounds[r][b]) return r;
    }
    return 0;
}

RefinementResult refine_strong(const lts::Lts& model) {
    const std::size_t n = model.num_states();
    DPMA_NAMED_SPAN(span, "bisim.refine", "bisim");
    span.arg("states", static_cast<double>(n));
    RefinementResult result;
    result.rounds.emplace_back(n, BlockId{0});
    if (n == 0) return result;

    struct KeyHash {
        std::size_t operator()(const std::pair<BlockId, Signature>& key) const noexcept {
            std::size_t h = key.first * 0x9E3779B97F4A7C15ull;
            for (const auto& [action, block] : key.second) {
                h ^= (static_cast<std::size_t>(action) << 32 | block) +
                     0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
            }
            return h;
        }
    };

    while (true) {
        const std::vector<BlockId>& prev = result.rounds.back();
        std::vector<BlockId> next(n, 0);
        // Key: (previous block, signature wrt previous partition).
        std::unordered_map<std::pair<BlockId, Signature>, BlockId, KeyHash> block_ids;
        block_ids.reserve(n);
        for (lts::StateId s = 0; s < n; ++s) {
            auto key = std::make_pair(prev[s], signature_of(model, s, prev));
            auto [it, inserted] =
                block_ids.emplace(std::move(key), static_cast<BlockId>(block_ids.size()));
            next[s] = it->second;
        }
        const bool stable = block_ids.size() ==
                            static_cast<std::size_t>(
                                1 + *std::max_element(prev.begin(), prev.end()));
        result.rounds.push_back(std::move(next));
        if (stable) break;
    }
    obs::counter("bisim.refine.calls").add();
    obs::counter("bisim.refine.rounds").add(result.rounds.size() - 1);
    obs::histogram("bisim.refine.rounds_per_call")
        .observe(static_cast<double>(result.rounds.size() - 1));
    span.arg("rounds", static_cast<double>(result.rounds.size() - 1));
    return result;
}

lts::Lts quotient(const lts::Lts& model, const RefinementResult& refinement) {
    DPMA_REQUIRE(model.num_states() > 0, "cannot quotient an empty system");
    const std::vector<BlockId>& blocks = refinement.final_blocks();
    DPMA_REQUIRE(blocks.size() == model.num_states(),
                 "refinement does not match the model");
    const BlockId num_blocks = 1 + *std::max_element(blocks.begin(), blocks.end());

    lts::Lts out(model.actions());
    for (BlockId b = 0; b < num_blocks; ++b) {
        out.add_state("block" + std::to_string(b));
    }
    // One representative per block suffices: bisimilar states have the same
    // signature by construction.
    std::vector<char> done(num_blocks, 0);
    for (lts::StateId s = 0; s < model.num_states(); ++s) {
        const BlockId b = blocks[s];
        if (done[b]) continue;
        done[b] = 1;
        std::map<std::pair<lts::ActionId, BlockId>, char> seen;
        for (const lts::Transition& t : model.out(s)) {
            if (seen.emplace(std::make_pair(t.action, blocks[t.target]), 1).second) {
                out.add_transition(b, t.action, blocks[t.target], t.rate);
            }
        }
    }
    if (model.initial() != lts::kNoState) {
        out.set_initial(blocks[model.initial()]);
    }
    return out;
}

}  // namespace dpma::bisim
