#include "bisim/hml_check.hpp"

#include <deque>
#include <map>
#include <vector>

#include "core/error.hpp"

namespace dpma::bisim {
namespace {

class Checker {
public:
    explicit Checker(const lts::Lts& model) : model_(model) {}

    bool eval(lts::StateId state, const FormulaPtr& formula) {
        const auto key = std::make_pair(formula.get(), state);
        if (auto it = memo_.find(key); it != memo_.end()) return it->second;
        bool value = false;
        switch (formula->kind) {
            case Formula::Kind::True:
                value = true;
                break;
            case Formula::Kind::Not:
                value = !eval(state, formula->children.front());
                break;
            case Formula::Kind::And: {
                value = true;
                for (const FormulaPtr& child : formula->children) {
                    if (!eval(state, child)) {
                        value = false;
                        break;
                    }
                }
                break;
            }
            case Formula::Kind::Diamond:
                value = eval_diamond(state, *formula);
                break;
        }
        memo_.emplace(key, value);
        return value;
    }

private:
    bool eval_diamond(lts::StateId state, const Formula& diamond) {
        const lts::ActionId label = model_.actions()->find(diamond.label);
        if (label == kNoSymbol) return false;
        const FormulaPtr& child = diamond.children.front();
        if (!diamond.weak) {
            for (const lts::Transition& t : model_.out(state)) {
                if (t.action == label && eval(t.target, child)) return true;
            }
            return false;
        }
        const std::vector<lts::StateId>& pre = tau_closure(state);
        if (label == model_.actions()->tau()) {
            for (lts::StateId mid : pre) {
                if (eval(mid, child)) return true;
            }
            return false;
        }
        for (lts::StateId mid : pre) {
            for (const lts::Transition& t : model_.out(mid)) {
                if (t.action != label) continue;
                for (lts::StateId end : tau_closure(t.target)) {
                    if (eval(end, child)) return true;
                }
            }
        }
        return false;
    }

    const std::vector<lts::StateId>& tau_closure(lts::StateId state) {
        auto [it, inserted] = closures_.try_emplace(state);
        if (!inserted) return it->second;
        const lts::ActionId tau = model_.actions()->tau();
        std::vector<char> seen(model_.num_states(), 0);
        std::deque<lts::StateId> queue{state};
        seen[state] = 1;
        while (!queue.empty()) {
            const lts::StateId u = queue.front();
            queue.pop_front();
            it->second.push_back(u);
            for (const lts::Transition& t : model_.out(u)) {
                if (t.action == tau && !seen[t.target]) {
                    seen[t.target] = 1;
                    queue.push_back(t.target);
                }
            }
        }
        return it->second;
    }

    const lts::Lts& model_;
    std::map<std::pair<const Formula*, lts::StateId>, bool> memo_;
    std::map<lts::StateId, std::vector<lts::StateId>> closures_;
};

}  // namespace

bool satisfies(const lts::Lts& model, lts::StateId state, const FormulaPtr& formula) {
    DPMA_REQUIRE(formula != nullptr, "null formula");
    DPMA_REQUIRE(state < model.num_states(), "state out of range");
    Checker checker(model);
    return checker.eval(state, formula);
}

}  // namespace dpma::bisim
