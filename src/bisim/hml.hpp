#pragma once

/// \file hml.hpp
/// Hennessy–Milner logic formulae, used as diagnostics when an equivalence
/// check fails.  The printer emits the TwoTowers-style concrete syntax shown
/// in the paper (EXISTS_WEAK_TRANS / LABEL / REACHED_STATE_SAT / NOT / AND /
/// TRUE), so the reproduced rpc diagnostic reads like the original.

#include <memory>
#include <string>
#include <vector>

namespace dpma::bisim {

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable HML formula node.
struct Formula {
    enum class Kind {
        True,     ///< satisfied by every state
        Not,      ///< children[0] does not hold
        And,      ///< all children hold (empty conjunction == True)
        Diamond,  ///< a (weak or strong) transition labelled `label` leads to
                  ///< a state satisfying children[0]
    };

    Kind kind = Kind::True;
    std::string label;               ///< Diamond only; "tau" for the invisible action
    bool weak = false;               ///< Diamond only; print as EXISTS_WEAK_TRANS
    std::vector<FormulaPtr> children;
};

[[nodiscard]] FormulaPtr hml_true();
[[nodiscard]] FormulaPtr hml_not(FormulaPtr sub);
[[nodiscard]] FormulaPtr hml_and(std::vector<FormulaPtr> subs);
[[nodiscard]] FormulaPtr hml_diamond(std::string label, bool weak, FormulaPtr sub);

/// Pretty-prints in TwoTowers syntax with two-space indentation, e.g.
///
///   EXISTS_WEAK_TRANS(
///     LABEL(C.send_rpc_packet#RCS.get_packet);
///     REACHED_STATE_SAT(
///       NOT(... )
///     )
///   )
[[nodiscard]] std::string to_two_towers(const FormulaPtr& formula);

/// Compact single-line mathematical rendering, e.g. <<a>>~(<b>tt).
[[nodiscard]] std::string to_compact(const FormulaPtr& formula);

/// Structural size (node count) — used by tests and to cap diagnostics.
[[nodiscard]] std::size_t formula_size(const FormulaPtr& formula);

}  // namespace dpma::bisim
