#pragma once

/// \file model.hpp
/// The architectural model: element types (AETs) with behaviours, instances
/// and UNI attachments — a faithful in-memory form of the Æmilia
/// specifications used throughout the paper.  Models are built either
/// programmatically (see dpma::models) or by the Æmilia parser
/// (dpma::aemilia).

#include <string>
#include <vector>

#include "adl/expr.hpp"
#include "core/source.hpp"
#include "lts/rate.hpp"

namespace dpma::adl {

/// One action occurrence in a behaviour: `<name, rate>`.
struct Action {
    std::string name;
    lts::Rate rate = lts::RateUnspecified{};
    SourceLoc loc = {};  ///< position of the action name
};

/// Invocation of a behaviour with argument expressions: `Beh(n + 1)`.
struct BehaviorCall {
    std::string behavior;
    std::vector<ExprPtr> args;
    SourceLoc loc = {};  ///< position of the invoked behaviour name
};

/// One alternative of a `choice`: an optional guard, a non-empty sequence of
/// action prefixes and the behaviour invoked afterwards:
/// `cond(n < size) -> <a, r> . <b, r'> . Beh(n + 1)`.
struct Alternative {
    BoolExprPtr guard;  ///< null means always enabled
    std::vector<Action> actions;
    BehaviorCall continuation;
    SourceLoc loc = {};  ///< position of the first token of the alternative
};

/// A named behaviour equation with integer parameters.
struct BehaviorDef {
    std::string name;
    std::vector<std::string> params;
    std::vector<Alternative> alternatives;
    SourceLoc loc = {};  ///< position of the equation name
};

/// An architectural element type.  The first behaviour is the initial one,
/// as in Æmilia.  Interactions are classified UNI input / UNI output; every
/// other action occurring in the behaviours is internal.
/// The *_locs vectors parallel the interaction name lists; they are empty
/// for programmatic models.
struct ElemType {
    std::string name;
    std::vector<BehaviorDef> behaviors;
    std::vector<std::string> input_interactions;
    std::vector<std::string> output_interactions;
    SourceLoc loc = {};  ///< position of the type name
    std::vector<SourceLoc> input_interaction_locs;
    std::vector<SourceLoc> output_interaction_locs;

    /// Location of the i-th input/output interaction declaration; falls back
    /// to the type's own location for programmatic models.
    [[nodiscard]] SourceLoc input_loc(std::size_t i) const noexcept {
        return i < input_interaction_locs.size() ? input_interaction_locs[i] : loc;
    }
    [[nodiscard]] SourceLoc output_loc(std::size_t i) const noexcept {
        return i < output_interaction_locs.size() ? output_interaction_locs[i] : loc;
    }
};

/// An instance of an element type: `S : Server_Type(10)`.
struct Instance {
    std::string name;
    std::string type;
    std::vector<long> args;
    SourceLoc loc = {};  ///< position of the instance name
};

/// A UNI attachment: `FROM A.out_port TO B.in_port`.
struct Attachment {
    std::string from_instance;
    std::string from_port;
    std::string to_instance;
    std::string to_port;
    SourceLoc loc = {};       ///< position of the FROM keyword
    SourceLoc from_loc = {};  ///< position of the source port name
    SourceLoc to_loc = {};    ///< position of the target port name
};

/// A complete architectural type (system description).
struct ArchiType {
    std::string name;
    std::vector<ElemType> elem_types;
    std::vector<Instance> instances;
    std::vector<Attachment> attachments;
    SourceLoc loc = {};  ///< position of the architecture name

    [[nodiscard]] const ElemType* find_type(const std::string& name) const;
    [[nodiscard]] const Instance* find_instance(const std::string& name) const;
};

/// Structural validation; throws ModelError with a precise message on the
/// first problem found.  Checks: type/behaviour resolution, parameter
/// arities, interaction declarations, attachment well-formedness (output to
/// input, each port attached at most once), and that interactions are not
/// used in the middle of an action sequence without being declared.
void validate(const ArchiType& archi);

}  // namespace dpma::adl
