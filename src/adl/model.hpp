#pragma once

/// \file model.hpp
/// The architectural model: element types (AETs) with behaviours, instances
/// and UNI attachments — a faithful in-memory form of the Æmilia
/// specifications used throughout the paper.  Models are built either
/// programmatically (see dpma::models) or by the Æmilia parser
/// (dpma::aemilia).

#include <string>
#include <vector>

#include "adl/expr.hpp"
#include "lts/rate.hpp"

namespace dpma::adl {

/// One action occurrence in a behaviour: `<name, rate>`.
struct Action {
    std::string name;
    lts::Rate rate = lts::RateUnspecified{};
};

/// Invocation of a behaviour with argument expressions: `Beh(n + 1)`.
struct BehaviorCall {
    std::string behavior;
    std::vector<ExprPtr> args;
};

/// One alternative of a `choice`: an optional guard, a non-empty sequence of
/// action prefixes and the behaviour invoked afterwards:
/// `cond(n < size) -> <a, r> . <b, r'> . Beh(n + 1)`.
struct Alternative {
    BoolExprPtr guard;  ///< null means always enabled
    std::vector<Action> actions;
    BehaviorCall continuation;
};

/// A named behaviour equation with integer parameters.
struct BehaviorDef {
    std::string name;
    std::vector<std::string> params;
    std::vector<Alternative> alternatives;
};

/// An architectural element type.  The first behaviour is the initial one,
/// as in Æmilia.  Interactions are classified UNI input / UNI output; every
/// other action occurring in the behaviours is internal.
struct ElemType {
    std::string name;
    std::vector<BehaviorDef> behaviors;
    std::vector<std::string> input_interactions;
    std::vector<std::string> output_interactions;
};

/// An instance of an element type: `S : Server_Type(10)`.
struct Instance {
    std::string name;
    std::string type;
    std::vector<long> args;
};

/// A UNI attachment: `FROM A.out_port TO B.in_port`.
struct Attachment {
    std::string from_instance;
    std::string from_port;
    std::string to_instance;
    std::string to_port;
};

/// A complete architectural type (system description).
struct ArchiType {
    std::string name;
    std::vector<ElemType> elem_types;
    std::vector<Instance> instances;
    std::vector<Attachment> attachments;

    [[nodiscard]] const ElemType* find_type(const std::string& name) const;
    [[nodiscard]] const Instance* find_instance(const std::string& name) const;
};

/// Structural validation; throws ModelError with a precise message on the
/// first problem found.  Checks: type/behaviour resolution, parameter
/// arities, interaction declarations, attachment well-formedness (output to
/// input, each port attached at most once), and that interactions are not
/// used in the middle of an action sequence without being declared.
void validate(const ArchiType& archi);

}  // namespace dpma::adl
