#include "adl/expr.hpp"

namespace dpma::adl {

ExprPtr Expr::constant(long value) {
    auto node = std::make_shared<Expr>();
    node->kind_ = Kind::Const;
    node->value_ = value;
    return node;
}

ExprPtr Expr::param(std::size_t index, std::string name) {
    auto node = std::make_shared<Expr>();
    node->kind_ = Kind::Param;
    node->param_ = index;
    node->name_ = std::move(name);
    return node;
}

ExprPtr Expr::binary(Kind op, ExprPtr lhs, ExprPtr rhs) {
    DPMA_REQUIRE(op != Kind::Const && op != Kind::Param, "binary() needs an operator kind");
    DPMA_REQUIRE(lhs != nullptr && rhs != nullptr, "binary() needs two operands");
    auto node = std::make_shared<Expr>();
    node->kind_ = op;
    node->lhs_ = std::move(lhs);
    node->rhs_ = std::move(rhs);
    return node;
}

long Expr::eval(std::span<const long> params) const {
    switch (kind_) {
        case Kind::Const: return value_;
        case Kind::Param:
            DPMA_REQUIRE(param_ < params.size(), "parameter index out of range: " + name_);
            return params[param_];
        case Kind::Add: return lhs_->eval(params) + rhs_->eval(params);
        case Kind::Sub: return lhs_->eval(params) - rhs_->eval(params);
        case Kind::Mul: return lhs_->eval(params) * rhs_->eval(params);
        case Kind::Div: {
            const long d = rhs_->eval(params);
            DPMA_REQUIRE(d != 0, "division by zero in behaviour expression");
            return lhs_->eval(params) / d;
        }
        case Kind::Mod: {
            const long d = rhs_->eval(params);
            DPMA_REQUIRE(d != 0, "modulo by zero in behaviour expression");
            return lhs_->eval(params) % d;
        }
    }
    throw Error("unknown expression kind");
}

std::string Expr::to_string() const {
    switch (kind_) {
        case Kind::Const: return std::to_string(value_);
        case Kind::Param: return name_.empty() ? "p" + std::to_string(param_) : name_;
        case Kind::Add: return "(" + lhs_->to_string() + " + " + rhs_->to_string() + ")";
        case Kind::Sub: return "(" + lhs_->to_string() + " - " + rhs_->to_string() + ")";
        case Kind::Mul: return "(" + lhs_->to_string() + " * " + rhs_->to_string() + ")";
        case Kind::Div: return "(" + lhs_->to_string() + " / " + rhs_->to_string() + ")";
        case Kind::Mod: return "(" + lhs_->to_string() + " % " + rhs_->to_string() + ")";
    }
    throw Error("unknown expression kind");
}

BoolExprPtr BoolExpr::always_true() {
    static const auto instance = std::make_shared<BoolExpr>();
    return instance;
}

BoolExprPtr BoolExpr::compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
    DPMA_REQUIRE(lhs != nullptr && rhs != nullptr, "compare() needs two operands");
    auto node = std::make_shared<BoolExpr>();
    node->kind_ = Kind::Cmp;
    node->op_ = op;
    node->cmp_lhs_ = std::move(lhs);
    node->cmp_rhs_ = std::move(rhs);
    return node;
}

BoolExprPtr BoolExpr::conj(BoolExprPtr lhs, BoolExprPtr rhs) {
    auto node = std::make_shared<BoolExpr>();
    node->kind_ = Kind::And;
    node->lhs_ = std::move(lhs);
    node->rhs_ = std::move(rhs);
    return node;
}

BoolExprPtr BoolExpr::disj(BoolExprPtr lhs, BoolExprPtr rhs) {
    auto node = std::make_shared<BoolExpr>();
    node->kind_ = Kind::Or;
    node->lhs_ = std::move(lhs);
    node->rhs_ = std::move(rhs);
    return node;
}

BoolExprPtr BoolExpr::negate(BoolExprPtr sub) {
    auto node = std::make_shared<BoolExpr>();
    node->kind_ = Kind::Not;
    node->lhs_ = std::move(sub);
    return node;
}

bool BoolExpr::eval(std::span<const long> params) const {
    switch (kind_) {
        case Kind::True: return true;
        case Kind::Cmp: {
            const long a = cmp_lhs_->eval(params);
            const long b = cmp_rhs_->eval(params);
            switch (op_) {
                case CmpOp::Lt: return a < b;
                case CmpOp::Le: return a <= b;
                case CmpOp::Eq: return a == b;
                case CmpOp::Ne: return a != b;
                case CmpOp::Ge: return a >= b;
                case CmpOp::Gt: return a > b;
            }
            throw Error("unknown comparison");
        }
        case Kind::And: return lhs_->eval(params) && rhs_->eval(params);
        case Kind::Or: return lhs_->eval(params) || rhs_->eval(params);
        case Kind::Not: return !lhs_->eval(params);
    }
    throw Error("unknown guard kind");
}

std::string BoolExpr::to_string() const {
    switch (kind_) {
        case Kind::True: return "true";
        case Kind::Cmp: {
            const char* ops[] = {"<", "<=", "==", "!=", ">=", ">"};
            return cmp_lhs_->to_string() + " " + ops[static_cast<int>(op_)] + " " +
                   cmp_rhs_->to_string();
        }
        case Kind::And: return "(" + lhs_->to_string() + " && " + rhs_->to_string() + ")";
        case Kind::Or: return "(" + lhs_->to_string() + " || " + rhs_->to_string() + ")";
        case Kind::Not: return "!(" + lhs_->to_string() + ")";
    }
    throw Error("unknown guard kind");
}

}  // namespace dpma::adl
