#include "adl/model.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/error.hpp"

namespace dpma::adl {
namespace {

const BehaviorDef* find_behavior(const ElemType& type, const std::string& name) {
    for (const BehaviorDef& b : type.behaviors) {
        if (b.name == name) return &b;
    }
    return nullptr;
}

void validate_elem_type(const ElemType& type) {
    DPMA_REQUIRE(!type.behaviors.empty(),
                 "element type " + type.name + " has no behaviours");
    std::unordered_set<std::string> behavior_names;
    for (const BehaviorDef& b : type.behaviors) {
        if (!behavior_names.insert(b.name).second) {
            throw ModelError("duplicate behaviour " + b.name + " in type " + type.name);
        }
    }
    std::unordered_set<std::string> interactions;
    for (const std::string& port : type.input_interactions) {
        if (!interactions.insert(port).second) {
            throw ModelError("duplicate interaction " + port + " in type " + type.name);
        }
    }
    for (const std::string& port : type.output_interactions) {
        if (!interactions.insert(port).second) {
            throw ModelError("interaction " + port + " declared both input and output in type " +
                             type.name);
        }
    }
    for (const BehaviorDef& b : type.behaviors) {
        for (const Alternative& alt : b.alternatives) {
            if (alt.actions.empty()) {
                throw ModelError("empty action sequence in behaviour " + b.name +
                                 " of type " + type.name);
            }
            const BehaviorDef* target = find_behavior(type, alt.continuation.behavior);
            if (target == nullptr) {
                throw ModelError("behaviour " + b.name + " of type " + type.name +
                                 " invokes unknown behaviour " + alt.continuation.behavior);
            }
            if (target->params.size() != alt.continuation.args.size()) {
                throw ModelError("behaviour " + alt.continuation.behavior + " of type " +
                                 type.name + " expects " +
                                 std::to_string(target->params.size()) + " argument(s), got " +
                                 std::to_string(alt.continuation.args.size()));
            }
        }
    }
}

}  // namespace

const ElemType* ArchiType::find_type(const std::string& type_name) const {
    for (const ElemType& t : elem_types) {
        if (t.name == type_name) return &t;
    }
    return nullptr;
}

const Instance* ArchiType::find_instance(const std::string& instance_name) const {
    for (const Instance& i : instances) {
        if (i.name == instance_name) return &i;
    }
    return nullptr;
}

void validate(const ArchiType& archi) {
    DPMA_REQUIRE(!archi.instances.empty(), "architecture " + archi.name + " has no instances");

    std::unordered_set<std::string> type_names;
    for (const ElemType& t : archi.elem_types) {
        if (!type_names.insert(t.name).second) {
            throw ModelError("duplicate element type " + t.name);
        }
        validate_elem_type(t);
    }

    std::unordered_set<std::string> instance_names;
    for (const Instance& inst : archi.instances) {
        if (!instance_names.insert(inst.name).second) {
            throw ModelError("duplicate instance " + inst.name);
        }
        const ElemType* type = archi.find_type(inst.type);
        if (type == nullptr) {
            throw ModelError("instance " + inst.name + " has unknown type " + inst.type);
        }
        const BehaviorDef& initial = type->behaviors.front();
        if (initial.params.size() != inst.args.size()) {
            throw ModelError("instance " + inst.name + ": initial behaviour " + initial.name +
                             " expects " + std::to_string(initial.params.size()) +
                             " argument(s), got " + std::to_string(inst.args.size()));
        }
    }

    const auto is_port = [&](const std::string& inst_name, const std::string& port,
                             bool output) -> bool {
        const Instance* inst = archi.find_instance(inst_name);
        if (inst == nullptr) return false;
        const ElemType* type = archi.find_type(inst->type);
        const auto& ports = output ? type->output_interactions : type->input_interactions;
        return std::find(ports.begin(), ports.end(), port) != ports.end();
    };

    std::set<std::pair<std::string, std::string>> attached_out;
    std::set<std::pair<std::string, std::string>> attached_in;
    for (const Attachment& att : archi.attachments) {
        if (archi.find_instance(att.from_instance) == nullptr) {
            throw ModelError("attachment from unknown instance " + att.from_instance);
        }
        if (archi.find_instance(att.to_instance) == nullptr) {
            throw ModelError("attachment to unknown instance " + att.to_instance);
        }
        if (!is_port(att.from_instance, att.from_port, /*output=*/true)) {
            throw ModelError("attachment source " + att.from_instance + "." + att.from_port +
                             " is not a declared output interaction");
        }
        if (!is_port(att.to_instance, att.to_port, /*output=*/false)) {
            throw ModelError("attachment target " + att.to_instance + "." + att.to_port +
                             " is not a declared input interaction");
        }
        if (att.from_instance == att.to_instance) {
            throw ModelError("self-attachment on instance " + att.from_instance);
        }
        if (!attached_out.insert({att.from_instance, att.from_port}).second) {
            throw ModelError("output " + att.from_instance + "." + att.from_port +
                             " attached more than once (UNI)");
        }
        if (!attached_in.insert({att.to_instance, att.to_port}).second) {
            throw ModelError("input " + att.to_instance + "." + att.to_port +
                             " attached more than once (UNI)");
        }
    }
}

}  // namespace dpma::adl
