#include "adl/model.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/error.hpp"

namespace dpma::adl {
namespace {

[[noreturn]] void fail(std::string message, const SourceLoc& loc) {
    throw ModelError(std::move(message), loc.line, loc.column);
}

const BehaviorDef* find_behavior(const ElemType& type, const std::string& name) {
    for (const BehaviorDef& b : type.behaviors) {
        if (b.name == name) return &b;
    }
    return nullptr;
}

void validate_elem_type(const ElemType& type) {
    if (type.behaviors.empty()) {
        fail("element type " + type.name + " has no behaviours", type.loc);
    }
    std::unordered_set<std::string> behavior_names;
    for (const BehaviorDef& b : type.behaviors) {
        if (!behavior_names.insert(b.name).second) {
            fail("duplicate behaviour " + b.name + " in type " + type.name, b.loc);
        }
    }
    std::unordered_set<std::string> interactions;
    for (std::size_t i = 0; i < type.input_interactions.size(); ++i) {
        if (!interactions.insert(type.input_interactions[i]).second) {
            fail("duplicate interaction " + type.input_interactions[i] + " in type " +
                     type.name,
                 type.input_loc(i));
        }
    }
    for (std::size_t i = 0; i < type.output_interactions.size(); ++i) {
        if (!interactions.insert(type.output_interactions[i]).second) {
            fail("interaction " + type.output_interactions[i] +
                     " declared both input and output in type " + type.name,
                 type.output_loc(i));
        }
    }
    for (const BehaviorDef& b : type.behaviors) {
        for (const Alternative& alt : b.alternatives) {
            if (alt.actions.empty()) {
                fail("empty action sequence in behaviour " + b.name + " of type " +
                         type.name,
                     alt.loc);
            }
            const BehaviorDef* target = find_behavior(type, alt.continuation.behavior);
            if (target == nullptr) {
                fail("behaviour " + b.name + " of type " + type.name +
                         " invokes unknown behaviour " + alt.continuation.behavior,
                     alt.continuation.loc);
            }
            if (target->params.size() != alt.continuation.args.size()) {
                fail("behaviour " + alt.continuation.behavior + " of type " + type.name +
                         " expects " + std::to_string(target->params.size()) +
                         " argument(s), got " +
                         std::to_string(alt.continuation.args.size()),
                     alt.continuation.loc);
            }
        }
    }
}

}  // namespace

const ElemType* ArchiType::find_type(const std::string& type_name) const {
    for (const ElemType& t : elem_types) {
        if (t.name == type_name) return &t;
    }
    return nullptr;
}

const Instance* ArchiType::find_instance(const std::string& instance_name) const {
    for (const Instance& i : instances) {
        if (i.name == instance_name) return &i;
    }
    return nullptr;
}

void validate(const ArchiType& archi) {
    if (archi.instances.empty()) {
        fail("architecture " + archi.name + " has no instances", archi.loc);
    }

    std::unordered_set<std::string> type_names;
    for (const ElemType& t : archi.elem_types) {
        if (!type_names.insert(t.name).second) {
            fail("duplicate element type " + t.name, t.loc);
        }
        validate_elem_type(t);
    }

    std::unordered_set<std::string> instance_names;
    for (const Instance& inst : archi.instances) {
        if (!instance_names.insert(inst.name).second) {
            fail("duplicate instance " + inst.name, inst.loc);
        }
        const ElemType* type = archi.find_type(inst.type);
        if (type == nullptr) {
            fail("instance " + inst.name + " has unknown type " + inst.type, inst.loc);
        }
        const BehaviorDef& initial = type->behaviors.front();
        if (initial.params.size() != inst.args.size()) {
            fail("instance " + inst.name + ": initial behaviour " + initial.name +
                     " expects " + std::to_string(initial.params.size()) +
                     " argument(s), got " + std::to_string(inst.args.size()),
                 inst.loc);
        }
    }

    const auto is_port = [&](const std::string& inst_name, const std::string& port,
                             bool output) -> bool {
        const Instance* inst = archi.find_instance(inst_name);
        if (inst == nullptr) return false;
        const ElemType* type = archi.find_type(inst->type);
        const auto& ports = output ? type->output_interactions : type->input_interactions;
        return std::find(ports.begin(), ports.end(), port) != ports.end();
    };

    std::set<std::pair<std::string, std::string>> attached_out;
    std::set<std::pair<std::string, std::string>> attached_in;
    for (const Attachment& att : archi.attachments) {
        if (archi.find_instance(att.from_instance) == nullptr) {
            fail("attachment from unknown instance " + att.from_instance, att.loc);
        }
        if (archi.find_instance(att.to_instance) == nullptr) {
            fail("attachment to unknown instance " + att.to_instance, att.loc);
        }
        if (!is_port(att.from_instance, att.from_port, /*output=*/true)) {
            fail("attachment source " + att.from_instance + "." + att.from_port +
                     " is not a declared output interaction",
                 att.from_loc.known() ? att.from_loc : att.loc);
        }
        if (!is_port(att.to_instance, att.to_port, /*output=*/false)) {
            fail("attachment target " + att.to_instance + "." + att.to_port +
                     " is not a declared input interaction",
                 att.to_loc.known() ? att.to_loc : att.loc);
        }
        if (att.from_instance == att.to_instance) {
            fail("self-attachment on instance " + att.from_instance, att.loc);
        }
        if (!attached_out.insert({att.from_instance, att.from_port}).second) {
            fail("output " + att.from_instance + "." + att.from_port +
                     " attached more than once (UNI)",
                 att.from_loc.known() ? att.from_loc : att.loc);
        }
        if (!attached_in.insert({att.to_instance, att.to_port}).second) {
            fail("input " + att.to_instance + "." + att.to_port +
                     " attached more than once (UNI)",
                 att.to_loc.known() ? att.to_loc : att.loc);
        }
    }
}

}  // namespace dpma::adl
