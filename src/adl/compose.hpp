#pragma once

/// \file compose.hpp
/// Builds the global labelled transition system of an architectural type by
/// synchronising the local LTSs of its instances over the declared UNI
/// attachments (EMPA/Æmilia semantics):
///
///  * an internal action of instance I yields a global transition "I.a";
///  * an attached output/input pair yields a synchronised global transition
///    "I.a#J.b" whose rate is contributed by the unique non-passive party;
///  * unattached interactions are blocked — this is how "the DPM is absent"
///    and CCS restriction are modelled architecturally.
///
/// Maximal progress for immediate actions is *not* applied here: the
/// functional phase must see every alternative.  The Markovian layer
/// (dpma::ctmc) and the simulator (dpma::sim) apply it when they interpret
/// the rates.

#include <cstdint>
#include <string>
#include <vector>

#include "adl/model.hpp"
#include "lts/lts.hpp"

namespace dpma::adl {

struct ComposeOptions {
    /// Record per-state descriptive names (tuple of local behaviour states).
    /// Costs memory on big models; diagnostics and measures do not need it.
    bool record_state_names = false;
    /// Exploration bound; exceeded => ModelError (guards against unbounded
    /// integer parameters).
    std::size_t max_states = 1'000'000;
};

/// Local LTS of one instance (exposed for tests and diagnostics).
struct LocalLts {
    struct LocalTransition {
        Symbol action;        ///< bare action name, interned in the global table
        lts::Rate rate;
        std::uint32_t target;
    };
    std::vector<std::vector<LocalTransition>> out;
    std::vector<std::string> state_names;
    std::uint32_t initial = 0;
};

/// The composed system plus the bookkeeping needed to evaluate measures:
/// which instance is which, and which local state each instance occupies in
/// every global state.
struct ComposedModel {
    lts::Lts graph;
    std::vector<std::string> instance_names;
    /// Flattened per-state locals, instance_names.size() entries per global
    /// state (one contiguous block keeps sweep-time model copies to a single
    /// allocation); read through local_state().
    std::vector<std::uint32_t> local_states;
    /// Per instance, the name of each local state (behaviour + arguments).
    std::vector<std::vector<std::string>> local_state_names;

    [[nodiscard]] std::size_t instance_index(const std::string& name) const;

    /// Local state of instance \p instance in global state \p state.
    [[nodiscard]] std::uint32_t local_state(lts::StateId state,
                                            std::size_t instance) const {
        return local_states[static_cast<std::size_t>(state) * instance_names.size() +
                            instance];
    }

    /// Name of the local state of \p instance in global state \p state.
    [[nodiscard]] const std::string& local_state_name(lts::StateId state,
                                                      std::size_t instance) const;
};

/// Unfolds the behaviours of \p type applied to \p args into a local LTS.
/// Interns bare action names into \p actions.
[[nodiscard]] LocalLts build_local_lts(const ElemType& type, std::span<const long> args,
                                       lts::ActionTable& actions, std::size_t max_states);

/// Validates and composes the architecture.  The result contains exactly the
/// states reachable from the initial configuration.
[[nodiscard]] ComposedModel compose(const ArchiType& archi, const ComposeOptions& options = {});

}  // namespace dpma::adl
