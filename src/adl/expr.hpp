#pragma once

/// \file expr.hpp
/// Integer expressions and boolean guards over behaviour parameters.
/// Æmilia behaviours may carry data parameters (e.g. the buffer occupancy of
/// the streaming access point); recursion arguments and `cond(...)` guards
/// are built from these expression trees.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace dpma::adl {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Integer expression tree.
class Expr {
public:
    enum class Kind { Const, Param, Add, Sub, Mul, Div, Mod };

    [[nodiscard]] static ExprPtr constant(long value);
    /// \p index refers to the enclosing behaviour's parameter list.
    [[nodiscard]] static ExprPtr param(std::size_t index, std::string name);
    [[nodiscard]] static ExprPtr binary(Kind op, ExprPtr lhs, ExprPtr rhs);

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] long value() const noexcept { return value_; }
    [[nodiscard]] std::size_t param_index() const noexcept { return param_; }
    [[nodiscard]] const std::string& param_name() const noexcept { return name_; }
    // Subtrees of a binary node (null for Const / Param); used by the
    // interval analysis in analysis/flow.
    [[nodiscard]] const ExprPtr& lhs() const noexcept { return lhs_; }
    [[nodiscard]] const ExprPtr& rhs() const noexcept { return rhs_; }

    /// Evaluates with the given parameter values; throws on division by zero.
    [[nodiscard]] long eval(std::span<const long> params) const;

    [[nodiscard]] std::string to_string() const;

private:
    Kind kind_ = Kind::Const;
    long value_ = 0;
    std::size_t param_ = 0;
    std::string name_;
    ExprPtr lhs_;
    ExprPtr rhs_;
};

class BoolExpr;
using BoolExprPtr = std::shared_ptr<const BoolExpr>;

/// Boolean guard tree over integer comparisons.
class BoolExpr {
public:
    enum class Kind { True, Cmp, And, Or, Not };
    enum class CmpOp { Lt, Le, Eq, Ne, Ge, Gt };

    [[nodiscard]] static BoolExprPtr always_true();
    [[nodiscard]] static BoolExprPtr compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
    [[nodiscard]] static BoolExprPtr conj(BoolExprPtr lhs, BoolExprPtr rhs);
    [[nodiscard]] static BoolExprPtr disj(BoolExprPtr lhs, BoolExprPtr rhs);
    [[nodiscard]] static BoolExprPtr negate(BoolExprPtr sub);

    [[nodiscard]] bool eval(std::span<const long> params) const;

    [[nodiscard]] std::string to_string() const;

    // Structural accessors (used by the Æmilia printer).
    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] CmpOp cmp_op() const noexcept { return op_; }
    [[nodiscard]] const ExprPtr& cmp_lhs() const noexcept { return cmp_lhs_; }
    [[nodiscard]] const ExprPtr& cmp_rhs() const noexcept { return cmp_rhs_; }
    [[nodiscard]] const BoolExprPtr& lhs() const noexcept { return lhs_; }
    [[nodiscard]] const BoolExprPtr& rhs() const noexcept { return rhs_; }

private:
    Kind kind_ = Kind::True;
    CmpOp op_ = CmpOp::Eq;
    ExprPtr cmp_lhs_;
    ExprPtr cmp_rhs_;
    BoolExprPtr lhs_;
    BoolExprPtr rhs_;
};

}  // namespace dpma::adl
