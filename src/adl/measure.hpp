#pragma once

/// \file measure.hpp
/// Reward-based performance measures in the style of the paper's companion
/// language:
///
///   MEASURE throughput IS
///     ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
///   MEASURE energy IS
///     ENABLED(S.monitor_idle_server) -> STATE_REWARD(2)
///     ...
///
/// A STATE_REWARD clause accumulates reward per unit of time spent in states
/// satisfying the predicate; a TRANS_REWARD clause accumulates reward per
/// firing of the matching transitions.  The same measure definitions are
/// evaluated analytically on the CTMC (dpma::ctmc) and statistically by the
/// simulator (dpma::sim).

#include <string>
#include <variant>
#include <vector>

#include "adl/compose.hpp"

namespace dpma::adl {

/// Predicate "instance can perform (or the transition fires) this action".
/// Matches both internal labels ("C.process_result_packet") and either side
/// of a synchronised label ("RSC.deliver_packet#C.receive_result_packet").
struct EnabledPredicate {
    std::string instance;
    std::string action;
};

/// Predicate "the instance currently occupies a local state whose name
/// starts with the given prefix", e.g. IN_STATE(S, Sleeping_Server).  Only
/// meaningful for STATE_REWARD clauses.
struct InStatePredicate {
    std::string instance;
    std::string state_prefix;
};

using Predicate = std::variant<EnabledPredicate, InStatePredicate>;

struct RewardClause {
    enum class Target { State, Trans };
    Target target = Target::State;
    Predicate predicate;
    double reward = 0.0;
    SourceLoc loc = {};  ///< position of the predicate keyword (parser-built only)
};

struct Measure {
    std::string name;
    std::vector<RewardClause> clauses;
    SourceLoc loc = {};  ///< position of the measure name (parser-built only)
};

/// Convenience constructors mirroring the concrete syntax.
[[nodiscard]] RewardClause state_reward(std::string instance, std::string action,
                                        double reward);
[[nodiscard]] RewardClause state_reward_in(std::string instance, std::string state_prefix,
                                           double reward);
[[nodiscard]] RewardClause trans_reward(std::string instance, std::string action,
                                        double reward);

/// Per-state membership mask of a (state-target) predicate.
[[nodiscard]] std::vector<char> state_mask(const ComposedModel& model,
                                           const Predicate& predicate);

/// Per-action-label membership mask of an ENABLED predicate (indexed by the
/// composed model's ActionId).  Throws for IN_STATE predicates, which do not
/// select transitions.
[[nodiscard]] std::vector<char> action_mask(const ComposedModel& model,
                                            const Predicate& predicate);

/// All global action labels that involve the given instance — either as an
/// internal action or as one party of a synchronisation.  Used to pick the
/// "high" actions of the noninterference check (all actions of the DPM).
[[nodiscard]] std::vector<lts::ActionId> actions_of_instance(const ComposedModel& model,
                                                             const std::string& instance);

}  // namespace dpma::adl
