#include "adl/compose.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::adl {
namespace {

/// Combines the rates of the two parties of a synchronisation.  Exactly one
/// party may be non-passive; two functional (unspecified) parties are also
/// legal since no timing has to be decided.
lts::Rate combine_rates(const lts::Rate& out_rate, const lts::Rate& in_rate,
                        const std::string& label) {
    const bool out_passive = lts::is_passive(out_rate);
    const bool in_passive = lts::is_passive(in_rate);
    if (out_passive && in_passive) {
        // Two passive parties stay passive (EMPA): legal in untimed
        // specifications, where `_' annotates every action; the Markovian
        // and simulation layers reject any passive transition that survives
        // to them.
        return lts::RatePassive{};
    }
    if (out_passive) return in_rate;
    if (in_passive) return out_rate;
    const bool out_unspec = std::holds_alternative<lts::RateUnspecified>(out_rate);
    const bool in_unspec = std::holds_alternative<lts::RateUnspecified>(in_rate);
    if (out_unspec && in_unspec) return lts::RateUnspecified{};
    throw ModelError("synchronisation " + label + " has two active parties");
}

/// How a local transition of an instance participates in the composition.
enum class ParticipationKind : std::uint8_t {
    Internal,     ///< fires alone
    SyncInitiator,///< output attached to a partner input; fires with partner
    SyncFollower, ///< input attached: fired from the initiator's side
    Blocked,      ///< unattached interaction: never fires
};

struct Participation {
    ParticipationKind kind = ParticipationKind::Internal;
    std::uint32_t partner_instance = 0;  // SyncInitiator only
    Symbol partner_action = kNoSymbol;   // SyncInitiator only
    lts::ActionId label = kNoSymbol;     // Internal / SyncInitiator: global label
    std::string label_text;
};

struct VecHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept {
        std::size_t h = 0xcbf29ce484222325ull;
        for (std::uint32_t x : v) {
            h ^= x;
            h *= 0x100000001b3ull;
        }
        return h;
    }
};

}  // namespace

LocalLts build_local_lts(const ElemType& type, std::span<const long> args,
                         lts::ActionTable& actions, std::size_t max_states) {
    LocalLts local;
    using Key = std::pair<std::size_t, std::vector<long>>;  // (behaviour idx, args)
    std::map<Key, std::uint32_t> head_states;

    const auto behavior_index = [&](const std::string& name) -> std::size_t {
        for (std::size_t i = 0; i < type.behaviors.size(); ++i) {
            if (type.behaviors[i].name == name) return i;
        }
        throw ModelError("unknown behaviour " + name + " in type " + type.name);
    };

    const auto state_label = [&](const BehaviorDef& b, std::span<const long> a) {
        std::string text = b.name;
        if (!a.empty()) {
            text += '(';
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i != 0) text += ',';
                text += std::to_string(a[i]);
            }
            text += ')';
        }
        return text;
    };

    std::deque<Key> queue;
    const auto intern_head = [&](Key key) -> std::uint32_t {
        if (auto it = head_states.find(key); it != head_states.end()) return it->second;
        if (local.out.size() >= max_states) {
            throw ModelError("local state space of type " + type.name + " exceeds " +
                             std::to_string(max_states) +
                             " states (unbounded behaviour parameter?)");
        }
        const auto id = static_cast<std::uint32_t>(local.out.size());
        local.out.emplace_back();
        local.state_names.push_back(
            state_label(type.behaviors[key.first], key.second));
        head_states.emplace(key, id);
        queue.push_back(std::move(key));
        return id;
    };

    local.initial =
        intern_head(Key{0, std::vector<long>(args.begin(), args.end())});

    while (!queue.empty()) {
        Key key = std::move(queue.front());
        queue.pop_front();
        const std::uint32_t state = head_states.at(key);
        const BehaviorDef& behavior = type.behaviors[key.first];
        const std::span<const long> params(key.second);

        for (const Alternative& alt : behavior.alternatives) {
            if (alt.guard != nullptr && !alt.guard->eval(params)) continue;

            // Resolve the continuation first, then thread the action chain
            // through fresh anonymous states.
            std::vector<long> cont_args;
            cont_args.reserve(alt.continuation.args.size());
            for (const ExprPtr& e : alt.continuation.args) {
                cont_args.push_back(e->eval(params));
            }
            const std::uint32_t cont_state =
                intern_head(Key{behavior_index(alt.continuation.behavior),
                                std::move(cont_args)});

            std::uint32_t from = state;
            for (std::size_t i = 0; i < alt.actions.size(); ++i) {
                const Action& act = alt.actions[i];
                std::uint32_t to;
                if (i + 1 == alt.actions.size()) {
                    to = cont_state;
                } else {
                    if (local.out.size() >= max_states) {
                        throw ModelError("local state space of type " + type.name +
                                         " exceeds " + std::to_string(max_states) + " states");
                    }
                    to = static_cast<std::uint32_t>(local.out.size());
                    local.out.emplace_back();
                    local.state_names.push_back(local.state_names[state] + "/" + act.name);
                }
                local.out[from].push_back(
                    LocalLts::LocalTransition{actions.intern(act.name), act.rate, to});
                from = to;
            }
        }
    }
    return local;
}

std::size_t ComposedModel::instance_index(const std::string& name) const {
    for (std::size_t i = 0; i < instance_names.size(); ++i) {
        if (instance_names[i] == name) return i;
    }
    throw ModelError("unknown instance " + name);
}

const std::string& ComposedModel::local_state_name(lts::StateId state,
                                                   std::size_t instance) const {
    DPMA_REQUIRE(state < local_states.size(), "state out of range");
    DPMA_REQUIRE(instance < instance_names.size(), "instance out of range");
    return local_state_names[instance][local_states[state][instance]];
}

ComposedModel compose(const ArchiType& archi, const ComposeOptions& options) {
    DPMA_NAMED_SPAN(span, "adl.compose", "compose");
    validate(archi);

    auto actions = std::make_shared<lts::ActionTable>();
    const std::size_t num_instances = archi.instances.size();

    ComposedModel model{lts::Lts(actions), {}, {}, {}};
    std::vector<LocalLts> locals;
    locals.reserve(num_instances);
    for (const Instance& inst : archi.instances) {
        model.instance_names.push_back(inst.name);
        const ElemType* type = archi.find_type(inst.type);
        locals.push_back(
            build_local_lts(*type, inst.args, *actions, options.max_states));
        model.local_state_names.push_back(locals.back().state_names);
    }

    // Attachment lookup: (instance, bare action) -> partner / role.
    struct PortRole {
        bool is_initiator = false;
        std::uint32_t partner_instance = 0;
        Symbol partner_action = kNoSymbol;
        std::string partner_instance_name;
        std::string partner_action_name;
    };
    std::map<std::pair<std::uint32_t, Symbol>, PortRole> roles;
    for (const Attachment& att : archi.attachments) {
        const auto from_idx =
            static_cast<std::uint32_t>(model.instance_index(att.from_instance));
        const auto to_idx =
            static_cast<std::uint32_t>(model.instance_index(att.to_instance));
        const Symbol from_act = actions->intern(att.from_port);
        const Symbol to_act = actions->intern(att.to_port);
        roles[{from_idx, from_act}] =
            PortRole{true, to_idx, to_act, att.to_instance, att.to_port};
        roles[{to_idx, to_act}] = PortRole{false, from_idx, from_act, {}, {}};
    }

    // Classify every local transition of every instance once.
    // participation[i][local_state][k] parallels locals[i].out[local_state][k].
    std::vector<std::vector<std::vector<Participation>>> participation(num_instances);
    for (std::uint32_t i = 0; i < num_instances; ++i) {
        const Instance& inst = archi.instances[i];
        const ElemType* type = archi.find_type(inst.type);
        const auto is_interaction = [&](const std::string& a) {
            return std::find(type->input_interactions.begin(),
                             type->input_interactions.end(),
                             a) != type->input_interactions.end() ||
                   std::find(type->output_interactions.begin(),
                             type->output_interactions.end(),
                             a) != type->output_interactions.end();
        };
        participation[i].resize(locals[i].out.size());
        for (std::size_t s = 0; s < locals[i].out.size(); ++s) {
            for (const LocalLts::LocalTransition& t : locals[i].out[s]) {
                Participation p;
                const std::string& action_name = actions->name(t.action);
                if (!is_interaction(action_name)) {
                    p.kind = ParticipationKind::Internal;
                    p.label_text = inst.name + "." + action_name;
                    p.label = actions->intern(p.label_text);
                } else if (auto it = roles.find({i, t.action}); it != roles.end()) {
                    if (it->second.is_initiator) {
                        p.kind = ParticipationKind::SyncInitiator;
                        p.partner_instance = it->second.partner_instance;
                        p.partner_action = it->second.partner_action;
                        p.label_text = inst.name + "." + action_name + "#" +
                                       it->second.partner_instance_name + "." +
                                       it->second.partner_action_name;
                        p.label = actions->intern(p.label_text);
                    } else {
                        p.kind = ParticipationKind::SyncFollower;
                    }
                } else {
                    p.kind = ParticipationKind::Blocked;
                }
                participation[i][s].push_back(std::move(p));
            }
        }
    }

    // Breadth-first global exploration.
    std::unordered_map<std::vector<std::uint32_t>, lts::StateId, VecHash> index;
    std::deque<std::vector<std::uint32_t>> queue;

    const auto global_name = [&](const std::vector<std::uint32_t>& g) -> std::string {
        if (!options.record_state_names) return {};
        std::string text;
        for (std::uint32_t i = 0; i < num_instances; ++i) {
            if (i != 0) text += " | ";
            text += model.instance_names[i] + ":" + locals[i].state_names[g[i]];
        }
        return text;
    };

    const auto intern_global = [&](std::vector<std::uint32_t> g) -> lts::StateId {
        if (auto it = index.find(g); it != index.end()) return it->second;
        if (model.graph.num_states() >= options.max_states) {
            throw ModelError("global state space of " + archi.name + " exceeds " +
                             std::to_string(options.max_states) + " states");
        }
        const lts::StateId id = model.graph.add_state(global_name(g));
        model.local_states.push_back(g);
        index.emplace(std::move(g), id);
        queue.push_back(model.local_states.back());
        return id;
    };

    std::vector<std::uint32_t> initial(num_instances);
    for (std::uint32_t i = 0; i < num_instances; ++i) initial[i] = locals[i].initial;
    model.graph.set_initial(intern_global(std::move(initial)));

    while (!queue.empty()) {
        const std::vector<std::uint32_t> current = std::move(queue.front());
        queue.pop_front();
        const lts::StateId from = index.at(current);

        for (std::uint32_t i = 0; i < num_instances; ++i) {
            const std::uint32_t ls = current[i];
            const auto& trans = locals[i].out[ls];
            for (std::size_t k = 0; k < trans.size(); ++k) {
                const Participation& p = participation[i][ls][k];
                switch (p.kind) {
                    case ParticipationKind::Internal: {
                        std::vector<std::uint32_t> next = current;
                        next[i] = trans[k].target;
                        model.graph.add_transition(from, p.label, intern_global(std::move(next)),
                                                   trans[k].rate);
                        break;
                    }
                    case ParticipationKind::SyncInitiator: {
                        const std::uint32_t j = p.partner_instance;
                        const auto& partner_trans = locals[j].out[current[j]];
                        for (const LocalLts::LocalTransition& u : partner_trans) {
                            if (u.action != p.partner_action) continue;
                            std::vector<std::uint32_t> next = current;
                            next[i] = trans[k].target;
                            next[j] = u.target;
                            model.graph.add_transition(
                                from, p.label, intern_global(std::move(next)),
                                combine_rates(trans[k].rate, u.rate, p.label_text));
                        }
                        break;
                    }
                    case ParticipationKind::SyncFollower:
                    case ParticipationKind::Blocked:
                        break;
                }
            }
        }
    }
    obs::counter("compose.calls").add();
    obs::counter("compose.states").add(model.graph.num_states());
    obs::counter("compose.transitions").add(model.graph.num_transitions());
    span.arg("states", static_cast<double>(model.graph.num_states()));
    span.arg("transitions", static_cast<double>(model.graph.num_transitions()));
    return model;
}

}  // namespace dpma::adl
