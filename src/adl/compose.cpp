#include "adl/compose.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpma::adl {
namespace {

/// Combines the rates of the two parties of a synchronisation.  Exactly one
/// party may be non-passive; two functional (unspecified) parties are also
/// legal since no timing has to be decided.
lts::Rate combine_rates(const lts::Rate& out_rate, const lts::Rate& in_rate,
                        const std::string& label) {
    const bool out_passive = lts::is_passive(out_rate);
    const bool in_passive = lts::is_passive(in_rate);
    if (out_passive && in_passive) {
        // Two passive parties stay passive (EMPA): legal in untimed
        // specifications, where `_' annotates every action; the Markovian
        // and simulation layers reject any passive transition that survives
        // to them.
        return lts::RatePassive{};
    }
    if (out_passive) return in_rate;
    if (in_passive) return out_rate;
    const bool out_unspec = std::holds_alternative<lts::RateUnspecified>(out_rate);
    const bool in_unspec = std::holds_alternative<lts::RateUnspecified>(in_rate);
    if (out_unspec && in_unspec) return lts::RateUnspecified{};
    throw ModelError("synchronisation " + label + " has two active parties");
}

/// How a local transition of an instance participates in the composition.
enum class ParticipationKind : std::uint8_t {
    Internal,     ///< fires alone
    SyncInitiator,///< output attached to a partner input; fires with partner
    SyncFollower, ///< input attached: fired from the initiator's side
    Blocked,      ///< unattached interaction: never fires
};

struct Participation {
    ParticipationKind kind = ParticipationKind::Internal;
    std::uint32_t partner_instance = 0;  // SyncInitiator only
    Symbol partner_action = kNoSymbol;   // SyncInitiator only
    lts::ActionId label = kNoSymbol;     // Internal / SyncInitiator: global label
    std::string label_text;
};

struct VecHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept {
        std::size_t h = 0xcbf29ce484222325ull;
        for (std::uint32_t x : v) {
            h ^= x;
            h *= 0x100000001b3ull;
        }
        return h;
    }
};

}  // namespace

LocalLts build_local_lts(const ElemType& type, std::span<const long> args,
                         lts::ActionTable& actions, std::size_t max_states) {
    LocalLts local;
    using Key = std::pair<std::size_t, std::vector<long>>;  // (behaviour idx, args)
    std::map<Key, std::uint32_t> head_states;

    // Name -> behaviour index, built once per type; alternatives resolve
    // their continuation against this instead of a linear scan per dequeue.
    std::unordered_map<std::string, std::size_t> behavior_by_name;
    behavior_by_name.reserve(type.behaviors.size());
    for (std::size_t i = 0; i < type.behaviors.size(); ++i) {
        behavior_by_name.emplace(type.behaviors[i].name, i);
    }
    const auto behavior_index = [&](const std::string& name) -> std::size_t {
        const auto it = behavior_by_name.find(name);
        if (it == behavior_by_name.end()) {
            throw ModelError("unknown behaviour " + name + " in type " + type.name);
        }
        return it->second;
    };

    const auto state_label = [&](const BehaviorDef& b, std::span<const long> a) {
        std::string text = b.name;
        if (!a.empty()) {
            text += '(';
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i != 0) text += ',';
                text += std::to_string(a[i]);
            }
            text += ')';
        }
        return text;
    };

    std::deque<Key> queue;
    const auto intern_head = [&](Key key) -> std::uint32_t {
        if (auto it = head_states.find(key); it != head_states.end()) return it->second;
        if (local.out.size() >= max_states) {
            throw ModelError("local state space of type " + type.name + " exceeds " +
                             std::to_string(max_states) +
                             " states (unbounded behaviour parameter?)");
        }
        const auto id = static_cast<std::uint32_t>(local.out.size());
        local.out.emplace_back();
        local.state_names.push_back(
            state_label(type.behaviors[key.first], key.second));
        head_states.emplace(key, id);
        queue.push_back(std::move(key));
        return id;
    };

    local.initial =
        intern_head(Key{0, std::vector<long>(args.begin(), args.end())});

    while (!queue.empty()) {
        Key key = std::move(queue.front());
        queue.pop_front();
        const std::uint32_t state = head_states.at(key);
        const BehaviorDef& behavior = type.behaviors[key.first];
        const std::span<const long> params(key.second);

        for (const Alternative& alt : behavior.alternatives) {
            if (alt.guard != nullptr && !alt.guard->eval(params)) continue;

            // Resolve the continuation first, then thread the action chain
            // through fresh anonymous states.
            std::vector<long> cont_args;
            cont_args.reserve(alt.continuation.args.size());
            for (const ExprPtr& e : alt.continuation.args) {
                cont_args.push_back(e->eval(params));
            }
            const std::uint32_t cont_state =
                intern_head(Key{behavior_index(alt.continuation.behavior),
                                std::move(cont_args)});

            std::uint32_t from = state;
            for (std::size_t i = 0; i < alt.actions.size(); ++i) {
                const Action& act = alt.actions[i];
                std::uint32_t to;
                if (i + 1 == alt.actions.size()) {
                    to = cont_state;
                } else {
                    if (local.out.size() >= max_states) {
                        throw ModelError("local state space of type " + type.name +
                                         " exceeds " + std::to_string(max_states) + " states");
                    }
                    to = static_cast<std::uint32_t>(local.out.size());
                    local.out.emplace_back();
                    local.state_names.push_back(local.state_names[state] + "/" + act.name);
                }
                local.out[from].push_back(
                    LocalLts::LocalTransition{actions.intern(act.name), act.rate, to});
                from = to;
            }
        }
    }
    return local;
}

std::size_t ComposedModel::instance_index(const std::string& name) const {
    for (std::size_t i = 0; i < instance_names.size(); ++i) {
        if (instance_names[i] == name) return i;
    }
    throw ModelError("unknown instance " + name);
}

const std::string& ComposedModel::local_state_name(lts::StateId state,
                                                   std::size_t instance) const {
    DPMA_REQUIRE(static_cast<std::size_t>(state) * instance_names.size() <
                     local_states.size(),
                 "state out of range");
    DPMA_REQUIRE(instance < instance_names.size(), "instance out of range");
    return local_state_names[instance][local_state(state, instance)];
}

ComposedModel compose(const ArchiType& archi, const ComposeOptions& options) {
    DPMA_NAMED_SPAN(span, "adl.compose", "compose");
    validate(archi);

    auto actions = std::make_shared<lts::ActionTable>();
    const std::size_t num_instances = archi.instances.size();

    ComposedModel model{lts::Lts(actions), {}, {}, {}};
    std::vector<LocalLts> locals;
    locals.reserve(num_instances);
    for (const Instance& inst : archi.instances) {
        model.instance_names.push_back(inst.name);
        const ElemType* type = archi.find_type(inst.type);
        locals.push_back(
            build_local_lts(*type, inst.args, *actions, options.max_states));
        model.local_state_names.push_back(locals.back().state_names);
    }

    // Attachment lookup: (instance, bare action) -> partner / role.
    struct PortRole {
        bool is_initiator = false;
        std::uint32_t partner_instance = 0;
        Symbol partner_action = kNoSymbol;
        std::string partner_instance_name;
        std::string partner_action_name;
    };
    std::map<std::pair<std::uint32_t, Symbol>, PortRole> roles;
    for (const Attachment& att : archi.attachments) {
        const auto from_idx =
            static_cast<std::uint32_t>(model.instance_index(att.from_instance));
        const auto to_idx =
            static_cast<std::uint32_t>(model.instance_index(att.to_instance));
        const Symbol from_act = actions->intern(att.from_port);
        const Symbol to_act = actions->intern(att.to_port);
        roles[{from_idx, from_act}] =
            PortRole{true, to_idx, to_act, att.to_instance, att.to_port};
        roles[{to_idx, to_act}] = PortRole{false, from_idx, from_act, {}, {}};
    }

    // Classify every local transition of every instance once, into flat CSR
    // arrays: transition k of local state s of instance i lives at index
    // flat[i].off[s] + k, with its Participation alongside.
    struct FlatLocal {
        std::vector<std::uint32_t> off;
        std::vector<LocalLts::LocalTransition> trans;
        std::vector<Participation> part;
    };
    std::vector<FlatLocal> flat(num_instances);
    for (std::uint32_t i = 0; i < num_instances; ++i) {
        const Instance& inst = archi.instances[i];
        const ElemType* type = archi.find_type(inst.type);
        const auto is_interaction = [&](const std::string& a) {
            return std::find(type->input_interactions.begin(),
                             type->input_interactions.end(),
                             a) != type->input_interactions.end() ||
                   std::find(type->output_interactions.begin(),
                             type->output_interactions.end(),
                             a) != type->output_interactions.end();
        };
        FlatLocal& f = flat[i];
        f.off.reserve(locals[i].out.size() + 1);
        f.off.push_back(0);
        for (std::size_t s = 0; s < locals[i].out.size(); ++s) {
            for (const LocalLts::LocalTransition& t : locals[i].out[s]) {
                Participation p;
                const std::string& action_name = actions->name(t.action);
                if (!is_interaction(action_name)) {
                    p.kind = ParticipationKind::Internal;
                    p.label_text = inst.name + "." + action_name;
                    p.label = actions->intern(p.label_text);
                } else if (auto it = roles.find({i, t.action}); it != roles.end()) {
                    if (it->second.is_initiator) {
                        p.kind = ParticipationKind::SyncInitiator;
                        p.partner_instance = it->second.partner_instance;
                        p.partner_action = it->second.partner_action;
                        p.label_text = inst.name + "." + action_name + "#" +
                                       it->second.partner_instance_name + "." +
                                       it->second.partner_action_name;
                        p.label = actions->intern(p.label_text);
                    } else {
                        p.kind = ParticipationKind::SyncFollower;
                    }
                } else {
                    p.kind = ParticipationKind::Blocked;
                }
                f.trans.push_back(t);
                f.part.push_back(std::move(p));
            }
            f.off.push_back(static_cast<std::uint32_t>(f.trans.size()));
        }
    }

    // Mixed-radix packing of global states: the tuple g encodes exactly as
    // sum_i g[i] * stride[i] whenever the product of the local state-space
    // sizes fits in 64 bits, which lets the exploration intern through a
    // flat integer-keyed arena.  Oversized products fall back to hashing
    // the tuple itself.
    std::vector<std::uint64_t> stride(num_instances, 0);
    bool packable = true;
    {
        std::uint64_t prod = 1;
        for (std::uint32_t i = 0; i < num_instances && packable; ++i) {
            stride[i] = prod;
            packable = !__builtin_mul_overflow(
                prod, static_cast<std::uint64_t>(locals[i].out.size()), &prod);
        }
    }

    // Breadth-first global exploration.
    std::unordered_map<std::uint64_t, lts::StateId> packed_index;
    std::unordered_map<std::vector<std::uint32_t>, lts::StateId, VecHash> vec_index;
    std::vector<std::uint64_t> state_code;  // per global state; packable only
    std::deque<lts::StateId> queue;

    const auto global_name = [&](const std::vector<std::uint32_t>& g) -> std::string {
        if (!options.record_state_names) return {};
        std::string text;
        for (std::uint32_t i = 0; i < num_instances; ++i) {
            if (i != 0) text += " | ";
            text += model.instance_names[i] + ":" + locals[i].state_names[g[i]];
        }
        return text;
    };

    const auto register_state = [&](std::vector<std::uint32_t>&& g,
                                    std::uint64_t code) -> lts::StateId {
        if (model.graph.num_states() >= options.max_states) {
            throw ModelError("global state space of " + archi.name + " exceeds " +
                             std::to_string(options.max_states) + " states");
        }
        const lts::StateId id = model.graph.add_state(global_name(g));
        model.local_states.insert(model.local_states.end(), g.begin(), g.end());
        if (packable) state_code.push_back(code);
        queue.push_back(id);
        return id;
    };

    const auto intern_packed = [&](std::uint64_t code) -> lts::StateId {
        if (const auto it = packed_index.find(code); it != packed_index.end()) {
            return it->second;
        }
        std::vector<std::uint32_t> g(num_instances);
        for (std::uint32_t i = 0; i < num_instances; ++i) {
            g[i] = static_cast<std::uint32_t>(
                (code / stride[i]) % static_cast<std::uint64_t>(locals[i].out.size()));
        }
        const lts::StateId id = register_state(std::move(g), code);
        packed_index.emplace(code, id);
        return id;
    };

    const auto intern_vec = [&](const std::vector<std::uint32_t>& g) -> lts::StateId {
        if (const auto it = vec_index.find(g); it != vec_index.end()) return it->second;
        const lts::StateId id =
            register_state(std::vector<std::uint32_t>(g.begin(), g.end()), 0);
        vec_index.emplace(g, id);
        return id;
    };

    {
        std::vector<std::uint32_t> initial(num_instances);
        std::uint64_t code = 0;
        for (std::uint32_t i = 0; i < num_instances; ++i) {
            initial[i] = locals[i].initial;
            if (packable) code += stride[i] * initial[i];
        }
        model.graph.set_initial(packable ? intern_packed(code) : intern_vec(initial));
    }

    std::vector<std::uint32_t> current;
    std::vector<std::uint32_t> scratch;
    while (!queue.empty()) {
        const lts::StateId from = queue.front();
        queue.pop_front();
        current.assign(
            model.local_states.begin() +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(from) * num_instances),
            model.local_states.begin() +
                static_cast<std::ptrdiff_t>((static_cast<std::size_t>(from) + 1) *
                                            num_instances));
        const std::uint64_t code = packable ? state_code[from] : 0;

        for (std::uint32_t i = 0; i < num_instances; ++i) {
            const std::uint32_t ls = current[i];
            const FlatLocal& f = flat[i];
            for (std::uint32_t k = f.off[ls]; k < f.off[ls + 1]; ++k) {
                const Participation& p = f.part[k];
                switch (p.kind) {
                    case ParticipationKind::Internal: {
                        lts::StateId to;
                        if (packable) {
                            // Wraparound-exact: the true code fits in 64 bits.
                            to = intern_packed(
                                code + (f.trans[k].target - std::uint64_t{ls}) *
                                           stride[i]);
                        } else {
                            scratch = current;
                            scratch[i] = f.trans[k].target;
                            to = intern_vec(scratch);
                        }
                        model.graph.add_transition(from, p.label, to, f.trans[k].rate);
                        break;
                    }
                    case ParticipationKind::SyncInitiator: {
                        const std::uint32_t j = p.partner_instance;
                        const FlatLocal& pf = flat[j];
                        const std::uint32_t pls = current[j];
                        for (std::uint32_t q = pf.off[pls]; q < pf.off[pls + 1]; ++q) {
                            const LocalLts::LocalTransition& u = pf.trans[q];
                            if (u.action != p.partner_action) continue;
                            lts::StateId to;
                            if (packable) {
                                std::uint64_t next = code;
                                if (i == j) {
                                    // Self-attachment: the follower's move wins,
                                    // matching the tuple-overwrite semantics.
                                    next += (u.target - std::uint64_t{ls}) * stride[i];
                                } else {
                                    next += (f.trans[k].target - std::uint64_t{ls}) *
                                            stride[i];
                                    next += (u.target - std::uint64_t{pls}) * stride[j];
                                }
                                to = intern_packed(next);
                            } else {
                                scratch = current;
                                scratch[i] = f.trans[k].target;
                                scratch[j] = u.target;
                                to = intern_vec(scratch);
                            }
                            model.graph.add_transition(
                                from, p.label, to,
                                combine_rates(f.trans[k].rate, u.rate, p.label_text));
                        }
                        break;
                    }
                    case ParticipationKind::SyncFollower:
                    case ParticipationKind::Blocked:
                        break;
                }
            }
        }
    }
    // Freeze before handing the model out: downstream analyses iterate the
    // CSR view, and pre-freezing makes sharing the composed graph read-only
    // across experiment workers race-free.
    model.graph.freeze();
    obs::counter("compose.calls").add();
    obs::counter("compose.states").add(model.graph.num_states());
    obs::counter("compose.transitions").add(model.graph.num_transitions());
    span.arg("states", static_cast<double>(model.graph.num_states()));
    span.arg("transitions", static_cast<double>(model.graph.num_transitions()));
    span.arg("packed", packable ? 1.0 : 0.0);
    return model;
}

}  // namespace dpma::adl
