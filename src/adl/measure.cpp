#include "adl/measure.hpp"

#include "core/error.hpp"
#include "core/text.hpp"

namespace dpma::adl {
namespace {

/// Parses a composed label into its (instance, action) parties.
/// "C.a#S.b" -> {{C,a},{S,b}};  "C.a" -> {{C,a}};  "tau" -> {}.
std::vector<std::pair<std::string, std::string>> parties_of_label(const std::string& label) {
    std::vector<std::pair<std::string, std::string>> parties;
    if (label == "tau") return parties;
    for (const std::string& part : split(label, '#')) {
        const std::size_t dot = part.find('.');
        if (dot == std::string::npos) continue;  // not an instance-qualified label
        parties.emplace_back(part.substr(0, dot), part.substr(dot + 1));
    }
    return parties;
}

bool label_involves(const std::string& label, const std::string& instance,
                    const std::string& action) {
    for (const auto& [inst, act] : parties_of_label(label)) {
        if (inst == instance && act == action) return true;
    }
    return false;
}

}  // namespace

RewardClause state_reward(std::string instance, std::string action, double reward) {
    return RewardClause{RewardClause::Target::State,
                        EnabledPredicate{std::move(instance), std::move(action)}, reward};
}

RewardClause state_reward_in(std::string instance, std::string state_prefix, double reward) {
    return RewardClause{RewardClause::Target::State,
                        InStatePredicate{std::move(instance), std::move(state_prefix)}, reward};
}

RewardClause trans_reward(std::string instance, std::string action, double reward) {
    return RewardClause{RewardClause::Target::Trans,
                        EnabledPredicate{std::move(instance), std::move(action)}, reward};
}

std::vector<char> state_mask(const ComposedModel& model, const Predicate& predicate) {
    const std::size_t n = model.graph.num_states();
    std::vector<char> mask(n, 0);
    if (const auto* enabled = std::get_if<EnabledPredicate>(&predicate)) {
        // Precompute which labels involve the instance.action pair.
        const auto labels = action_mask(model, predicate);
        for (lts::StateId s = 0; s < n; ++s) {
            for (const lts::Transition& t : model.graph.out(s)) {
                if (labels[t.action]) {
                    mask[s] = 1;
                    break;
                }
            }
        }
        (void)enabled;
        return mask;
    }
    const auto& in_state = std::get<InStatePredicate>(predicate);
    const std::size_t idx = model.instance_index(in_state.instance);
    const auto& names = model.local_state_names[idx];
    std::vector<char> local_mask(names.size(), 0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        local_mask[i] = starts_with(names[i], in_state.state_prefix) ? 1 : 0;
    }
    for (lts::StateId s = 0; s < n; ++s) {
        mask[s] = local_mask[model.local_state(s, idx)];
    }
    return mask;
}

std::vector<char> action_mask(const ComposedModel& model, const Predicate& predicate) {
    const auto* enabled = std::get_if<EnabledPredicate>(&predicate);
    DPMA_REQUIRE(enabled != nullptr, "TRANS_REWARD needs an ENABLED predicate");
    const auto& table = *model.graph.actions();
    std::vector<char> mask(table.size(), 0);
    for (Symbol a = 0; a < table.size(); ++a) {
        mask[a] = label_involves(table.name(a), enabled->instance, enabled->action) ? 1 : 0;
    }
    return mask;
}

std::vector<lts::ActionId> actions_of_instance(const ComposedModel& model,
                                               const std::string& instance) {
    const auto& table = *model.graph.actions();
    std::vector<lts::ActionId> out;
    for (Symbol a = 0; a < table.size(); ++a) {
        for (const auto& [inst, act] : parties_of_label(table.name(a))) {
            (void)act;
            if (inst == instance) {
                out.push_back(a);
                break;
            }
        }
    }
    return out;
}

}  // namespace dpma::adl
