#include "lts/ops.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_set>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace dpma::lts {
namespace {

/// Copies states (with names) of \p model into a fresh LTS sharing the same
/// action table; transitions are added by the caller.
Lts clone_states(const Lts& model) {
    Lts out(model.actions());
    for (StateId s = 0; s < model.num_states(); ++s) {
        out.add_state(model.state_name(s));
    }
    if (model.initial() != kNoState) out.set_initial(model.initial());
    return out;
}

/// Tau-SCC condensation of \p model (iterative Tarjan over tau edges only).
///
/// SCC ids are assigned in Tarjan pop order, which is *reverse topological*
/// order of the condensation DAG: an SCC is popped only after every SCC
/// reachable from it, so a tau edge between distinct SCCs c -> d always has
/// d < c.  Both the collapse pre-pass and the bitset saturation rely on
/// processing ids ascending to see successors first.
struct TauCondensation {
    std::vector<StateId> scc_of;
    StateId num_sccs = 0;
};

TauCondensation tau_condensation(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const std::size_t n = model.num_states();
    const Lts::CsrView& csr = model.csr();

    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<StateId> stack;
    TauCondensation cond;
    cond.scc_of.assign(n, kNoState);
    int next_index = 0;

    struct Frame {
        StateId v;
        std::size_t child = 0;
    };
    for (StateId root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        std::vector<Frame> frames{{root, 0}};
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = 1;
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const StateId v = frame.v;
            const auto out = csr.out(v);
            if (frame.child < out.size()) {
                const Transition& t = out[frame.child++];
                if (t.action != tau) continue;
                const StateId w = t.target;
                if (index[w] == -1) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = 1;
                    frames.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
                continue;
            }
            if (lowlink[v] == index[v]) {
                while (true) {
                    const StateId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    cond.scc_of[w] = cond.num_sccs;
                    if (w == v) break;
                }
                ++cond.num_sccs;
            }
            frames.pop_back();
            if (!frames.empty()) {
                const StateId parent = frames.back().v;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }
    return cond;
}

}  // namespace

Lts hide(const Lts& model, const ActionSet& actions) {
    Lts out = clone_states(model);
    const ActionId tau = model.actions()->tau();
    const Lts::CsrView& csr = model.csr();
    for (StateId s = 0; s < model.num_states(); ++s) {
        const auto row = csr.out(s);
        out.reserve_out(s, row.size());
        for (const Transition& t : row) {
            const ActionId label = actions.contains(t.action) ? tau : t.action;
            out.add_transition(s, label, t.target, t.rate);
        }
    }
    return out;
}

Lts restrict_actions(const Lts& model, const ActionSet& actions) {
    Lts out = clone_states(model);
    const Lts::CsrView& csr = model.csr();
    for (StateId s = 0; s < model.num_states(); ++s) {
        for (const Transition& t : csr.out(s)) {
            if (!actions.contains(t.action)) {
                out.add_transition(s, t.action, t.target, t.rate);
            }
        }
    }
    return out;
}

Lts reachable_part(const Lts& model) {
    DPMA_REQUIRE(model.initial() != kNoState, "reachable_part needs an initial state");
    std::vector<StateId> remap(model.num_states(), kNoState);
    Lts out(model.actions());
    std::deque<StateId> queue{model.initial()};
    remap[model.initial()] = out.add_state(model.state_name(model.initial()));
    out.set_initial(remap[model.initial()]);
    std::vector<StateId> order{model.initial()};
    while (!queue.empty()) {
        const StateId u = queue.front();
        queue.pop_front();
        for (const Transition& t : model.out(u)) {
            if (remap[t.target] == kNoState) {
                remap[t.target] = out.add_state(model.state_name(t.target));
                queue.push_back(t.target);
                order.push_back(t.target);
            }
        }
    }
    for (StateId u : order) {
        for (const Transition& t : model.out(u)) {
            out.add_transition(remap[u], t.action, remap[t.target], t.rate);
        }
    }
    return out;
}

std::vector<StateId> deadlock_states(const Lts& model) {
    std::vector<StateId> out;
    for (StateId s = 0; s < model.num_states(); ++s) {
        if (model.out(s).empty()) out.push_back(s);
    }
    return out;
}

TauCollapseResult collapse_tau_sccs(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const std::size_t n = model.num_states();
    const Lts::CsrView& csr = model.csr();
    TauCondensation cond = tau_condensation(model);
    const StateId num_sccs = cond.num_sccs;

    TauCollapseResult result{Lts(model.actions()), std::move(cond.scc_of)};
    for (StateId c = 0; c < num_sccs; ++c) {
        result.collapsed.add_state();
    }
    // Deduplicated condensed edges; tau self-edges vanish by construction.
    // Per-source sets keyed by (action, target) packed into 64 bits — exact,
    // since both ids are 32-bit.
    std::vector<std::unordered_set<std::uint64_t>> seen(num_sccs);
    for (StateId s = 0; s < n; ++s) {
        const StateId from = result.representative_of[s];
        for (const Transition& t : csr.out(s)) {
            const StateId to = result.representative_of[t.target];
            if (t.action == tau && from == to) continue;
            const std::uint64_t key = (static_cast<std::uint64_t>(t.action) << 32) | to;
            if (!seen[from].insert(key).second) continue;
            result.collapsed.add_transition(from, t.action, to);
        }
    }
    if (model.initial() != kNoState) {
        result.collapsed.set_initial(result.representative_of[model.initial()]);
    }
    return result;
}

Lts saturate(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const std::size_t n = model.num_states();
    Lts out = clone_states(model);
    if (n == 0) return out;

    const Lts::CsrView& csr = model.csr();
    const TauCondensation cond = tau_condensation(model);
    const StateId num_sccs = cond.num_sccs;
    const std::size_t words = (static_cast<std::size_t>(num_sccs) + 63) / 64;

    // Members of each SCC, grouped contiguously, ascending state id.
    std::vector<std::uint32_t> scc_off(num_sccs + 1, 0);
    for (StateId s = 0; s < n; ++s) ++scc_off[cond.scc_of[s] + 1];
    for (StateId c = 0; c < num_sccs; ++c) scc_off[c + 1] += scc_off[c];
    std::vector<StateId> scc_members(n);
    {
        std::vector<std::uint32_t> cursor(scc_off.begin(), scc_off.end() - 1);
        for (StateId s = 0; s < n; ++s) scc_members[cursor[cond.scc_of[s]]++] = s;
    }

    // Deduplicated tau edges of the condensation DAG, sorted by source.
    std::vector<std::uint64_t> tau_edges;
    for (StateId s = 0; s < n; ++s) {
        const StateId from = cond.scc_of[s];
        for (const Transition& t : csr.out(s)) {
            if (t.action != tau) continue;
            const StateId to = cond.scc_of[t.target];
            if (to != from) {
                tau_edges.push_back((static_cast<std::uint64_t>(from) << 32) | to);
            }
        }
    }
    std::sort(tau_edges.begin(), tau_edges.end());
    tau_edges.erase(std::unique(tau_edges.begin(), tau_edges.end()), tau_edges.end());

    // Reflexive tau closure as one bitset row per SCC — num_sccs^2 bits in
    // total, not the per-state id vectors of the old implementation.  Every
    // SCC reachable from c has a smaller id (reverse topological numbering),
    // so a single ascending pass sees complete successor rows, and the rows
    // it ORs in have no bits above c.
    std::vector<std::uint64_t> closure(words * num_sccs, 0);
    {
        std::size_t e = 0;
        for (StateId c = 0; c < num_sccs; ++c) {
            std::uint64_t* row = closure.data() + static_cast<std::size_t>(c) * words;
            row[c >> 6] |= std::uint64_t{1} << (c & 63);
            for (; e < tau_edges.size() && (tau_edges[e] >> 32) == c; ++e) {
                const auto d = static_cast<StateId>(tau_edges[e] & 0xFFFFFFFFu);
                const std::uint64_t* src =
                    closure.data() + static_cast<std::size_t>(d) * words;
                for (std::size_t w = 0; w <= (c >> 6); ++w) row[w] |= src[w];
            }
        }
    }

    const auto for_each_closure_scc = [&](StateId c, auto&& fn) {
        const std::uint64_t* row = closure.data() + static_cast<std::size_t>(c) * words;
        for (std::size_t w = 0; w <= (static_cast<std::size_t>(c) >> 6); ++w) {
            std::uint64_t bits = row[w];
            while (bits != 0) {
                fn(static_cast<StateId>(w * 64 + std::countr_zero(bits)));
                bits &= bits - 1;
            }
        }
    };

    // Weak visible moves per SCC, packed (action << 32 | target state),
    // sorted and deduplicated; each SCC inherits its tau successors' moves
    // (complete by the same ordering argument) and adds its members' visible
    // steps followed by any tau descent from the landing SCC.  Only the
    // direct entries need sorting — inherited lists are already sorted and
    // are folded in with linear merges.
    std::vector<std::vector<std::uint64_t>> weak_visible(num_sccs);
    std::vector<std::uint32_t> closure_size(num_sccs, 0);
    {
        std::vector<std::uint64_t> direct;
        std::vector<std::uint64_t> acc;
        std::vector<std::uint64_t> merged;
        std::size_t e = 0;
        for (StateId c = 0; c < num_sccs; ++c) {
            direct.clear();
            for (std::uint32_t idx = scc_off[c]; idx < scc_off[c + 1]; ++idx) {
                for (const Transition& t : csr.out(scc_members[idx])) {
                    if (t.action == tau) continue;
                    const std::uint64_t key = static_cast<std::uint64_t>(t.action) << 32;
                    for_each_closure_scc(cond.scc_of[t.target], [&](StateId f) {
                        for (std::uint32_t j = scc_off[f]; j < scc_off[f + 1]; ++j) {
                            direct.push_back(key | scc_members[j]);
                        }
                    });
                }
            }
            std::sort(direct.begin(), direct.end());
            direct.erase(std::unique(direct.begin(), direct.end()), direct.end());
            acc.swap(direct);
            for (; e < tau_edges.size() && (tau_edges[e] >> 32) == c; ++e) {
                const auto d = static_cast<StateId>(tau_edges[e] & 0xFFFFFFFFu);
                const std::vector<std::uint64_t>& inherited = weak_visible[d];
                if (inherited.empty()) continue;
                merged.clear();
                merged.reserve(acc.size() + inherited.size());
                std::merge(acc.begin(), acc.end(), inherited.begin(), inherited.end(),
                           std::back_inserter(merged));
                merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
                acc.swap(merged);
            }
            weak_visible[c].assign(acc.begin(), acc.end());
            std::uint32_t reach = 0;
            for_each_closure_scc(
                c, [&](StateId f) { reach += scc_off[f + 1] - scc_off[f]; });
            closure_size[c] = reach;
        }
    }

    // Emit per original state: the reflexive weak-tau row (all states of all
    // closure SCCs), then the weak visible moves.  Reserves are exact.
    for (StateId s = 0; s < n; ++s) {
        const StateId c = cond.scc_of[s];
        out.reserve_out(s, closure_size[c] + weak_visible[c].size());
        for_each_closure_scc(c, [&](StateId f) {
            for (std::uint32_t j = scc_off[f]; j < scc_off[f + 1]; ++j) {
                out.add_transition(s, tau, scc_members[j]);
            }
        });
        for (const std::uint64_t move : weak_visible[c]) {
            out.add_transition(s, static_cast<ActionId>(move >> 32),
                               static_cast<StateId>(move & 0xFFFFFFFFu));
        }
    }
    obs::counter("lts.saturate.weak_transitions").add(out.num_transitions());
    return out;
}

UnionResult disjoint_union(const Lts& lhs, const Lts& rhs) {
    DPMA_REQUIRE(lhs.initial() != kNoState && rhs.initial() != kNoState,
                 "disjoint_union needs rooted systems");
    auto table = std::make_shared<ActionTable>();
    Lts combined(table);

    const auto import = [&](const Lts& src, StateId offset) {
        for (StateId s = 0; s < src.num_states(); ++s) {
            combined.add_state(src.state_name(s));
        }
        // Remap action ids once per side instead of re-interning the label
        // string of every transition.
        const ActionTable& src_actions = *src.actions();
        std::vector<ActionId> remap(src_actions.size());
        for (ActionId a = 0; a < remap.size(); ++a) {
            remap[a] = table->intern(src_actions.name(a));
        }
        for (StateId s = 0; s < src.num_states(); ++s) {
            for (const Transition& t : src.out(s)) {
                combined.add_transition(offset + s, remap[t.action], offset + t.target,
                                        t.rate);
            }
        }
    };

    import(lhs, 0);
    const auto rhs_offset = static_cast<StateId>(lhs.num_states());
    import(rhs, rhs_offset);

    UnionResult result{std::move(combined), lhs.initial(),
                       static_cast<StateId>(rhs_offset + rhs.initial())};
    result.combined.set_initial(result.initial_lhs);
    return result;
}

ActionSet make_action_set(Lts& model, const std::vector<std::string>& names) {
    ActionSet set;
    for (const std::string& name : names) {
        set.insert(model.action(name));
    }
    return set;
}

}  // namespace dpma::lts
