#include "lts/ops.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/error.hpp"

namespace dpma::lts {
namespace {

/// Copies states (with names) of \p model into a fresh LTS sharing the same
/// action table; transitions are added by the caller.
Lts clone_states(const Lts& model) {
    Lts out(model.actions());
    for (StateId s = 0; s < model.num_states(); ++s) {
        out.add_state(model.state_name(s));
    }
    if (model.initial() != kNoState) out.set_initial(model.initial());
    return out;
}

/// Forward tau-closure (reflexive) of every state.
std::vector<std::vector<StateId>> tau_closures(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    std::vector<std::vector<StateId>> closure(model.num_states());
    std::vector<char> seen(model.num_states());
    for (StateId s = 0; s < model.num_states(); ++s) {
        std::fill(seen.begin(), seen.end(), 0);
        std::deque<StateId> queue{s};
        seen[s] = 1;
        while (!queue.empty()) {
            const StateId u = queue.front();
            queue.pop_front();
            closure[s].push_back(u);
            for (const Transition& t : model.out(u)) {
                if (t.action == tau && !seen[t.target]) {
                    seen[t.target] = 1;
                    queue.push_back(t.target);
                }
            }
        }
    }
    return closure;
}

}  // namespace

Lts hide(const Lts& model, const ActionSet& actions) {
    Lts out = clone_states(model);
    const ActionId tau = model.actions()->tau();
    for (StateId s = 0; s < model.num_states(); ++s) {
        for (const Transition& t : model.out(s)) {
            const ActionId label = actions.contains(t.action) ? tau : t.action;
            out.add_transition(s, label, t.target, t.rate);
        }
    }
    return out;
}

Lts restrict_actions(const Lts& model, const ActionSet& actions) {
    Lts out = clone_states(model);
    for (StateId s = 0; s < model.num_states(); ++s) {
        for (const Transition& t : model.out(s)) {
            if (!actions.contains(t.action)) {
                out.add_transition(s, t.action, t.target, t.rate);
            }
        }
    }
    return out;
}

Lts reachable_part(const Lts& model) {
    DPMA_REQUIRE(model.initial() != kNoState, "reachable_part needs an initial state");
    std::vector<StateId> remap(model.num_states(), kNoState);
    Lts out(model.actions());
    std::deque<StateId> queue{model.initial()};
    remap[model.initial()] = out.add_state(model.state_name(model.initial()));
    out.set_initial(remap[model.initial()]);
    std::vector<StateId> order{model.initial()};
    while (!queue.empty()) {
        const StateId u = queue.front();
        queue.pop_front();
        for (const Transition& t : model.out(u)) {
            if (remap[t.target] == kNoState) {
                remap[t.target] = out.add_state(model.state_name(t.target));
                queue.push_back(t.target);
                order.push_back(t.target);
            }
        }
    }
    for (StateId u : order) {
        for (const Transition& t : model.out(u)) {
            out.add_transition(remap[u], t.action, remap[t.target], t.rate);
        }
    }
    return out;
}

std::vector<StateId> deadlock_states(const Lts& model) {
    std::vector<StateId> out;
    for (StateId s = 0; s < model.num_states(); ++s) {
        if (model.out(s).empty()) out.push_back(s);
    }
    return out;
}

TauCollapseResult collapse_tau_sccs(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const std::size_t n = model.num_states();

    // Iterative Tarjan over tau edges only.
    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<StateId> stack;
    std::vector<StateId> scc_of(n, kNoState);
    int next_index = 0;
    StateId num_sccs = 0;

    struct Frame {
        StateId v;
        std::size_t child = 0;
    };
    for (StateId root = 0; root < n; ++root) {
        if (index[root] != -1) continue;
        std::vector<Frame> frames{{root, 0}};
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = 1;
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const StateId v = frame.v;
            const auto out = model.out(v);
            if (frame.child < out.size()) {
                const Transition& t = out[frame.child++];
                if (t.action != tau) continue;
                const StateId w = t.target;
                if (index[w] == -1) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = 1;
                    frames.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
                continue;
            }
            if (lowlink[v] == index[v]) {
                while (true) {
                    const StateId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    scc_of[w] = num_sccs;
                    if (w == v) break;
                }
                ++num_sccs;
            }
            frames.pop_back();
            if (!frames.empty()) {
                const StateId parent = frames.back().v;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }

    TauCollapseResult result{Lts(model.actions()), std::move(scc_of)};
    for (StateId c = 0; c < num_sccs; ++c) {
        result.collapsed.add_state();
    }
    // Deduplicated condensed edges; tau self-edges vanish by construction.
    // Per-source sets keyed by (action, target) packed into 64 bits — exact,
    // since both ids are 32-bit.
    std::vector<std::unordered_set<std::uint64_t>> seen(num_sccs);
    for (StateId s = 0; s < n; ++s) {
        const StateId from = result.representative_of[s];
        for (const Transition& t : model.out(s)) {
            const StateId to = result.representative_of[t.target];
            if (t.action == tau && from == to) continue;
            const std::uint64_t key = (static_cast<std::uint64_t>(t.action) << 32) | to;
            if (!seen[from].insert(key).second) continue;
            result.collapsed.add_transition(from, t.action, to);
        }
    }
    if (model.initial() != kNoState) {
        result.collapsed.set_initial(result.representative_of[model.initial()]);
    }
    return result;
}

Lts saturate(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const auto closure = tau_closures(model);
    Lts out = clone_states(model);

    for (StateId s = 0; s < model.num_states(); ++s) {
        // Weak tau moves: everything in the (reflexive) closure.
        std::vector<char> added_tau(model.num_states(), 0);
        for (StateId mid : closure[s]) {
            if (!added_tau[mid]) {
                added_tau[mid] = 1;
                out.add_transition(s, tau, mid);
            }
        }
        // Weak visible moves: tau* a tau*.
        // Deduplicate (action, target) pairs to keep the saturated system small.
        std::unordered_map<std::uint64_t, char> added;
        for (StateId mid : closure[s]) {
            for (const Transition& t : model.out(mid)) {
                if (t.action == tau) continue;
                for (StateId end : closure[t.target]) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(t.action) << 32) | end;
                    if (!added.emplace(key, 1).second) continue;
                    out.add_transition(s, t.action, end);
                }
            }
        }
    }
    return out;
}

UnionResult disjoint_union(const Lts& lhs, const Lts& rhs) {
    DPMA_REQUIRE(lhs.initial() != kNoState && rhs.initial() != kNoState,
                 "disjoint_union needs rooted systems");
    auto table = std::make_shared<ActionTable>();
    Lts combined(table);

    const auto import = [&](const Lts& src, StateId offset) {
        for (StateId s = 0; s < src.num_states(); ++s) {
            combined.add_state(src.state_name(s));
        }
        for (StateId s = 0; s < src.num_states(); ++s) {
            for (const Transition& t : src.out(s)) {
                const ActionId label = table->intern(src.actions()->name(t.action));
                combined.add_transition(offset + s, label, offset + t.target, t.rate);
            }
        }
    };

    import(lhs, 0);
    const auto rhs_offset = static_cast<StateId>(lhs.num_states());
    import(rhs, rhs_offset);

    UnionResult result{std::move(combined), lhs.initial(),
                       static_cast<StateId>(rhs_offset + rhs.initial())};
    result.combined.set_initial(result.initial_lhs);
    return result;
}

ActionSet make_action_set(Lts& model, const std::vector<std::string>& names) {
    ActionSet set;
    for (const std::string& name : names) {
        set.insert(model.action(name));
    }
    return set;
}

}  // namespace dpma::lts
