#include "lts/lts.hpp"

#include <memory>
#include <sstream>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace dpma::lts {

std::string rate_to_string(const Rate& rate) {
    struct Visitor {
        std::string operator()(const RateUnspecified&) const { return "_"; }
        std::string operator()(const RateExp& r) const {
            return "exp(" + std::to_string(r.rate) + ")";
        }
        std::string operator()(const RateImmediate& r) const {
            return "inf(" + std::to_string(r.priority) + ", " + std::to_string(r.weight) + ")";
        }
        std::string operator()(const RatePassive&) const { return "passive"; }
        std::string operator()(const RateGeneral& r) const { return r.dist.to_string(); }
    };
    return std::visit(Visitor{}, rate);
}

Lts::Lts(std::shared_ptr<ActionTable> actions) : actions_(std::move(actions)) {
    DPMA_REQUIRE(actions_ != nullptr, "Lts needs an action table");
}

Lts::Lts() : Lts(std::make_shared<ActionTable>()) {}

Lts::Lts(const Lts& other)
    : actions_(other.actions_),
      names_(other.names_),
      initial_(other.initial_),
      num_states_(other.num_states_),
      num_transitions_(other.num_transitions_) {
    if (other.csr_ != nullptr) {
        // Two contiguous array copies instead of one allocation per state;
        // the adjacency is re-materialised only if the copy is mutated.
        csr_ = std::make_unique<CsrView>(*other.csr_);
    } else {
        out_ = other.out_;
    }
}

Lts& Lts::operator=(const Lts& other) {
    if (this == &other) return *this;
    actions_ = other.actions_;
    names_ = other.names_;
    initial_ = other.initial_;
    num_states_ = other.num_states_;
    num_transitions_ = other.num_transitions_;
    if (other.csr_ != nullptr) {
        out_.clear();
        csr_ = std::make_unique<CsrView>(*other.csr_);
    } else {
        out_ = other.out_;
        csr_.reset();
    }
    return *this;
}

void Lts::thaw() {
    if (!out_.empty() || csr_ == nullptr || num_states_ == 0) return;
    out_.resize(num_states_);
    for (StateId s = 0; s < num_states_; ++s) {
        const auto row = csr_->out(s);
        out_[s].assign(row.begin(), row.end());
    }
}

StateId Lts::add_state(std::string name) {
    DPMA_REQUIRE(num_states_ < kNoState, "state-space overflow");
    thaw();
    csr_.reset();
    out_.emplace_back();
    ++num_states_;
    names_.push_back(std::move(name));
    return static_cast<StateId>(num_states_ - 1);
}

void Lts::add_transition(StateId from, ActionId action, StateId to, Rate rate) {
    DPMA_REQUIRE(from < num_states_ && to < num_states_, "transition endpoint out of range");
    thaw();
    csr_.reset();
    out_[from].push_back(Transition{action, to, std::move(rate)});
    ++num_transitions_;
}

void Lts::reserve_out(StateId state, std::size_t count) {
    DPMA_REQUIRE(state < num_states_, "state out of range");
    thaw();
    out_[state].reserve(count);
}

void Lts::freeze() const {
    if (csr_ != nullptr) return;
    DPMA_REQUIRE(num_transitions_ < 0xFFFFFFFFull, "CSR offsets overflow");
    auto view = std::make_unique<CsrView>();
    view->offsets_.reserve(out_.size() + 1);
    view->data_.reserve(num_transitions_);
    view->offsets_.push_back(0);
    for (const std::vector<Transition>& row : out_) {
        view->data_.insert(view->data_.end(), row.begin(), row.end());
        view->offsets_.push_back(static_cast<std::uint32_t>(view->data_.size()));
    }
    obs::counter("lts.csr.freezes").add();
    csr_ = std::move(view);
}

void Lts::set_initial(StateId state) {
    DPMA_REQUIRE(state < num_states_, "initial state out of range");
    initial_ = state;
}

std::span<const Transition> Lts::out(StateId state) const {
    DPMA_REQUIRE(state < num_states_, "state out of range");
    if (!out_.empty()) return out_[state];
    return csr_->out(state);  // CSR-only copy
}

const std::string& Lts::state_name(StateId state) const {
    DPMA_REQUIRE(state < names_.size(), "state out of range");
    return names_[state];
}

void Lts::set_state_name(StateId state, std::string name) {
    DPMA_REQUIRE(state < names_.size(), "state out of range");
    names_[state] = std::move(name);
}

void Lts::set_rate(StateId from, std::size_t transition_index, Rate rate) {
    DPMA_REQUIRE(from < num_states_, "state out of range");
    if (out_.empty() && csr_ != nullptr) {
        // CSR-only copy: the view *is* the storage — patch it in place (it
        // stays consistent, so no invalidation).
        DPMA_REQUIRE(transition_index < csr_->out(from).size(),
                     "transition index out of range");
        csr_->data_[csr_->offsets_[from] + transition_index].rate = std::move(rate);
        return;
    }
    DPMA_REQUIRE(transition_index < out_[from].size(), "transition index out of range");
    csr_.reset();
    out_[from][transition_index].rate = std::move(rate);
}

std::string Lts::dump() const {
    std::ostringstream outstr;
    outstr << "lts: " << num_states() << " states, " << num_transitions_
           << " transitions, initial " << initial_ << '\n';
    for (StateId s = 0; s < num_states_; ++s) {
        outstr << "  s" << s;
        if (!names_[s].empty()) outstr << " [" << names_[s] << ']';
        outstr << '\n';
        for (const Transition& t : out(s)) {
            outstr << "    --" << actions_->name(t.action) << ", "
                   << rate_to_string(t.rate) << "--> s" << t.target << '\n';
        }
    }
    return outstr.str();
}

}  // namespace dpma::lts
