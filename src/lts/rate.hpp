#pragma once

/// \file rate.hpp
/// Timing annotation of an LTS transition, following the EMPA / Æmilia
/// taxonomy used by the paper:
///
///  * Unspecified — purely functional model, no timing at all;
///  * Exp         — exponentially timed (active) with a positive rate;
///  * Immediate   — zero duration, with a priority level and a weight;
///                  immediate actions take precedence over timed ones
///                  (maximal progress) and, within the highest enabled
///                  priority, fire with probability proportional to weight;
///  * Passive     — reactive action whose timing is decided by the active
///                  partner it synchronises with (the `_' rate of Æmilia);
///  * General     — generally distributed duration, used by the simulator.

#include <string>
#include <variant>

#include "core/dist.hpp"

namespace dpma::lts {

struct RateUnspecified {
    friend bool operator==(const RateUnspecified&, const RateUnspecified&) noexcept = default;
};

struct RateExp {
    double rate = 0.0;  ///< exponential rate (1/mean), > 0
    friend bool operator==(const RateExp&, const RateExp&) noexcept = default;
};

struct RateImmediate {
    int priority = 1;     ///< larger = more urgent
    double weight = 1.0;  ///< relative probability within the same priority
    friend bool operator==(const RateImmediate&, const RateImmediate&) noexcept = default;
};

struct RatePassive {
    friend bool operator==(const RatePassive&, const RatePassive&) noexcept = default;
};

struct RateGeneral {
    Dist dist = Dist::deterministic(0.0);
    friend bool operator==(const RateGeneral&, const RateGeneral&) noexcept = default;
};

using Rate = std::variant<RateUnspecified, RateExp, RateImmediate, RatePassive, RateGeneral>;

[[nodiscard]] inline bool is_passive(const Rate& rate) noexcept {
    return std::holds_alternative<RatePassive>(rate);
}

[[nodiscard]] inline bool is_immediate(const Rate& rate) noexcept {
    return std::holds_alternative<RateImmediate>(rate);
}

[[nodiscard]] inline bool is_exponential(const Rate& rate) noexcept {
    return std::holds_alternative<RateExp>(rate);
}

[[nodiscard]] inline bool is_general(const Rate& rate) noexcept {
    return std::holds_alternative<RateGeneral>(rate);
}

[[nodiscard]] inline bool is_timed(const Rate& rate) noexcept {
    return is_exponential(rate) || is_general(rate);
}

/// Human-readable form used in diagnostics and LTS dumps.
[[nodiscard]] std::string rate_to_string(const Rate& rate);

}  // namespace dpma::lts
