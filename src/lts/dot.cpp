#include "lts/dot.hpp"

#include <sstream>

#include "core/error.hpp"

namespace dpma::lts {
namespace {

/// Escapes double quotes and backslashes for a DOT string literal.
std::string escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

std::string to_dot(const Lts& model, const DotOptions& options) {
    DPMA_REQUIRE(model.num_states() <= options.max_states,
                 "system too large for DOT rendering (" +
                     std::to_string(model.num_states()) + " states; limit " +
                     std::to_string(options.max_states) + ")");
    const ActionId tau = model.actions()->tau();

    std::ostringstream out;
    out << "digraph lts {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
    for (StateId s = 0; s < model.num_states(); ++s) {
        out << "  s" << s << " [";
        if (s == model.initial()) out << "shape=doublecircle, ";
        const std::string& name = model.state_name(s);
        if (options.show_state_names && !name.empty()) {
            out << "label=\"" << escape(name) << "\"";
        } else {
            out << "label=\"" << s << "\"";
        }
        out << "];\n";
    }
    for (StateId s = 0; s < model.num_states(); ++s) {
        for (const Transition& t : model.out(s)) {
            out << "  s" << s << " -> s" << t.target << " [label=\""
                << escape(model.actions()->name(t.action));
            if (options.show_rates &&
                !std::holds_alternative<RateUnspecified>(t.rate)) {
                out << ", " << escape(rate_to_string(t.rate));
            }
            out << "\"";
            if (t.action == tau) out << ", style=dashed";
            out << "];\n";
        }
    }
    out << "}\n";
    return out.str();
}

}  // namespace dpma::lts
