#pragma once

/// \file lts.hpp
/// Labelled transition systems: the common semantic object of the whole
/// toolchain.  The functional phase analyses an Lts ignoring rates; the
/// Markovian phase reads RateExp / RateImmediate annotations; the general
/// phase reads RateGeneral annotations.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/intern.hpp"
#include "lts/rate.hpp"

namespace dpma::lts {

using StateId = std::uint32_t;
using ActionId = Symbol;

inline constexpr StateId kNoState = 0xFFFFFFFFu;

/// Interning table for action labels with the invisible action tau
/// pre-interned as id 0.
class ActionTable {
public:
    ActionTable() { tau_ = interner_.intern("tau"); }

    /// Id of the invisible action.
    [[nodiscard]] ActionId tau() const noexcept { return tau_; }

    ActionId intern(std::string_view name) { return interner_.intern(name); }

    /// Id of \p name, or kNoSymbol when never interned.
    [[nodiscard]] ActionId find(std::string_view name) const noexcept {
        return interner_.find(name);
    }

    [[nodiscard]] const std::string& name(ActionId id) const { return interner_.text(id); }

    [[nodiscard]] std::size_t size() const noexcept { return interner_.size(); }

private:
    StringInterner interner_;
    ActionId tau_;
};

/// One outgoing transition.
struct Transition {
    ActionId action;
    StateId target;
    Rate rate;
};

/// A rooted labelled transition system with rate-annotated transitions.
///
/// Shares its ActionTable through a shared_ptr so that several models built
/// for comparison (with DPM / without DPM, hidden / restricted) agree on
/// action ids.
///
/// Besides the mutable adjacency (`out()`), an Lts can expose a *frozen*
/// compressed-sparse-row view of itself (`csr()`): one contiguous Transition
/// array plus per-state offsets.  The analysis hot paths (composition,
/// saturation, partition refinement, CTMC generator build) iterate the CSR
/// view instead of chasing one heap vector per state.  The view is built
/// lazily, cached, and dropped by any mutation; copying an Lts never copies
/// the cache (each copy re-freezes on demand), so sharing a frozen Lts
/// read-only across threads is safe as long as it was frozen first.
class Lts {
public:
    /// Frozen CSR adjacency: transitions of state s are
    /// data()[offsets()[s] .. offsets()[s+1]).  Pointers stay valid until the
    /// owning Lts is mutated or destroyed.
    class CsrView {
    public:
        [[nodiscard]] std::span<const Transition> out(StateId state) const noexcept {
            return {data_.data() + offsets_[state],
                    data_.data() + offsets_[state + 1]};
        }
        /// All transitions, grouped by source state in state order.
        [[nodiscard]] std::span<const Transition> transitions() const noexcept {
            return data_;
        }
        /// num_states() + 1 offsets into transitions().
        [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
            return offsets_;
        }
        [[nodiscard]] std::size_t num_states() const noexcept {
            return offsets_.size() - 1;
        }

    private:
        friend class Lts;
        std::vector<Transition> data_;
        std::vector<std::uint32_t> offsets_;
    };

    explicit Lts(std::shared_ptr<ActionTable> actions);

    /// Creates a fresh action table and an empty LTS over it.
    Lts();

    // Copies never alias the source's CSR view.  Copying a *frozen* source
    // duplicates just the two contiguous CSR arrays (Transition is trivially
    // copyable) and serves reads from them; the per-state adjacency is
    // re-materialised lazily on the first structural mutation.  Copying an
    // unfrozen source copies the adjacency as before.
    Lts(const Lts& other);
    Lts& operator=(const Lts& other);
    Lts(Lts&&) noexcept = default;
    Lts& operator=(Lts&&) noexcept = default;
    ~Lts() = default;

    [[nodiscard]] const std::shared_ptr<ActionTable>& actions() const noexcept {
        return actions_;
    }

    /// Adds a state; \p name is optional diagnostic text (e.g. the tuple of
    /// component-local states the composer produced it from).
    StateId add_state(std::string name = {});

    void add_transition(StateId from, ActionId action, StateId to, Rate rate = RateUnspecified{});

    /// Reserves room for \p count outgoing transitions of \p state (builders
    /// that know their degrees avoid the vector growth doublings).
    void reserve_out(StateId state, std::size_t count);

    void set_initial(StateId state);
    [[nodiscard]] StateId initial() const noexcept { return initial_; }

    [[nodiscard]] std::size_t num_states() const noexcept { return num_states_; }
    [[nodiscard]] std::size_t num_transitions() const noexcept { return num_transitions_; }

    [[nodiscard]] std::span<const Transition> out(StateId state) const;

    [[nodiscard]] const std::string& state_name(StateId state) const;
    void set_state_name(StateId state, std::string name);

    /// Convenience: interns \p name in the shared action table.
    ActionId action(std::string_view name) { return actions_->intern(name); }

    /// Multi-line textual dump (for debugging and golden tests).
    [[nodiscard]] std::string dump() const;

    /// Replaces the rate of an existing transition (used by model refiners
    /// that swap exponential delays for general ones).
    void set_rate(StateId from, std::size_t transition_index, Rate rate);

    /// Applies \p fn(action, rate&) to every transition, in state order.
    /// Bulk form of set_rate for sweep-time model patching: one pass over
    /// whichever representation is live, no per-call bounds checks.  A
    /// CSR-only copy is patched in place (the view stays consistent); the
    /// adjacency form drops its CSR cache first.
    template <typename Fn>
    void mutate_rates(Fn&& fn) {
        if (out_.empty() && csr_ != nullptr) {
            for (Transition& t : csr_->data_) fn(t.action, t.rate);
            return;
        }
        csr_.reset();
        for (std::vector<Transition>& row : out_) {
            for (Transition& t : row) fn(t.action, t.rate);
        }
    }

    /// Builds (and caches) the CSR view.  Idempotent; const because the view
    /// is a cache of the logical state, not part of it.
    void freeze() const;

    /// True when a CSR view is currently cached.
    [[nodiscard]] bool is_frozen() const noexcept { return csr_ != nullptr; }

    /// The CSR view, freezing first if needed.  The reference is invalidated
    /// by any mutation (add_state / add_transition / set_rate).
    [[nodiscard]] const CsrView& csr() const {
        freeze();
        return *csr_;
    }

private:
    /// Rebuilds the per-state adjacency from the CSR view (CSR-only copies
    /// materialise it on their first structural mutation).
    void thaw();

    std::shared_ptr<ActionTable> actions_;
    /// Empty in a CSR-only copy of a frozen Lts; reads then go through csr_.
    std::vector<std::vector<Transition>> out_;
    std::vector<std::string> names_;
    StateId initial_ = kNoState;
    std::size_t num_states_ = 0;
    std::size_t num_transitions_ = 0;
    mutable std::unique_ptr<CsrView> csr_;
};

}  // namespace dpma::lts
