#pragma once

/// \file ops.hpp
/// Structural operations on labelled transition systems used by the
/// functional phase of the methodology: hiding and restriction of action
/// sets (the two sides of the noninterference check), reachability pruning,
/// deadlock detection, weak saturation and disjoint union.

#include <unordered_set>
#include <vector>

#include "lts/lts.hpp"

namespace dpma::lts {

/// Set of action ids.
using ActionSet = std::unordered_set<ActionId>;

/// Returns a copy of \p model in which every transition labelled with an
/// action in \p actions is relabelled to tau (Æmilia/CCS hiding, written
/// M / H in the paper).  Rates are preserved.
[[nodiscard]] Lts hide(const Lts& model, const ActionSet& actions);

/// Returns a copy of \p model in which every transition labelled with an
/// action in \p actions is removed (CCS restriction, written M \ H).
[[nodiscard]] Lts restrict_actions(const Lts& model, const ActionSet& actions);

/// Returns the sub-LTS reachable from the initial state (states renumbered).
[[nodiscard]] Lts reachable_part(const Lts& model);

/// States with no outgoing transitions (after an optional restriction these
/// witness deadlocks introduced by a DPM, cf. the blocked rpc client).
[[nodiscard]] std::vector<StateId> deadlock_states(const Lts& model);

/// Result of collapsing the tau-strongly-connected components of a system.
struct TauCollapseResult {
    Lts collapsed;
    /// representative_of[original state] = collapsed state id.
    std::vector<StateId> representative_of;
};

/// Collapses every tau-SCC (set of mutually tau-reachable states) into one
/// state.  Sound for weak bisimulation: mutually tau-reachable states are
/// weakly bisimilar.  Used as a pre-pass before saturation, where it turns
/// the mostly-hidden systems of the noninterference check from O(n^2)
/// saturations into small ones.  Tau self-loops are dropped; rates are not
/// meaningful after this transformation and are reset.
[[nodiscard]] TauCollapseResult collapse_tau_sccs(const Lts& model);

/// Weak saturation: for every visible action a adds s =a=> t whenever
/// s (tau)* -a-> (tau)* t, and replaces tau transitions by s =tau=> t for all
/// tau-paths of length >= 0 (hence reflexive tau self-loops).  Strong
/// bisimilarity on the saturated system coincides with weak bisimilarity on
/// the original one.  All rates are dropped (functional analysis only).
[[nodiscard]] Lts saturate(const Lts& model);

/// Result of a disjoint union of two systems over a merged action table.
struct UnionResult {
    Lts combined;
    StateId initial_lhs;
    StateId initial_rhs;
};

/// Disjoint union of \p lhs and \p rhs.  Action ids are merged by name, so
/// the inputs may use different ActionTable instances.
[[nodiscard]] UnionResult disjoint_union(const Lts& lhs, const Lts& rhs);

/// Interns the given action names and returns the id set.  Names that were
/// never used in the model are interned anyway (harmless: no transition
/// carries them).
[[nodiscard]] ActionSet make_action_set(Lts& model, const std::vector<std::string>& names);

}  // namespace dpma::lts
