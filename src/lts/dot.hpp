#pragma once

/// \file dot.hpp
/// Graphviz export of labelled transition systems — handy for inspecting
/// the small functional models of the methodology (the paper's Fig. 2
/// topologies unfold into graphs of a few dozen states).

#include <string>

#include "lts/lts.hpp"

namespace dpma::lts {

struct DotOptions {
    bool show_rates = true;        ///< append the rate to each edge label
    bool show_state_names = true;  ///< use recorded state names when present
    std::size_t max_states = 500;  ///< refuse to render unreadably large graphs
};

/// Renders \p model as a Graphviz digraph.  The initial state is drawn with
/// a double circle; tau transitions are dashed.  Throws when the system
/// exceeds options.max_states (dot output would be unusable anyway).
[[nodiscard]] std::string to_dot(const Lts& model, const DotOptions& options = {});

}  // namespace dpma::lts
