#include "analysis/flow/transparency.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "adl/compose.hpp"
#include "analysis/flow/cfg.hpp"
#include "analysis/flow/fixpoint.hpp"
#include "core/error.hpp"
#include "lts/ops.hpp"
#include "noninterference/noninterference.hpp"
#include "obs/metrics.hpp"

namespace dpma::analysis::flow {
namespace {

struct HighLabel {
    std::string text;
    std::string from_instance;
    std::string from_action;
    std::string to_instance;  // empty unless a sync label
    std::string to_action;
    bool sync = false;
};

HighLabel parse_high_label(const std::string& label) {
    HighLabel out;
    out.text = label;
    const auto split_dot = [&label](const std::string& part, std::string& instance,
                                    std::string& action) {
        const std::size_t dot = part.find('.');
        DPMA_REQUIRE(dot != std::string::npos && dot > 0 && dot + 1 < part.size(),
                     "malformed high label '" + label + "' (want I.a or I.a#J.b)");
        instance = part.substr(0, dot);
        action = part.substr(dot + 1);
    };
    const std::size_t hash = label.find('#');
    if (hash == std::string::npos) {
        split_dot(label, out.from_instance, out.from_action);
    } else {
        out.sync = true;
        split_dot(label.substr(0, hash), out.from_instance, out.from_action);
        split_dot(label.substr(hash + 1), out.to_instance, out.to_action);
    }
    return out;
}

std::string attachment_label(const adl::Attachment& attachment) {
    return attachment.from_instance + "." + attachment.from_port + "#" +
           attachment.to_instance + "." + attachment.to_port;
}

/// Per-seed tainted CFG region: reachable after a high edge but not
/// reachable without one.  Interaction ports fired from the region are the
/// channels through which the DPM's activity leaks out of the seed.
std::unordered_set<std::string> suspect_ports(const Cfg& cfg,
                                              const std::unordered_set<std::string>& high) {
    const auto reach = [&cfg](std::span<const std::uint32_t> seeds,
                              const std::unordered_set<std::string>* skip) {
        std::vector<char> seen(cfg.num_nodes, 0);
        for (const std::uint32_t s : seeds) seen[s] = 1;
        run_fixpoint(cfg.num_nodes, seeds, [&](std::uint32_t node, Worklist& worklist) {
            for (const std::uint32_t e : cfg.out(node)) {
                if (skip != nullptr && skip->contains(cfg.edges[e].action->name)) continue;
                const std::uint32_t target = cfg.edges[e].to;
                if (seen[target] == 0) {
                    seen[target] = 1;
                    worklist.push(target);
                }
            }
        });
        return seen;
    };
    if (cfg.entry.empty()) return {};
    const std::uint32_t entry[] = {cfg.entry[0]};
    const std::vector<char> without_high = reach(entry, &high);
    std::vector<std::uint32_t> post_high;
    for (const CfgEdge& edge : cfg.edges) {
        if (high.contains(edge.action->name)) post_high.push_back(edge.to);
    }
    const std::vector<char> after_high = reach(post_high, nullptr);

    std::unordered_set<std::string> ports;
    for (const CfgEdge& edge : cfg.edges) {
        if (edge.port == PortKind::Internal) continue;
        if (after_high[edge.from] != 0 && without_high[edge.from] == 0) {
            ports.insert(edge.action->name);
        }
    }
    return ports;
}

/// How one member-local action participates in the slice product.
enum class MoveKind : std::uint8_t { Free, SyncOut, SyncIn, Blocked };

struct MoveClass {
    MoveKind kind = MoveKind::Blocked;
    std::string label;            // product label for Free / SyncOut
    std::size_t partner = 0;      // slice-member index, SyncOut only
    Symbol partner_port = kNoSymbol;  // bare symbol of the partner's port
};

struct SliceCheck {
    bool passed = false;
    bool truncated = false;
    bool high_occurs = false;
    std::size_t states = 0;
};

/// Builds the product of the slice members — boundary attachments stay
/// visible as free interface actions, slice-internal attachments
/// synchronise exactly as adl::compose would — and runs the
/// observer-relative noninterference check with the interface as observer.
std::optional<SliceCheck> check_slice(const adl::ArchiType& archi,
                                      const std::vector<std::size_t>& members,
                                      const TransparencyOptions& options) {
    lts::ActionTable scratch;
    std::vector<adl::LocalLts> locals;
    std::vector<const adl::ElemType*> types;
    std::vector<std::size_t> member_of_instance(archi.instances.size(), SIZE_MAX);
    try {
        for (std::size_t m = 0; m < members.size(); ++m) {
            const adl::Instance& instance = archi.instances[members[m]];
            const adl::ElemType* type = archi.find_type(instance.type);
            DPMA_REQUIRE(type != nullptr, "unknown element type " + instance.type);
            types.push_back(type);
            locals.push_back(adl::build_local_lts(*type, instance.args, scratch,
                                                  options.max_local_states));
            member_of_instance[members[m]] = m;
        }
    } catch (const ModelError&) {
        return std::nullopt;  // a member's local LTS blew the state budget
    }

    // Classify every (member, bare action) once.
    std::vector<std::unordered_map<Symbol, MoveClass>> classes(members.size());
    lts::Lts product;
    std::unordered_set<Symbol> interface_labels;
    for (std::size_t m = 0; m < members.size(); ++m) {
        const adl::Instance& instance = archi.instances[members[m]];
        for (const auto& row : locals[m].out) {
            for (const adl::LocalLts::LocalTransition& t : row) {
                if (classes[m].contains(t.action)) continue;
                MoveClass move;
                const std::string& name = scratch.name(t.action);
                const PortKind kind = port_kind(*types[m], name);
                if (kind == PortKind::Internal) {
                    move.kind = MoveKind::Free;
                    move.label = instance.name + "." + name;
                } else {
                    const adl::Attachment* attachment = nullptr;
                    for (const adl::Attachment& candidate : archi.attachments) {
                        const bool from_side = kind == PortKind::Output &&
                                               candidate.from_instance == instance.name &&
                                               candidate.from_port == name;
                        const bool to_side = kind == PortKind::Input &&
                                             candidate.to_instance == instance.name &&
                                             candidate.to_port == name;
                        if (from_side || to_side) {
                            attachment = &candidate;
                            break;
                        }
                    }
                    if (attachment == nullptr) {
                        move.kind = MoveKind::Blocked;  // unattached => restricted
                    } else {
                        const std::string& partner_name = kind == PortKind::Output
                                                              ? attachment->to_instance
                                                              : attachment->from_instance;
                        const adl::Instance* partner = archi.find_instance(partner_name);
                        std::size_t partner_member = SIZE_MAX;
                        if (partner != nullptr) {
                            for (std::size_t i = 0; i < archi.instances.size(); ++i) {
                                if (&archi.instances[i] == partner) {
                                    partner_member = member_of_instance[i];
                                    break;
                                }
                            }
                        }
                        if (partner_member == SIZE_MAX) {
                            // Boundary: the context's side of the attachment —
                            // visible interface action with the composed label.
                            move.kind = MoveKind::Free;
                            move.label = attachment_label(*attachment);
                            interface_labels.insert(product.action(move.label));
                        } else if (kind == PortKind::Output) {
                            move.kind = MoveKind::SyncOut;
                            move.label = attachment_label(*attachment);
                            move.partner = partner_member;
                            move.partner_port = scratch.find(
                                kind == PortKind::Output ? attachment->to_port
                                                         : attachment->from_port);
                        } else {
                            move.kind = MoveKind::SyncIn;  // moved by the initiator
                        }
                    }
                }
                classes[m].emplace(t.action, std::move(move));
            }
        }
    }

    // Breadth-first product exploration.
    std::map<std::vector<std::uint32_t>, lts::StateId> ids;
    std::vector<std::vector<std::uint32_t>> frontier;
    SliceCheck result;
    std::vector<std::uint32_t> initial(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) initial[m] = locals[m].initial;
    ids.emplace(initial, product.add_state());
    product.set_initial(0);
    frontier.push_back(initial);

    const auto state_of = [&ids, &product, &frontier,
                           &result, &options](const std::vector<std::uint32_t>& tuple)
        -> std::optional<lts::StateId> {
        const auto found = ids.find(tuple);
        if (found != ids.end()) return found->second;
        if (ids.size() >= options.max_slice_states) {
            result.truncated = true;
            return std::nullopt;
        }
        const lts::StateId id = product.add_state();
        ids.emplace(tuple, id);
        frontier.push_back(tuple);
        return id;
    };

    for (std::size_t cursor = 0; cursor < frontier.size() && !result.truncated;
         ++cursor) {
        const std::vector<std::uint32_t> tuple = frontier[cursor];
        const lts::StateId source = ids.at(tuple);
        for (std::size_t m = 0; m < members.size() && !result.truncated; ++m) {
            for (const adl::LocalLts::LocalTransition& t : locals[m].out[tuple[m]]) {
                const MoveClass& move = classes[m].at(t.action);
                if (move.kind == MoveKind::Blocked || move.kind == MoveKind::SyncIn) {
                    continue;
                }
                if (move.kind == MoveKind::Free) {
                    std::vector<std::uint32_t> next = tuple;
                    next[m] = t.target;
                    const auto target = state_of(next);
                    if (!target) break;
                    product.add_transition(source, product.action(move.label), *target,
                                           t.rate);
                    continue;
                }
                // SyncOut: joint move with every matching follower transition.
                for (const adl::LocalLts::LocalTransition& follower :
                     locals[move.partner].out[tuple[move.partner]]) {
                    if (follower.action != move.partner_port) continue;
                    std::vector<std::uint32_t> next = tuple;
                    next[m] = t.target;
                    next[move.partner] = follower.target;
                    const auto target = state_of(next);
                    if (!target) break;
                    product.add_transition(source, product.action(move.label), *target,
                                           t.rate);
                }
            }
        }
    }
    result.states = product.num_states();
    if (result.truncated) return result;

    lts::ActionSet high;
    for (const std::string& label : options.high_labels) {
        const Symbol s = product.actions()->find(label);
        if (s != kNoSymbol) high.insert(s);
    }
    // A label is only interned when a transition uses it, so a found symbol
    // means the high action can actually fire inside the slice.
    result.high_occurs = !high.empty();
    if (!result.high_occurs) return result;

    lts::ActionSet interface;
    for (const Symbol s : interface_labels) interface.insert(s);
    result.passed = noninterference::check(product, high, interface).noninterfering;
    return result;
}

std::vector<std::string> names_of(const adl::ArchiType& archi,
                                  const std::vector<std::size_t>& members) {
    std::vector<std::string> names;
    names.reserve(members.size());
    for (const std::size_t m : members) names.push_back(archi.instances[m].name);
    return names;
}

std::string join_names(const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& name : names) {
        if (!out.empty()) out += ", ";
        out += name;
    }
    return out;
}

}  // namespace

const char* verdict_name(TransparencyVerdict verdict) {
    switch (verdict) {
        case TransparencyVerdict::Transparent: return "transparent";
        case TransparencyVerdict::Leaks: return "leaks";
        case TransparencyVerdict::Inconclusive: return "inconclusive";
    }
    return "?";
}

TransparencyResult analyze_transparency(const adl::ArchiType& archi,
                                        const TransparencyOptions& options) {
    static obs::Counter& proved = obs::counter("analysis.transparency.proved");
    static obs::Counter& inconclusive = obs::counter("analysis.transparency.inconclusive");
    static obs::Counter& leaks = obs::counter("analysis.transparency.leaks");

    DPMA_REQUIRE(!options.high_labels.empty(),
                 "transparency analysis needs at least one high label");
    DPMA_REQUIRE(archi.find_instance(options.low_instance) != nullptr,
                 "unknown low instance: " + options.low_instance);

    const auto instance_index = [&archi](const std::string& name) {
        for (std::size_t i = 0; i < archi.instances.size(); ++i) {
            if (archi.instances[i].name == name) return i;
        }
        throw ModelError("high label names unknown instance '" + name + "'");
    };

    // Seeds: every instance a high label touches, plus its per-instance set
    // of high action names (for the taint regions).
    std::vector<std::size_t> seeds;
    std::unordered_map<std::size_t, std::unordered_set<std::string>> high_actions;
    for (const std::string& text : options.high_labels) {
        const HighLabel label = parse_high_label(text);
        const std::size_t from = instance_index(label.from_instance);
        high_actions[from].insert(label.from_action);
        seeds.push_back(from);
        if (label.sync) {
            const std::size_t to = instance_index(label.to_instance);
            high_actions[to].insert(label.to_action);
            seeds.push_back(to);
        }
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

    TransparencyResult result;
    const std::size_t low = instance_index(options.low_instance);
    if (std::find(seeds.begin(), seeds.end(), low) != seeds.end()) {
        result.verdict = TransparencyVerdict::Inconclusive;
        result.reason = "a high label synchronises directly with the low observer '" +
                        options.low_instance + "'";
        inconclusive.add();
        return result;
    }

    // CFGs of the element types the taint pass needs.
    std::unordered_map<const adl::ElemType*, Cfg> cfgs;
    const auto cfg_of = [&archi, &cfgs](std::size_t instance) -> const Cfg* {
        const adl::ElemType* type = archi.find_type(archi.instances[instance].type);
        if (type == nullptr) return nullptr;
        const auto found = cfgs.find(type);
        if (found != cfgs.end()) return &found->second;
        return &cfgs.emplace(type, build_cfg(*type)).first->second;
    };

    // Taint flood over the attachment graph.  Seeds propagate only through
    // ports fired from their tainted region; every other tainted instance
    // propagates through all of its attachments (synchronisation carries
    // influence in both directions).
    const std::size_t num_instances = archi.instances.size();
    std::vector<char> tainted(num_instances, 0);
    std::vector<std::size_t> parent(num_instances, SIZE_MAX);
    std::vector<std::string> parent_label(num_instances);
    std::vector<std::uint32_t> flood_seeds;
    for (const std::size_t seed : seeds) {
        tainted[seed] = 1;
        flood_seeds.push_back(static_cast<std::uint32_t>(seed));
    }
    std::vector<std::unordered_set<std::string>> seed_ports(num_instances);
    for (const std::size_t seed : seeds) {
        const Cfg* cfg = cfg_of(seed);
        if (cfg != nullptr) seed_ports[seed] = suspect_ports(*cfg, high_actions[seed]);
    }
    run_fixpoint(num_instances, flood_seeds, [&](std::uint32_t node, Worklist& worklist) {
        const std::string& name = archi.instances[node].name;
        const bool seed = std::find(seeds.begin(), seeds.end(), node) != seeds.end();
        for (const adl::Attachment& attachment : archi.attachments) {
            std::size_t other = SIZE_MAX;
            const std::string* port = nullptr;
            if (attachment.from_instance == name) {
                port = &attachment.from_port;
                const auto* to = archi.find_instance(attachment.to_instance);
                if (to != nullptr) other = static_cast<std::size_t>(to - archi.instances.data());
            } else if (attachment.to_instance == name) {
                port = &attachment.to_port;
                const auto* from = archi.find_instance(attachment.from_instance);
                if (from != nullptr) {
                    other = static_cast<std::size_t>(from - archi.instances.data());
                }
            } else {
                continue;
            }
            if (other == SIZE_MAX || tainted[other] != 0) continue;
            if (seed && !seed_ports[node].contains(*port)) continue;
            tainted[other] = 1;
            parent[other] = node;
            parent_label[other] = attachment_label(attachment);
            worklist.push(static_cast<std::uint32_t>(other));
        }
    });

    // Stage 1: the seed slice.
    std::string failure;
    const auto attempt = [&](const std::vector<std::size_t>& members) -> bool {
        result.slice_instances = names_of(archi, members);
        const std::optional<SliceCheck> check = check_slice(archi, members, options);
        if (!check) {
            failure = "a slice member's local state space exceeds the budget";
            return false;
        }
        result.slice_states = check->states;
        if (check->truncated) {
            failure = "slice product exceeds the state budget (" +
                      std::to_string(options.max_slice_states) + ")";
            return false;
        }
        if (!check->high_occurs) {
            failure = "no high label can fire inside the slice";
            return false;
        }
        if (!check->passed) {
            failure = "slice {" + join_names(result.slice_instances) +
                      "} distinguishes hiding from removing the high actions";
            return false;
        }
        return true;
    };

    bool passed = attempt(seeds);
    if (!passed) {
        std::vector<std::size_t> grown;
        for (std::size_t i = 0; i < num_instances; ++i) {
            if (tainted[i] != 0 && i != low) grown.push_back(i);
        }
        if (grown != seeds) passed = attempt(grown);
    }
    if (passed) {
        result.verdict = TransparencyVerdict::Transparent;
        result.reason = "proved on slice {" + join_names(result.slice_instances) + "} (" +
                        std::to_string(result.slice_states) +
                        " product states, interface visible); weak bisimilarity is a "
                        "congruence for composition and hiding, so the verdict lifts "
                        "to the full architecture";
        proved.add();
        return result;
    }

    if (tainted[low] != 0) {
        // Reconstruct the interaction chain seed -> low.
        std::vector<std::string> chain;
        for (std::size_t at = low; parent[at] != SIZE_MAX; at = parent[at]) {
            chain.push_back(parent_label[at]);
        }
        std::reverse(chain.begin(), chain.end());
        result.verdict = TransparencyVerdict::Leaks;
        result.leak_chain = std::move(chain);
        std::string via;
        for (const std::string& link : result.leak_chain) {
            if (!via.empty()) via += " -> ";
            via += link;
        }
        result.reason = failure + "; tainted interactions reach the low observer via " +
                        (via.empty() ? std::string("a direct attachment") : via);
        leaks.add();
        return result;
    }

    result.verdict = TransparencyVerdict::Inconclusive;
    result.reason = failure;
    inconclusive.add();
    return result;
}

}  // namespace dpma::analysis::flow
