#include "analysis/flow/interval.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/flow/fixpoint.hpp"
#include "lts/rate.hpp"

namespace dpma::analysis::flow {
namespace {

// Widening thresholds: landmark widening after a few unstable joins, a hard
// jump to +-infinity when landmark chasing itself fails to converge (two
// parameters can leapfrog each other's guard bounds indefinitely).
constexpr std::uint32_t kWidenVisits = 4;
constexpr std::uint32_t kGiveUpVisits = 64;

[[nodiscard]] bool is_inf(long v) noexcept { return v == kNegInf || v == kPosInf; }

long sat_add(long a, long b) {
    if (a == kPosInf || b == kPosInf) return kPosInf;
    if (a == kNegInf || b == kNegInf) return kNegInf;
    long r = 0;
    if (__builtin_add_overflow(a, b, &r)) return a > 0 ? kPosInf : kNegInf;
    return r;
}

long sat_neg(long a) {
    if (a == kPosInf) return kNegInf;
    if (a == kNegInf) return kPosInf;
    return -a;
}

long sat_mul(long a, long b) {
    if (a == 0 || b == 0) return 0;
    const bool negative = (a < 0) != (b < 0);
    if (is_inf(a) || is_inf(b)) return negative ? kNegInf : kPosInf;
    long r = 0;
    if (__builtin_mul_overflow(a, b, &r)) return negative ? kNegInf : kPosInf;
    return r;
}

long sat_div(long a, long b) {
    if (is_inf(b)) return 0;
    if (b == 0) return a >= 0 ? kPosInf : kNegInf;  // callers exclude this
    if (is_inf(a)) return ((a > 0) != (b < 0)) ? kPosInf : kNegInf;
    return a / b;
}

Interval add(Interval a, Interval b) { return {sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)}; }

Interval sub(Interval a, Interval b) {
    return {sat_add(a.lo, sat_neg(b.hi)), sat_add(a.hi, sat_neg(b.lo))};
}

Interval mul(Interval a, Interval b) {
    const long c[4] = {sat_mul(a.lo, b.lo), sat_mul(a.lo, b.hi), sat_mul(a.hi, b.lo),
                       sat_mul(a.hi, b.hi)};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval div(Interval a, Interval b) {
    if (b.lo <= 0 && b.hi >= 0) return Interval::top();  // may divide by zero
    const long c[4] = {sat_div(a.lo, b.lo), sat_div(a.lo, b.hi), sat_div(a.hi, b.lo),
                       sat_div(a.hi, b.hi)};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

Interval mod(Interval a, Interval b) {
    if (b.lo <= 0) return Interval::top();  // non-positive divisor possible
    const long m = b.hi == kPosInf ? kPosInf : b.hi - 1;
    if (a.lo >= 0) return {0, std::min(a.hi, m)};
    return {sat_neg(m), m};
}

using CmpOp = adl::BoolExpr::CmpOp;

/// L op R with the operands swapped: R mirror(op) L.
CmpOp mirror(CmpOp op) {
    switch (op) {
        case CmpOp::Lt: return CmpOp::Gt;
        case CmpOp::Le: return CmpOp::Ge;
        case CmpOp::Gt: return CmpOp::Lt;
        case CmpOp::Ge: return CmpOp::Le;
        case CmpOp::Eq:
        case CmpOp::Ne: break;
    }
    return op;
}

CmpOp negate(CmpOp op) {
    switch (op) {
        case CmpOp::Lt: return CmpOp::Ge;
        case CmpOp::Le: return CmpOp::Gt;
        case CmpOp::Gt: return CmpOp::Le;
        case CmpOp::Ge: return CmpOp::Lt;
        case CmpOp::Eq: return CmpOp::Ne;
        case CmpOp::Ne: return CmpOp::Eq;
    }
    return op;
}

/// Narrows \p v to the values satisfying `v op bound`.
Interval constrain(Interval v, CmpOp op, Interval bound) {
    switch (op) {
        case CmpOp::Lt:
            if (bound.hi != kPosInf) v.hi = std::min(v.hi, bound.hi - 1);
            return v;
        case CmpOp::Le:
            v.hi = std::min(v.hi, bound.hi);
            return v;
        case CmpOp::Gt:
            if (bound.lo != kNegInf) v.lo = std::max(v.lo, bound.lo + 1);
            return v;
        case CmpOp::Ge:
            v.lo = std::max(v.lo, bound.lo);
            return v;
        case CmpOp::Eq: return interval_meet(v, bound);
        case CmpOp::Ne:
            if (bound.lo == bound.hi && !bound.empty()) {
                if (v.lo == v.hi && v.lo == bound.lo) return {kPosInf, kNegInf};
                if (v.lo == bound.lo) ++v.lo;
                if (v.hi == bound.lo) --v.hi;
            }
            return v;
    }
    return v;
}

/// Can `L op R` hold for some choice of values?
bool satisfiable(Interval l, CmpOp op, Interval r) {
    if (l.empty() || r.empty()) return false;
    switch (op) {
        case CmpOp::Lt: return l.lo < r.hi;
        case CmpOp::Le: return l.lo <= r.hi;
        case CmpOp::Gt: return l.hi > r.lo;
        case CmpOp::Ge: return l.hi >= r.lo;
        case CmpOp::Eq: return !interval_meet(l, r).empty();
        case CmpOp::Ne: return !(l.lo == l.hi && r.lo == r.hi && l.lo == r.lo);
    }
    return true;
}

bool refine(const adl::BoolExpr* guard, std::vector<Interval>& env, bool negated);

bool refine_cmp(const adl::BoolExpr& cmp, std::vector<Interval>& env, bool negated) {
    const CmpOp op = negated ? negate(cmp.cmp_op()) : cmp.cmp_op();
    const adl::Expr& lhs = *cmp.cmp_lhs();
    const adl::Expr& rhs = *cmp.cmp_rhs();
    const Interval l = eval_interval(lhs, env);
    const Interval r = eval_interval(rhs, env);
    if (!satisfiable(l, op, r)) return false;
    if (lhs.kind() == adl::Expr::Kind::Param && lhs.param_index() < env.size()) {
        env[lhs.param_index()] = constrain(env[lhs.param_index()], op, r);
        if (env[lhs.param_index()].empty()) return false;
    }
    if (rhs.kind() == adl::Expr::Kind::Param && rhs.param_index() < env.size()) {
        env[rhs.param_index()] = constrain(env[rhs.param_index()], mirror(op), l);
        if (env[rhs.param_index()].empty()) return false;
    }
    return true;
}

/// Disjunction: each arm refines a copy; the result is the pointwise join of
/// the satisfiable arms.
bool refine_or(const adl::BoolExpr* a, const adl::BoolExpr* b, std::vector<Interval>& env,
               bool negated) {
    std::vector<Interval> left = env;
    std::vector<Interval> right = env;
    const bool ok_left = refine(a, left, negated);
    const bool ok_right = refine(b, right, negated);
    if (!ok_left && !ok_right) return false;
    if (!ok_left) {
        env = std::move(right);
    } else if (!ok_right) {
        env = std::move(left);
    } else {
        for (std::size_t i = 0; i < env.size(); ++i) {
            env[i] = interval_join(left[i], right[i]);
        }
    }
    return true;
}

bool refine(const adl::BoolExpr* guard, std::vector<Interval>& env, bool negated) {
    if (guard == nullptr) return !negated;
    using Kind = adl::BoolExpr::Kind;
    switch (guard->kind()) {
        case Kind::True: return !negated;
        case Kind::Cmp: return refine_cmp(*guard, env, negated);
        case Kind::And:
            // !(a && b) == !a || !b
            if (negated) return refine_or(guard->lhs().get(), guard->rhs().get(), env, true);
            return refine(guard->lhs().get(), env, false) &&
                   refine(guard->rhs().get(), env, false);
        case Kind::Or:
            if (negated) {
                return refine(guard->lhs().get(), env, true) &&
                       refine(guard->rhs().get(), env, true);
            }
            return refine_or(guard->lhs().get(), guard->rhs().get(), env, false);
        case Kind::Not: return refine(guard->lhs().get(), env, !negated);
    }
    return true;
}

/// Guard bounds mentioning \p param, evaluated in \p env — the widening
/// landmarks.  `cond(n < cap)` contributes cap-1, cap and cap+1, so a
/// growing `n` stabilises at the guard bound instead of infinity.
void collect_landmarks(const adl::BoolExpr* guard, std::size_t param,
                       std::span<const Interval> env, std::vector<long>& out) {
    if (guard == nullptr) return;
    using Kind = adl::BoolExpr::Kind;
    switch (guard->kind()) {
        case Kind::True: return;
        case Kind::Cmp: {
            const adl::Expr& lhs = *guard->cmp_lhs();
            const adl::Expr& rhs = *guard->cmp_rhs();
            const bool lhs_is_param =
                lhs.kind() == adl::Expr::Kind::Param && lhs.param_index() == param;
            const bool rhs_is_param =
                rhs.kind() == adl::Expr::Kind::Param && rhs.param_index() == param;
            if (!lhs_is_param && !rhs_is_param) return;
            const Interval bound = eval_interval(lhs_is_param ? rhs : lhs, env);
            for (const long v : {bound.lo, bound.hi}) {
                if (is_inf(v)) continue;
                out.push_back(v - 1);
                out.push_back(v);
                out.push_back(v + 1);
            }
            return;
        }
        case Kind::And:
        case Kind::Or:
            collect_landmarks(guard->lhs().get(), param, env, out);
            collect_landmarks(guard->rhs().get(), param, env, out);
            return;
        case Kind::Not: collect_landmarks(guard->lhs().get(), param, env, out); return;
    }
}

}  // namespace

Interval interval_join(Interval a, Interval b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval interval_meet(Interval a, Interval b) {
    return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval eval_interval(const adl::Expr& expr, std::span<const Interval> env) {
    using Kind = adl::Expr::Kind;
    switch (expr.kind()) {
        case Kind::Const: return Interval::constant(expr.value());
        case Kind::Param:
            return expr.param_index() < env.size() ? env[expr.param_index()]
                                                   : Interval::top();
        default: break;
    }
    const Interval l = eval_interval(*expr.lhs(), env);
    const Interval r = eval_interval(*expr.rhs(), env);
    if (l.empty() || r.empty()) return {kPosInf, kNegInf};
    switch (expr.kind()) {
        case Kind::Add: return add(l, r);
        case Kind::Sub: return sub(l, r);
        case Kind::Mul: return mul(l, r);
        case Kind::Div: return div(l, r);
        case Kind::Mod: return mod(l, r);
        default: return Interval::top();
    }
}

bool refine_by_guard(const adl::BoolExpr* guard, std::vector<Interval>& env) {
    return refine(guard, env, false);
}

bool IntervalResult::feasible(std::size_t instance, std::uint32_t behavior,
                              const adl::Alternative& alt) const {
    if (instance >= per_instance.size()) return true;
    const InstanceIntervals& intervals = per_instance[instance];
    if (behavior >= intervals.reachable.size()) return true;
    if (intervals.reachable[behavior] == 0) return false;
    std::vector<Interval> env = intervals.envs[behavior];
    return refine_by_guard(alt.guard.get(), env);
}

IntervalResult analyze_intervals(const adl::ArchiType& archi,
                                 std::span<const Cfg* const> cfg_of_instance,
                                 const std::string& file, std::vector<Diagnostic>& out) {
    IntervalResult result;
    result.per_instance.resize(archi.instances.size());

    for (std::size_t idx = 0; idx < archi.instances.size(); ++idx) {
        const adl::Instance& instance = archi.instances[idx];
        const Cfg* cfg = cfg_of_instance[idx];
        if (cfg == nullptr || cfg->type->behaviors.empty()) continue;
        const adl::ElemType& type = *cfg->type;
        const std::size_t num_behaviors = type.behaviors.size();

        InstanceIntervals& intervals = result.per_instance[idx];
        intervals.envs.resize(num_behaviors);
        intervals.reachable.assign(num_behaviors, 0);

        std::vector<Interval> seed(type.behaviors[0].params.size(), Interval::top());
        for (std::size_t p = 0; p < seed.size() && p < instance.args.size(); ++p) {
            seed[p] = Interval::constant(instance.args[p]);
        }
        intervals.envs[0] = std::move(seed);
        intervals.reachable[0] = 1;

        auto behavior_index = [&type, num_behaviors](const std::string& name) {
            for (std::uint32_t b = 0; b < num_behaviors; ++b) {
                if (type.behaviors[b].name == name) return b;
            }
            return static_cast<std::uint32_t>(UINT32_MAX);
        };

        std::vector<std::uint32_t> visits(num_behaviors, 0);
        const std::uint32_t seeds[] = {0};
        run_fixpoint(num_behaviors, seeds, [&](std::uint32_t b, Worklist& worklist) {
            if (intervals.reachable[b] == 0) return;
            for (const adl::Alternative& alt : type.behaviors[b].alternatives) {
                std::vector<Interval> env = intervals.envs[b];
                if (!refine_by_guard(alt.guard.get(), env)) continue;
                const std::uint32_t callee = behavior_index(alt.continuation.behavior);
                if (callee == UINT32_MAX) continue;
                const adl::BehaviorDef& target = type.behaviors[callee];
                std::vector<Interval> arrival(target.params.size(), Interval::top());
                for (std::size_t p = 0;
                     p < arrival.size() && p < alt.continuation.args.size(); ++p) {
                    arrival[p] = eval_interval(*alt.continuation.args[p], env);
                }
                bool changed = false;
                if (intervals.reachable[callee] == 0) {
                    intervals.envs[callee] = std::move(arrival);
                    intervals.reachable[callee] = 1;
                    changed = true;
                } else {
                    std::vector<Interval>& current = intervals.envs[callee];
                    for (std::size_t p = 0; p < current.size() && p < arrival.size();
                         ++p) {
                        const Interval previous = current[p];
                        const Interval joined = interval_join(previous, arrival[p]);
                        if (joined == previous) continue;
                        current[p] = joined;
                        changed = true;
                        if (++visits[callee] < kWidenVisits) continue;
                        // The bound keeps moving: widen the growing side to
                        // the nearest guard landmark, or to infinity past
                        // the give-up threshold (landmark chasing can
                        // itself diverge when two parameters leapfrog each
                        // other's guard bounds).
                        std::vector<long> landmarks;
                        if (visits[callee] < kGiveUpVisits) {
                            for (const adl::Alternative& guard_alt :
                                 target.alternatives) {
                                collect_landmarks(guard_alt.guard.get(), p, current,
                                                  landmarks);
                            }
                        }
                        Interval& value = current[p];
                        if (joined.hi > previous.hi && joined.hi != kPosInf) {
                            long widened = kPosInf;
                            for (const long mark : landmarks) {
                                if (mark >= value.hi && mark < widened) widened = mark;
                            }
                            value.hi = widened;
                        }
                        if (joined.lo < previous.lo && joined.lo != kNegInf) {
                            long widened = kNegInf;
                            for (const long mark : landmarks) {
                                if (mark <= value.lo && mark > widened) widened = mark;
                            }
                            value.lo = widened;
                        }
                    }
                }
                if (!changed) continue;
                worklist.push(callee);
            }
        });

        // Report unbounded parameters once per (behaviour, parameter).
        for (std::size_t b = 0; b < num_behaviors; ++b) {
            if (intervals.reachable[b] == 0) continue;
            const adl::BehaviorDef& def = type.behaviors[b];
            for (std::size_t p = 0; p < intervals.envs[b].size(); ++p) {
                const Interval& value = intervals.envs[b][p];
                if (value.bounded()) continue;
                Diagnostic diagnostic;
                diagnostic.severity = code_severity(Code::UnboundedParameter);
                diagnostic.code = Code::UnboundedParameter;
                diagnostic.message = "parameter '" +
                                     (p < def.params.size() ? def.params[p]
                                                            : std::to_string(p)) +
                                     "' of behaviour '" + def.name + "' in instance '" +
                                     instance.name +
                                     "' may grow without bound; composition can "
                                     "exceed any state budget";
                diagnostic.span = {file, def.loc};
                diagnostic.notes.push_back(
                    {"instance '" + instance.name + "' declared here",
                     {file, instance.loc}});
                out.push_back(std::move(diagnostic));
            }
        }
    }
    return result;
}

void check_rates(const adl::ArchiType& archi, const std::string& file,
                 std::vector<Diagnostic>& out) {
    auto emit = [&out, &file](const adl::Action& action, const std::string& detail) {
        Diagnostic diagnostic;
        diagnostic.severity = code_severity(Code::NonPositiveRate);
        diagnostic.code = Code::NonPositiveRate;
        diagnostic.message = "action '" + action.name + "' " + detail;
        diagnostic.span = {file, action.loc};
        out.push_back(std::move(diagnostic));
    };
    for (const adl::ElemType& type : archi.elem_types) {
        for (const adl::BehaviorDef& behavior : type.behaviors) {
            for (const adl::Alternative& alt : behavior.alternatives) {
                for (const adl::Action& action : alt.actions) {
                    if (const auto* exp = std::get_if<lts::RateExp>(&action.rate)) {
                        if (!(exp->rate > 0.0) || !std::isfinite(exp->rate)) {
                            emit(action, "has exponential rate " +
                                             std::to_string(exp->rate) +
                                             "; rates must be positive and finite");
                        }
                    } else if (const auto* imm =
                                   std::get_if<lts::RateImmediate>(&action.rate)) {
                        if (!(imm->weight > 0.0) || !std::isfinite(imm->weight)) {
                            emit(action, "has immediate weight " +
                                             std::to_string(imm->weight) +
                                             "; weights must be positive and finite");
                        }
                        if (imm->priority < 1) {
                            emit(action,
                                 "has immediate priority " +
                                     std::to_string(imm->priority) +
                                     "; priorities start at 1");
                        }
                    }
                }
            }
        }
    }
}

}  // namespace dpma::analysis::flow
