#include "analysis/flow/alphabet.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/flow/fixpoint.hpp"

namespace dpma::analysis::flow {
namespace {

/// Where an interaction edge synchronises: the attachment index, or one of
/// the two sentinels.
constexpr std::uint32_t kInternal = UINT32_MAX;
constexpr std::uint32_t kUnattached = UINT32_MAX - 1;

struct InstanceInfo {
    const Cfg* cfg = nullptr;
    /// Per edge: kInternal, kUnattached, or the attachment index.
    std::vector<std::uint32_t> sync;
    /// Per edge: guard satisfiable at the owning behaviour's entry env.
    std::vector<char> feasible;
};

Diagnostic make(Code code, std::string message, const std::string& file, SourceLoc loc) {
    Diagnostic diagnostic;
    diagnostic.severity = code_severity(code);
    diagnostic.code = code;
    diagnostic.message = std::move(message);
    diagnostic.span = {file, loc};
    return diagnostic;
}

}  // namespace

AbstractComposition analyze_alphabet(const adl::ArchiType& archi,
                                     std::span<const Cfg* const> cfg_of_instance,
                                     const IntervalResult& intervals,
                                     const std::string& file,
                                     std::vector<Diagnostic>& out) {
    const std::size_t num_instances = archi.instances.size();
    const std::size_t num_attachments = archi.attachments.size();

    // (instance name, port, is_output) -> attachment index.  Lint guarantees
    // each port is attached at most once; later duplicates are ignored.
    std::unordered_map<std::string, std::uint32_t> port_attachment;
    for (std::uint32_t a = 0; a < num_attachments; ++a) {
        const adl::Attachment& attachment = archi.attachments[a];
        port_attachment.emplace(attachment.from_instance + ">" + attachment.from_port, a);
        port_attachment.emplace(attachment.to_instance + "<" + attachment.to_port, a);
    }

    std::vector<InstanceInfo> info(num_instances);
    for (std::size_t i = 0; i < num_instances; ++i) {
        const Cfg* cfg = cfg_of_instance[i];
        info[i].cfg = cfg;
        if (cfg == nullptr) continue;
        const adl::Instance& instance = archi.instances[i];
        info[i].sync.resize(cfg->edges.size(), kInternal);
        info[i].feasible.resize(cfg->edges.size(), 1);
        std::unordered_map<const adl::Alternative*, bool> alt_feasible;
        for (std::size_t e = 0; e < cfg->edges.size(); ++e) {
            const CfgEdge& edge = cfg->edges[e];
            auto cached = alt_feasible.find(edge.alt);
            if (cached == alt_feasible.end()) {
                cached = alt_feasible
                             .emplace(edge.alt,
                                      intervals.feasible(i, edge.behavior, *edge.alt))
                             .first;
            }
            info[i].feasible[e] = cached->second ? 1 : 0;
            if (edge.port == PortKind::Internal) continue;
            const char direction = edge.port == PortKind::Output ? '>' : '<';
            const auto found =
                port_attachment.find(instance.name + direction + edge.action->name);
            info[i].sync[e] = found == port_attachment.end() ? kUnattached : found->second;
        }
    }

    AbstractComposition result;
    result.reachable.resize(num_instances);
    result.edge_alive.resize(num_instances);
    result.attachment_alive.assign(num_attachments, 0);

    // Increasing joint fixpoint: reachable sets and co-enabled attachments
    // grow together until stable.
    std::vector<char> from_enabled(num_attachments, 0);
    std::vector<char> to_enabled(num_attachments, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < num_instances; ++i) {
            const Cfg* cfg = info[i].cfg;
            if (cfg == nullptr || cfg->num_nodes == 0) continue;
            std::vector<char>& reach = result.reachable[i];
            reach.assign(cfg->num_nodes, 0);
            std::vector<char>& alive = result.edge_alive[i];
            alive.assign(cfg->edges.size(), 0);
            const std::uint32_t seeds[] = {cfg->entry.empty() ? 0 : cfg->entry[0]};
            reach[seeds[0]] = 1;
            run_fixpoint(cfg->num_nodes, seeds, [&](std::uint32_t node,
                                                    Worklist& worklist) {
                for (const std::uint32_t e : cfg->out(node)) {
                    if (info[i].feasible[e] == 0) continue;
                    const std::uint32_t sync = info[i].sync[e];
                    if (sync == kUnattached) continue;  // blocked, as in compose()
                    if (sync != kInternal &&
                        (from_enabled[sync] == 0 || to_enabled[sync] == 0)) {
                        continue;
                    }
                    alive[e] = 1;
                    const std::uint32_t target = cfg->edges[e].to;
                    if (reach[target] == 0) {
                        reach[target] = 1;
                        worklist.push(target);
                    }
                }
            });
        }
        // Recompute the abstract enabling sets from the new reachability.
        for (std::size_t i = 0; i < num_instances; ++i) {
            const Cfg* cfg = info[i].cfg;
            if (cfg == nullptr) continue;
            for (std::size_t e = 0; e < cfg->edges.size(); ++e) {
                const std::uint32_t sync = info[i].sync[e];
                if (sync == kInternal || sync == kUnattached) continue;
                if (info[i].feasible[e] == 0) continue;
                if (result.reachable[i][cfg->edges[e].from] == 0) continue;
                std::vector<char>& enabled =
                    cfg->edges[e].port == PortKind::Output ? from_enabled : to_enabled;
                if (enabled[sync] == 0) {
                    enabled[sync] = 1;
                    changed = true;
                }
            }
        }
    }

    for (std::uint32_t a = 0; a < num_attachments; ++a) {
        result.attachment_alive[a] = (from_enabled[a] != 0 && to_enabled[a] != 0) ? 1 : 0;
    }

    // --- dead-interaction -----------------------------------------------
    // Warn when an attached port occurs in the behaviour but its partner can
    // never co-enable the synchronisation.  Ports that never occur at all
    // are the linter's unused-interaction; we stay silent there.
    auto port_occurs = [&](const std::string& instance_name, const std::string& port,
                           PortKind kind) {
        const adl::Instance* instance = archi.find_instance(instance_name);
        if (instance == nullptr) return false;
        for (std::size_t i = 0; i < num_instances; ++i) {
            if (archi.instances[i].name != instance_name || info[i].cfg == nullptr) {
                continue;
            }
            for (const CfgEdge& edge : info[i].cfg->edges) {
                if (edge.port == kind && edge.action->name == port) return true;
            }
        }
        return false;
    };
    for (std::uint32_t a = 0; a < num_attachments; ++a) {
        if (result.attachment_alive[a] != 0) continue;
        const adl::Attachment& attachment = archi.attachments[a];
        if (!port_occurs(attachment.from_instance, attachment.from_port,
                         PortKind::Output) ||
            !port_occurs(attachment.to_instance, attachment.to_port, PortKind::Input)) {
            continue;
        }
        const std::string label = attachment.from_instance + "." + attachment.from_port +
                                  " # " + attachment.to_instance + "." +
                                  attachment.to_port;
        Diagnostic diagnostic =
            make(Code::DeadInteraction,
                 "interaction '" + label + "' can never fire: the partners' abstract "
                 "enabling sets never overlap",
                 file, attachment.loc);
        if (from_enabled[a] == 0) {
            diagnostic.notes.push_back({"'" + attachment.from_instance + "." +
                                            attachment.from_port +
                                            "' is never enabled",
                                        {file, attachment.from_loc}});
        }
        if (to_enabled[a] == 0) {
            diagnostic.notes.push_back({"'" + attachment.to_instance + "." +
                                            attachment.to_port + "' is never enabled",
                                        {file, attachment.to_loc}});
        }
        out.push_back(std::move(diagnostic));
    }

    // --- sync-deadlock ---------------------------------------------------
    // A reachable node all of whose alternatives are dead (unattached or
    // never co-enabled syncs, or guard-unsatisfiable) is a global deadlock
    // the per-instance linter cannot see.  Nodes with no edges at all are
    // the linter's local-deadlock.
    for (std::size_t i = 0; i < num_instances; ++i) {
        const Cfg* cfg = info[i].cfg;
        if (cfg == nullptr) continue;
        std::vector<char> reported(cfg->type->behaviors.size(), 0);
        for (std::uint32_t node = 0; node < cfg->num_nodes; ++node) {
            if (result.reachable[i][node] == 0) continue;
            const auto edges = cfg->out(node);
            if (edges.empty()) continue;
            bool any_alive = false;
            for (const std::uint32_t e : edges) {
                if (result.edge_alive[i][e] != 0) {
                    any_alive = true;
                    break;
                }
            }
            if (any_alive) continue;
            const std::uint32_t behavior = cfg->node_behavior[node];
            if (behavior < reported.size() && reported[behavior] != 0) continue;
            if (behavior < reported.size()) reported[behavior] = 1;
            const adl::BehaviorDef& def = cfg->type->behaviors[behavior];
            out.push_back(make(
                Code::SyncDeadlock,
                "instance '" + archi.instances[i].name + "' can get stuck in behaviour '" +
                    def.name +
                    "': every alternative is a synchronisation that can never fire "
                    "or has an unsatisfiable guard",
                file, def.loc));
        }
    }
    return result;
}

void check_ergodicity(const adl::ArchiType& archi,
                      std::span<const Cfg* const> cfg_of_instance,
                      const AbstractComposition& abstract_composition,
                      const std::string& file, std::vector<Diagnostic>& out) {
    for (std::size_t i = 0; i < archi.instances.size(); ++i) {
        const Cfg* cfg = cfg_of_instance[i];
        if (cfg == nullptr || cfg->num_nodes == 0) continue;
        if (abstract_composition.reachable[i].empty()) continue;
        const std::vector<char>& reach = abstract_composition.reachable[i];
        const std::vector<char>& alive = abstract_composition.edge_alive[i];

        // Tarjan over the reachable alive subgraph, iterative to survive
        // deep chains.
        const std::uint32_t n = cfg->num_nodes;
        std::vector<std::uint32_t> index(n, UINT32_MAX);
        std::vector<std::uint32_t> low(n, 0);
        std::vector<char> on_stack(n, 0);
        std::vector<std::uint32_t> stack;
        std::vector<std::uint32_t> scc_of(n, UINT32_MAX);
        std::uint32_t next_index = 0;
        std::uint32_t num_sccs = 0;

        struct Frame {
            std::uint32_t node;
            std::size_t edge_pos;
        };
        std::vector<Frame> call_stack;
        for (std::uint32_t root = 0; root < n; ++root) {
            if (reach[root] == 0 || index[root] != UINT32_MAX) continue;
            call_stack.push_back({root, 0});
            while (!call_stack.empty()) {
                Frame& frame = call_stack.back();
                const std::uint32_t node = frame.node;
                if (frame.edge_pos == 0) {
                    index[node] = low[node] = next_index++;
                    stack.push_back(node);
                    on_stack[node] = 1;
                }
                const auto edges = cfg->out(node);
                bool descended = false;
                while (frame.edge_pos < edges.size()) {
                    const std::uint32_t e = edges[frame.edge_pos++];
                    if (alive[e] == 0) continue;
                    const std::uint32_t target = cfg->edges[e].to;
                    if (index[target] == UINT32_MAX) {
                        call_stack.push_back({target, 0});
                        descended = true;
                        break;
                    }
                    if (on_stack[target] != 0) {
                        low[node] = std::min(low[node], index[target]);
                    }
                }
                if (descended) continue;
                if (low[node] == index[node]) {
                    while (true) {
                        const std::uint32_t member = stack.back();
                        stack.pop_back();
                        on_stack[member] = 0;
                        scc_of[member] = num_sccs;
                        if (member == node) break;
                    }
                    ++num_sccs;
                }
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    const std::uint32_t parent = call_stack.back().node;
                    low[parent] = std::min(low[parent], low[node]);
                }
            }
        }
        if (num_sccs <= 1) continue;

        // Classify: cyclic (size > 1 or self-loop) and absorbing (no alive
        // edge leaving the component).
        std::vector<char> cyclic(num_sccs, 0);
        std::vector<char> absorbing(num_sccs, 1);
        std::vector<std::uint32_t> scc_size(num_sccs, 0);
        std::vector<std::uint32_t> representative(num_sccs, UINT32_MAX);
        for (std::uint32_t node = 0; node < n; ++node) {
            const std::uint32_t component = scc_of[node];
            if (component == UINT32_MAX) continue;
            ++scc_size[component];
            // Prefer a behaviour-entry node as the component's face in the
            // diagnostic; fall back to any member.
            if (representative[component] == UINT32_MAX ||
                node < cfg->entry.size()) {
                representative[component] = node;
            }
            for (const std::uint32_t e : cfg->out(node)) {
                if (alive[e] == 0) continue;
                const std::uint32_t target = cfg->edges[e].to;
                if (scc_of[target] == component) {
                    if (target == node) cyclic[component] = 1;
                } else {
                    absorbing[component] = 0;
                }
            }
        }
        for (std::uint32_t component = 0; component < num_sccs; ++component) {
            if (scc_size[component] > 1) cyclic[component] = 1;
        }

        std::vector<std::uint32_t> closed;     // cyclic + absorbing
        std::uint32_t open_cycle = UINT32_MAX;  // cyclic, not absorbing
        for (std::uint32_t component = 0; component < num_sccs; ++component) {
            if (cyclic[component] == 0) continue;
            if (absorbing[component] != 0) {
                closed.push_back(component);
            } else if (open_cycle == UINT32_MAX) {
                open_cycle = component;
            }
        }
        // A transient prefix draining into one closed class is the normal
        // warm-up shape; two closed classes, or a cycle that can fall into a
        // closed class, is not.
        const bool split_classes = closed.size() >= 2;
        const bool trap = closed.size() == 1 && open_cycle != UINT32_MAX;
        if (!split_classes && !trap) continue;

        auto behavior_name = [&cfg](std::uint32_t component_rep) -> const adl::BehaviorDef& {
            return cfg->type->behaviors[cfg->node_behavior[component_rep]];
        };
        const adl::BehaviorDef& primary = behavior_name(representative[closed[0]]);
        Diagnostic diagnostic;
        if (split_classes) {
            const adl::BehaviorDef& secondary = behavior_name(representative[closed[1]]);
            diagnostic = make(Code::NonErgodic,
                              "instance '" + archi.instances[i].name + "' has " +
                                  std::to_string(closed.size()) +
                                  " disjoint closed behaviour classes; the long-run "
                                  "behaviour depends on the path taken and "
                                  "steady-state measures are not unique",
                              file, primary.loc);
            diagnostic.notes.push_back({"another closed class around behaviour '" +
                                            secondary.name + "'",
                                        {file, secondary.loc}});
        } else {
            const adl::BehaviorDef& left_behind = behavior_name(representative[open_cycle]);
            diagnostic = make(Code::NonErgodic,
                              "instance '" + archi.instances[i].name +
                                  "' can fall into the closed behaviour class around '" +
                                  primary.name +
                                  "' and never return; steady-state measures collapse "
                                  "onto the trapped class",
                              file, primary.loc);
            diagnostic.notes.push_back({"cycle left behind around behaviour '" +
                                            left_behind.name + "'",
                                        {file, left_behind.loc}});
        }
        out.push_back(std::move(diagnostic));
    }
}

}  // namespace dpma::analysis::flow
