#include "analysis/flow/cfg.hpp"

#include <algorithm>

namespace dpma::analysis::flow {

PortKind port_kind(const adl::ElemType& type, const std::string& name) {
    if (std::find(type.input_interactions.begin(), type.input_interactions.end(), name) !=
        type.input_interactions.end()) {
        return PortKind::Input;
    }
    if (std::find(type.output_interactions.begin(), type.output_interactions.end(),
                  name) != type.output_interactions.end()) {
        return PortKind::Output;
    }
    return PortKind::Internal;
}

Cfg build_cfg(const adl::ElemType& type) {
    Cfg cfg;
    cfg.type = &type;

    const std::size_t num_behaviors = type.behaviors.size();
    cfg.entry.resize(num_behaviors);
    for (std::uint32_t b = 0; b < num_behaviors; ++b) {
        cfg.entry[b] = b;
        cfg.node_behavior.push_back(b);
    }
    std::uint32_t next_node = static_cast<std::uint32_t>(num_behaviors);
    // Lazily allocated sink for calls to undeclared behaviours.
    std::uint32_t dead_sink = UINT32_MAX;

    auto behavior_index = [&type, num_behaviors](const std::string& name) -> std::uint32_t {
        for (std::uint32_t b = 0; b < num_behaviors; ++b) {
            if (type.behaviors[b].name == name) return b;
        }
        return UINT32_MAX;
    };

    for (std::uint32_t b = 0; b < num_behaviors; ++b) {
        for (const adl::Alternative& alt : type.behaviors[b].alternatives) {
            if (alt.actions.empty()) continue;  // the parser never produces this
            std::uint32_t callee = behavior_index(alt.continuation.behavior);
            std::uint32_t exit = 0;
            if (callee == UINT32_MAX) {
                if (dead_sink == UINT32_MAX) {
                    dead_sink = next_node++;
                    cfg.node_behavior.push_back(b);
                }
                exit = dead_sink;
                callee = b;  // arbitrary but valid; the edge is a dead end
            } else {
                exit = cfg.entry[callee];
            }
            std::uint32_t from = cfg.entry[b];
            for (std::size_t a = 0; a < alt.actions.size(); ++a) {
                const bool last = a + 1 == alt.actions.size();
                std::uint32_t to = exit;
                if (!last) {
                    to = next_node++;
                    cfg.node_behavior.push_back(b);
                }
                CfgEdge edge;
                edge.from = from;
                edge.to = to;
                edge.action = &alt.actions[a];
                edge.alt = &alt;
                edge.behavior = b;
                edge.callee = callee;
                edge.first = a == 0;
                edge.last = last;
                edge.port = port_kind(type, alt.actions[a].name);
                cfg.edges.push_back(edge);
                from = to;
            }
        }
    }
    cfg.num_nodes = next_node;

    // CSR adjacency.
    cfg.offsets_.assign(cfg.num_nodes + 1, 0);
    for (const CfgEdge& edge : cfg.edges) ++cfg.offsets_[edge.from + 1];
    for (std::size_t i = 1; i < cfg.offsets_.size(); ++i) {
        cfg.offsets_[i] += cfg.offsets_[i - 1];
    }
    cfg.out_edges_.resize(cfg.edges.size());
    std::vector<std::uint32_t> cursor(cfg.offsets_.begin(), cfg.offsets_.end() - 1);
    for (std::uint32_t e = 0; e < cfg.edges.size(); ++e) {
        cfg.out_edges_[cursor[cfg.edges[e].from]++] = e;
    }
    return cfg;
}

}  // namespace dpma::analysis::flow
