#pragma once

/// \file fixpoint.hpp
/// The generic worklist engine under every dataflow analysis in
/// analysis/flow.  A client hands over a node count, a seed set and a step
/// function `step(node, worklist)`; the engine pops nodes until the worklist
/// drains and reports how many steps it took.  Each pop is one fixpoint
/// iteration and is accounted to the process-wide counter
/// `analysis.flow.fixpoint_iters`, so `dpma_cli --metrics` and the micro
/// benchmarks see the combined effort of all analyses.
///
/// The worklist is FIFO with membership dedup: re-pushing a queued node is a
/// no-op, which keeps the iteration count proportional to the number of
/// actual lattice changes rather than to the fan-in of the graph.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dpma::analysis::flow {

/// FIFO worklist over node ids [0, size) with O(1) dedup.
class Worklist {
public:
    explicit Worklist(std::size_t size) : queued_(size, 0) { queue_.reserve(size); }

    void push(std::uint32_t node) {
        if (queued_[node] != 0) return;
        queued_[node] = 1;
        queue_.push_back(node);
    }

    [[nodiscard]] bool empty() const noexcept { return head_ == queue_.size(); }

    std::uint32_t pop() {
        const std::uint32_t node = queue_[head_++];
        queued_[node] = 0;
        if (head_ == queue_.size()) {
            queue_.clear();
            head_ = 0;
        }
        return node;
    }

private:
    std::vector<std::uint32_t> queue_;
    std::vector<char> queued_;
    std::size_t head_ = 0;
};

/// Runs \p step on popped nodes until the worklist drains; returns the
/// number of iterations (pops) and adds it to analysis.flow.fixpoint_iters.
/// `step` receives the node and the worklist and pushes every node whose
/// lattice value it changed.
template <typename Step>
std::size_t run_fixpoint(std::size_t num_nodes, std::span<const std::uint32_t> seeds,
                         Step&& step) {
    static obs::Counter& iters = obs::counter("analysis.flow.fixpoint_iters");
    Worklist worklist(num_nodes);
    for (const std::uint32_t seed : seeds) worklist.push(seed);
    std::size_t pops = 0;
    while (!worklist.empty()) {
        const std::uint32_t node = worklist.pop();
        ++pops;
        step(node, worklist);
    }
    iters.add(pops);
    return pops;
}

/// Convenience overload seeding every node in [0, num_nodes).
template <typename Step>
std::size_t run_fixpoint(std::size_t num_nodes, Step&& step) {
    std::vector<std::uint32_t> seeds(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i) seeds[i] = i;
    return run_fixpoint(num_nodes, std::span<const std::uint32_t>(seeds),
                        std::forward<Step>(step));
}

}  // namespace dpma::analysis::flow
