#pragma once

/// \file transparency.hpp
/// Static DPM-transparency slicing: decide `M/High ~weak~ M\High` without
/// ever composing M.
///
/// The engine combines a dataflow taint pass with an *exact check on a small
/// slice*:
///
///  1. The instances touching the high labels are the seed slice.  Inside
///     each seed, the tainted CFG region is what is reachable after a high
///     action but not reachable without one; interaction ports fired from
///     that region are the channels through which the DPM's activity can
///     influence the rest of the architecture.  Taint floods along
///     attachments (synchronisation propagates influence in both
///     directions), recording the interaction chain.
///
///  2. The slice product — the composition of just the slice members, with
///     attachments leaving the slice kept visible as free interface actions
///     — is checked exactly: slice/High weakly bisimilar to slice\High with
///     the interface visible.  Weak bisimilarity is a congruence for
///     parallel composition and hiding, so a PASS lifts to the full system
///     under the observer-relative hiding the oracle applies: static
///     `transparent` implies the exact verdict (soundness; DESIGN.md §8b).
///     On FAIL the slice grows along the taint chain and is re-checked.
///
/// Verdicts: `Transparent` is trustworthy (tests cross-check it against the
/// exact weak-bisimulation oracle on every shipped spec); `Leaks` means the
/// slice check failed *and* taint reaches the low observer — strong evidence
/// with the offending interaction chain, but consumers must still run the
/// exact check; `Inconclusive` means the analysis gave up (state budget,
/// slice check failed without a taint path to low, degenerate inputs).

#include <cstddef>
#include <string>
#include <vector>

#include "adl/model.hpp"

namespace dpma::analysis::flow {

enum class TransparencyVerdict { Transparent, Leaks, Inconclusive };

[[nodiscard]] const char* verdict_name(TransparencyVerdict verdict);

struct TransparencyOptions {
    /// Global high labels, as printed by `info`: "I.a" or "I.a#J.b".
    std::vector<std::string> high_labels;
    /// The observing instance; must not be touched by a high label.
    std::string low_instance;
    /// Budget for one member's local LTS (same default as the linter).
    std::size_t max_local_states = 20'000;
    /// Budget for the slice product; exceeding it yields Inconclusive.
    std::size_t max_slice_states = 50'000;
};

struct TransparencyResult {
    TransparencyVerdict verdict = TransparencyVerdict::Inconclusive;
    /// Members of the last slice checked (names, in architecture order).
    std::vector<std::string> slice_instances;
    /// For Leaks: the attachment chain from the high seeds to the low
    /// observer ("I.a # J.b" labels, seed side first).
    std::vector<std::string> leak_chain;
    /// Human-readable explanation of how the verdict was reached.
    std::string reason;
    /// Product states of the last slice explored (0 when none was built).
    std::size_t slice_states = 0;
};

/// Runs the static transparency analysis on the (lint-clean) architecture.
/// Throws dpma::Error on unknown instances / malformed labels, mirroring
/// the exact checker's contract.
[[nodiscard]] TransparencyResult analyze_transparency(const adl::ArchiType& archi,
                                                      const TransparencyOptions& options);

}  // namespace dpma::analysis::flow
