#pragma once

/// \file cfg.hpp
/// Per-element-type control-flow graphs over the *syntactic* behaviour
/// structure — the abstract domain every flow analysis works on.
///
/// Nodes are positions between action prefixes: one entry node per behaviour
/// equation plus one node after each non-final action of an alternative.
/// Every action occurrence becomes one edge; the edge that fires the last
/// action of an alternative leads to the entry node of the invoked behaviour
/// and carries the continuation (whose argument expressions the interval
/// analysis interprets).  Unlike adl::build_local_lts this never evaluates
/// parameters, so the graph is linear in the spec even when the concrete
/// local state space is unbounded.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "adl/model.hpp"

namespace dpma::analysis::flow {

enum class PortKind : std::uint8_t { Internal, Input, Output };

/// One action occurrence.
struct CfgEdge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    const adl::Action* action = nullptr;
    /// Alternative the action belongs to; its guard gates the whole chain.
    const adl::Alternative* alt = nullptr;
    /// Behaviour index the alternative belongs to.
    std::uint32_t behavior = 0;
    /// Behaviour index invoked by the continuation (== target node's
    /// behaviour); only meaningful when `last`.
    std::uint32_t callee = 0;
    bool first = false;  ///< first action of its alternative (guard applies)
    bool last = false;   ///< last action (continuation arguments apply)
    PortKind port = PortKind::Internal;
};

/// The control-flow graph of one element type.
struct Cfg {
    const adl::ElemType* type = nullptr;
    std::uint32_t num_nodes = 0;
    /// Behaviour index -> entry node (the first behaviour is initial).
    std::vector<std::uint32_t> entry;
    /// Owning behaviour of every node (for diagnostics).
    std::vector<std::uint32_t> node_behavior;
    std::vector<CfgEdge> edges;

    /// Indices into `edges` of the out-edges of \p node.
    [[nodiscard]] std::span<const std::uint32_t> out(std::uint32_t node) const {
        return {out_edges_.data() + offsets_[node],
                out_edges_.data() + offsets_[node + 1]};
    }

    // CSR adjacency, built by build_cfg.
    std::vector<std::uint32_t> offsets_;
    std::vector<std::uint32_t> out_edges_;
};

/// Builds the CFG of \p type.  Tolerates unresolved behaviour calls (they
/// become edges into a dead sink node) so it can run on models that lint
/// rejects; callers normally gate on lint errors first.
[[nodiscard]] Cfg build_cfg(const adl::ElemType& type);

/// The PortKind of action \p name in \p type.
[[nodiscard]] PortKind port_kind(const adl::ElemType& type, const std::string& name);

}  // namespace dpma::analysis::flow
