#pragma once

/// \file alphabet.hpp
/// Abstract composition over interaction alphabets — the whole-model half of
/// the flow engine.  Instead of building the product LTS, every instance
/// keeps one bit of abstract state per CFG node ("can this control position
/// be reached in *some* global behaviour?") and attachments are enabled by
/// the *overlap of abstract enabling sets*: a synchronisation edge is
/// traversable once both endpoints can reach a node offering their port.
///
/// The joint fixpoint is increasing and linear in the spec: reachable sets
/// only grow, enabled attachments only grow, and each round re-runs the
/// per-instance reachability under the current enabling.  The result
/// over-approximates the projection of the true composed reachable set, so
/// "never co-enabled" verdicts (`dead-interaction`) and "all alternatives
/// dead" verdicts (`sync-deadlock`) are sound: the concrete system cannot
/// fire what the abstraction already rules out.  Guard-infeasible
/// alternatives (interval analysis) are pruned before the fixpoint, which is
/// what lets the abstraction see value-dependent deadlocks.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "adl/model.hpp"
#include "analysis/diag.hpp"
#include "analysis/flow/cfg.hpp"
#include "analysis/flow/interval.hpp"

namespace dpma::analysis::flow {

/// Joint abstract reachability at the fixpoint.
struct AbstractComposition {
    /// Parallel to archi.instances: per-CFG-node reachability.
    std::vector<std::vector<char>> reachable;
    /// Parallel to archi.instances: per-CFG-edge traversability (guard
    /// feasible, and for interaction edges: attached + partner co-enabled).
    std::vector<std::vector<char>> edge_alive;
    /// Parallel to archi.attachments: both endpoints can enable the port.
    std::vector<char> attachment_alive;
};

/// Runs the abstract-composition fixpoint and emits `dead-interaction` and
/// `sync-deadlock` diagnostics.  \p cfg_of_instance maps instances to their
/// element type's CFG (null for unresolved types, which are skipped).
[[nodiscard]] AbstractComposition analyze_alphabet(
    const adl::ArchiType& archi, std::span<const Cfg* const> cfg_of_instance,
    const IntervalResult& intervals, const std::string& file,
    std::vector<Diagnostic>& out);

/// Absorbing-SCC ergodicity precheck on the abstract reachability graph:
/// warns (`non-ergodic`) when an instance has two disjoint closed behaviour
/// classes, or a closed class it can fall into while leaving another cycle
/// behind — the steady-state solve then has no unique answer to converge to.
void check_ergodicity(const adl::ArchiType& archi,
                      std::span<const Cfg* const> cfg_of_instance,
                      const AbstractComposition& abstract_composition,
                      const std::string& file, std::vector<Diagnostic>& out);

}  // namespace dpma::analysis::flow
