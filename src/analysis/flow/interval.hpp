#pragma once

/// \file interval.hpp
/// Interval / constant propagation of behaviour parameters, per instance.
///
/// The abstract state attached to every behaviour equation of an instance is
/// one integer interval per parameter (bottom = behaviour entry unreachable
/// for that instance).  Transfer runs along continuation edges: the entry
/// environment is refined by the alternative's `cond(...)` guard, the
/// continuation's argument expressions are evaluated in interval arithmetic,
/// and the result joins into the callee's environment.
///
/// Termination uses widening with thresholds: after a few unstable joins a
/// growing bound jumps to the nearest "landmark" — a bound implied by a
/// guard comparing the parameter (so `cond(n < cap)` stabilises `n` at
/// `cap` instead of infinity) — and to +-infinity when no landmark remains.
/// A parameter whose fixpoint interval is unbounded gets the
/// `unbounded-parameter` warning: composition unfolds parameters into local
/// states, so an unbounded parameter means a state bound blowup.
///
/// The same module hosts the rate-literal scan (`non-positive-rate`):
/// exponential rates and immediate priorities/weights are parsed
/// unvalidated, and a non-positive value silently corrupts the Markovian
/// phase.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "adl/model.hpp"
#include "analysis/diag.hpp"
#include "analysis/flow/cfg.hpp"

namespace dpma::analysis::flow {

inline constexpr long kNegInf = std::numeric_limits<long>::min();
inline constexpr long kPosInf = std::numeric_limits<long>::max();

/// A (possibly empty, possibly unbounded) integer interval.
struct Interval {
    long lo = kPosInf;
    long hi = kNegInf;  // lo > hi encodes the empty interval

    [[nodiscard]] static Interval top() { return {kNegInf, kPosInf}; }
    [[nodiscard]] static Interval constant(long v) { return {v, v}; }
    [[nodiscard]] bool empty() const noexcept { return lo > hi; }
    [[nodiscard]] bool bounded() const noexcept {
        return empty() || (lo != kNegInf && hi != kPosInf);
    }
    friend bool operator==(const Interval&, const Interval&) noexcept = default;
};

[[nodiscard]] Interval interval_join(Interval a, Interval b);
[[nodiscard]] Interval interval_meet(Interval a, Interval b);

/// Interval arithmetic over an expression tree; empty env entries propagate
/// to an empty result.
[[nodiscard]] Interval eval_interval(const adl::Expr& expr, std::span<const Interval> env);

/// Refines \p env in place under the assumption that \p guard holds.
/// Returns false when the guard is unsatisfiable under \p env (the
/// alternative is dead for this instance).  A null guard always holds.
[[nodiscard]] bool refine_by_guard(const adl::BoolExpr* guard, std::vector<Interval>& env);

/// Fixpoint result for one instance.
struct InstanceIntervals {
    /// envs[behaviour][param]; meaningful only where reachable[behaviour].
    std::vector<std::vector<Interval>> envs;
    std::vector<char> reachable;
};

struct IntervalResult {
    /// Parallel to archi.instances.
    std::vector<InstanceIntervals> per_instance;

    /// True when the alternative's guard is satisfiable at its behaviour's
    /// entry environment (unreachable entry => infeasible).  This is what
    /// the abstract composition uses to prune guard-dead alternatives.
    [[nodiscard]] bool feasible(std::size_t instance, std::uint32_t behavior,
                                const adl::Alternative& alt) const;
};

/// Runs the per-instance interval fixpoints.  \p cfg_of_instance maps every
/// instance to the CFG of its element type.  Emits `unbounded-parameter`
/// diagnostics into \p out.
[[nodiscard]] IntervalResult analyze_intervals(const adl::ArchiType& archi,
                                               std::span<const Cfg* const> cfg_of_instance,
                                               const std::string& file,
                                               std::vector<Diagnostic>& out);

/// Scans every rate literal of every element type for non-positive
/// exponential rates and non-positive immediate weights / priorities.
void check_rates(const adl::ArchiType& archi, const std::string& file,
                 std::vector<Diagnostic>& out);

}  // namespace dpma::analysis::flow
