#pragma once

/// \file analyze.hpp
/// Orchestrator of the dataflow / abstract-interpretation engine: lint
/// first, then the whole-model flow passes over the per-behaviour CFGs —
/// rate-literal scan, interval propagation, abstract composition
/// (dead-interaction / sync-deadlock), ergodicity precheck — and, when a
/// high/low configuration is supplied, the static DPM-transparency slice.
///
/// The flow passes run only on lint-*error*-free models: the CFG extractor
/// assumes resolved behaviours and arities.  Lint warnings do not block
/// them.  `dpma_cli analyze` is the front end; `check`, `solve` and `sweep`
/// run the same passes as an opt-in pre-pass (`--precheck`).

#include <optional>
#include <string_view>
#include <vector>

#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "analysis/diag.hpp"
#include "analysis/lint.hpp"
#include "analysis/flow/transparency.hpp"

namespace dpma::analysis::flow {

struct AnalyzeOptions {
    LintOptions lint;
    /// When both are set, run the transparency slice after the flow passes.
    std::vector<std::string> high_labels;
    std::string low_instance;
    std::size_t max_slice_states = 50'000;
};

struct AnalyzeResult {
    /// Lint pass (always runs).
    LintResult lint;
    /// Flow-pass diagnostics; empty when the lint pass found errors.
    std::vector<Diagnostic> flow;
    /// False when lint errors blocked the flow passes.
    bool flow_ran = false;
    /// Set iff high/low were configured and the flow passes ran.
    std::optional<TransparencyResult> transparency;

    /// Lint + flow diagnostics, lint first (both are span-ordered already).
    [[nodiscard]] std::vector<Diagnostic> all() const;
    [[nodiscard]] std::size_t error_count() const;
    /// No errors anywhere (warnings allowed).
    [[nodiscard]] bool ok() const { return error_count() == 0; }
    /// Not a single diagnostic of any severity.
    [[nodiscard]] bool clean() const {
        return lint.diagnostics.empty() && flow.empty();
    }
};

/// Runs the flow passes on an already-linted architecture (\p lint is moved
/// into the result).  Throws dpma::Error for malformed transparency
/// configuration (unknown instance, malformed label), mirroring the exact
/// checker.
[[nodiscard]] AnalyzeResult analyze_model(const adl::ArchiType& archi,
                                          std::string_view file, LintResult lint,
                                          const AnalyzeOptions& options = {});

/// Parses, lints and analyzes a specification (and optional measure file).
/// Parse failures surface as [parse-error] lint diagnostics, never throws.
[[nodiscard]] AnalyzeResult analyze_text(std::string_view spec_text,
                                         std::string_view spec_file,
                                         const AnalyzeOptions& options = {});

[[nodiscard]] AnalyzeResult analyze_text(std::string_view spec_text,
                                         std::string_view spec_file,
                                         std::string_view measures_text,
                                         std::string_view measures_file,
                                         const AnalyzeOptions& options = {});

}  // namespace dpma::analysis::flow
