#include "analysis/flow/analyze.hpp"

#include <string>
#include <unordered_map>
#include <utility>

#include "aemilia/parser.hpp"
#include "analysis/flow/alphabet.hpp"
#include "analysis/flow/cfg.hpp"
#include "analysis/flow/interval.hpp"
#include "core/error.hpp"

namespace dpma::analysis::flow {

std::vector<Diagnostic> AnalyzeResult::all() const {
    std::vector<Diagnostic> merged = lint.diagnostics;
    merged.insert(merged.end(), flow.begin(), flow.end());
    return merged;
}

std::size_t AnalyzeResult::error_count() const {
    std::size_t count = lint.error_count();
    for (const Diagnostic& diagnostic : flow) {
        if (diagnostic.severity == Severity::Error) ++count;
    }
    return count;
}

AnalyzeResult analyze_model(const adl::ArchiType& archi, std::string_view file,
                            LintResult lint, const AnalyzeOptions& options) {
    AnalyzeResult result;
    result.lint = std::move(lint);
    if (!result.lint.ok()) return result;  // CFG extraction needs a resolved AST
    result.flow_ran = true;

    const std::string file_name(file);

    // One CFG per element type, shared by every instance of that type.
    std::unordered_map<const adl::ElemType*, Cfg> cfgs;
    std::vector<const Cfg*> cfg_of_instance;
    cfg_of_instance.reserve(archi.instances.size());
    for (const adl::Instance& instance : archi.instances) {
        const adl::ElemType* type = archi.find_type(instance.type);
        if (type == nullptr) {
            cfg_of_instance.push_back(nullptr);
            continue;
        }
        auto found = cfgs.find(type);
        if (found == cfgs.end()) {
            found = cfgs.emplace(type, build_cfg(*type)).first;
        }
        cfg_of_instance.push_back(&found->second);
    }

    check_rates(archi, file_name, result.flow);
    const IntervalResult intervals =
        analyze_intervals(archi, cfg_of_instance, file_name, result.flow);
    const AbstractComposition abstract_composition =
        analyze_alphabet(archi, cfg_of_instance, intervals, file_name, result.flow);
    check_ergodicity(archi, cfg_of_instance, abstract_composition, file_name,
                     result.flow);

    if (!options.high_labels.empty() && !options.low_instance.empty()) {
        TransparencyOptions transparency;
        transparency.high_labels = options.high_labels;
        transparency.low_instance = options.low_instance;
        transparency.max_local_states = options.lint.max_local_states;
        transparency.max_slice_states = options.max_slice_states;
        result.transparency = analyze_transparency(archi, transparency);
    }
    return result;
}

AnalyzeResult analyze_text(std::string_view spec_text, std::string_view spec_file,
                           std::string_view measures_text,
                           std::string_view measures_file,
                           const AnalyzeOptions& options) {
    adl::ArchiType archi;
    try {
        archi = aemilia::parse_archi_type_unchecked(spec_text);
    } catch (const ParseError& error) {
        AnalyzeResult result;
        result.lint.diagnostics.push_back(Diagnostic{
            Severity::Error, Code::ParseError, error.what(),
            Span{std::string(spec_file), SourceLoc{error.line(), error.column()}},
            {}});
        return result;
    }
    LintResult lint = lint_model(archi, spec_file, options.lint);
    if (!measures_text.empty() || !measures_file.empty()) {
        try {
            const std::vector<adl::Measure> measures =
                aemilia::parse_measures(measures_text);
            lint_measures(archi, measures, measures_file, spec_file, lint);
        } catch (const ParseError& error) {
            lint.diagnostics.push_back(Diagnostic{
                Severity::Error, Code::ParseError, error.what(),
                Span{std::string(measures_file),
                     SourceLoc{error.line(), error.column()}},
                {}});
        }
    }
    return analyze_model(archi, spec_file, std::move(lint), options);
}

AnalyzeResult analyze_text(std::string_view spec_text, std::string_view spec_file,
                           const AnalyzeOptions& options) {
    return analyze_text(spec_text, spec_file, /*measures_text=*/{},
                        /*measures_file=*/{}, options);
}

}  // namespace dpma::analysis::flow
