#include "analysis/diag.hpp"

#include "obs/json.hpp"

namespace dpma::analysis {
namespace {

struct CodeInfo {
    Code code;
    const char* name;
    Severity severity;
};

// One row per Code enumerator, in declaration order.  code_count() is
// asserted against the fixture directory in the test suite, so adding a code
// without a fixture fails loudly.
constexpr CodeInfo kCodes[] = {
    {Code::ParseError, "parse-error", Severity::Error},
    {Code::DuplicateElemType, "duplicate-elem-type", Severity::Error},
    {Code::DuplicateBehavior, "duplicate-behavior", Severity::Error},
    {Code::DuplicateInteraction, "duplicate-interaction", Severity::Error},
    {Code::DuplicateInstance, "duplicate-instance", Severity::Error},
    {Code::UndeclaredBehavior, "undeclared-behavior", Severity::Error},
    {Code::CallArityMismatch, "call-arity-mismatch", Severity::Error},
    {Code::UndeclaredElemType, "undeclared-elem-type", Severity::Error},
    {Code::InstanceArityMismatch, "instance-arity-mismatch", Severity::Error},
    {Code::UnknownAttachmentInstance, "unknown-attachment-instance", Severity::Error},
    {Code::AttachmentNotOutput, "attachment-not-output", Severity::Error},
    {Code::AttachmentNotInput, "attachment-not-input", Severity::Error},
    {Code::DuplicateAttachment, "duplicate-attachment", Severity::Error},
    {Code::SelfAttachment, "self-attachment", Severity::Error},
    {Code::SyncTwoActive, "sync-two-active", Severity::Error},
    {Code::ImmediateCycle, "immediate-cycle", Severity::Error},
    {Code::UnusedElemType, "unused-elem-type", Severity::Warning},
    {Code::UnusedInteraction, "unused-interaction", Severity::Warning},
    {Code::UnattachedInteraction, "unattached-interaction", Severity::Warning},
    {Code::SyncAllPassive, "sync-all-passive", Severity::Warning},
    {Code::UnreachableBehavior, "unreachable-behavior", Severity::Warning},
    {Code::LocalDeadlock, "local-deadlock", Severity::Warning},
    {Code::AnalysisIncomplete, "analysis-incomplete", Severity::Warning},
    {Code::UnknownMeasureInstance, "unknown-measure-instance", Severity::Error},
    {Code::UnknownMeasureAction, "unknown-measure-action", Severity::Error},
    {Code::UnknownMeasureState, "unknown-measure-state", Severity::Error},
    {Code::InStateTransReward, "in-state-trans-reward", Severity::Error},
    {Code::DuplicateMeasure, "duplicate-measure", Severity::Warning},
};

const CodeInfo& info(Code code) {
    for (const CodeInfo& row : kCodes) {
        if (row.code == code) return row;
    }
    return kCodes[0];
}

void append_location(std::string& out, const Span& span) {
    out += span.file.empty() ? "<input>" : span.file;
    if (span.loc.known()) {
        out += ':';
        out += std::to_string(span.loc.line);
        out += ':';
        out += std::to_string(span.loc.column);
    }
    out += ": ";
}

std::string span_json(const Span& span) {
    std::string out = "{\"file\": " + obs::json_quote(span.file) +
                      ", \"line\": " + std::to_string(span.loc.line) +
                      ", \"column\": " + std::to_string(span.loc.column) + "}";
    return out;
}

}  // namespace

const char* severity_name(Severity severity) {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

const char* code_name(Code code) { return info(code).name; }

Severity code_severity(Code code) { return info(code).severity; }

std::size_t code_count() { return sizeof kCodes / sizeof kCodes[0]; }

const std::vector<Code>& all_codes() {
    static const std::vector<Code> codes = [] {
        std::vector<Code> out;
        out.reserve(code_count());
        for (const CodeInfo& row : kCodes) out.push_back(row.code);
        return out;
    }();
    return codes;
}

std::string render_text(const std::vector<Diagnostic>& diagnostics) {
    std::string out;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const Diagnostic& d : diagnostics) {
        if (d.severity == Severity::Error) ++errors;
        if (d.severity == Severity::Warning) ++warnings;
        append_location(out, d.span);
        out += severity_name(d.severity);
        out += ": ";
        out += d.message;
        out += " [";
        out += code_name(d.code);
        out += "]\n";
        for (const Note& note : d.notes) {
            out += "  ";
            append_location(out, note.span);
            out += "note: ";
            out += note.message;
            out += '\n';
        }
    }
    if (!diagnostics.empty()) {
        out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
               " warning(s)\n";
    }
    return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
    std::string out = "{\n  \"diagnostics\": [";
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        if (d.severity == Severity::Error) ++errors;
        if (d.severity == Severity::Warning) ++warnings;
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"severity\": ";
        out += obs::json_quote(severity_name(d.severity));
        out += ", \"code\": ";
        out += obs::json_quote(code_name(d.code));
        out += ", \"message\": ";
        out += obs::json_quote(d.message);
        out += ", \"span\": ";
        out += span_json(d.span);
        out += ", \"notes\": [";
        for (std::size_t n = 0; n < d.notes.size(); ++n) {
            if (n != 0) out += ", ";
            out += "{\"message\": " + obs::json_quote(d.notes[n].message) +
                   ", \"span\": " + span_json(d.notes[n].span) + "}";
        }
        out += "]}";
    }
    out += diagnostics.empty() ? "],\n" : "\n  ],\n";
    out += "  \"errors\": " + std::to_string(errors) + ",\n";
    out += "  \"warnings\": " + std::to_string(warnings) + "\n}\n";
    return out;
}

}  // namespace dpma::analysis
