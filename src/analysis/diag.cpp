#include "analysis/diag.hpp"

#include "obs/json.hpp"

namespace dpma::analysis {
namespace {

struct CodeInfo {
    Code code;
    const char* name;
    Severity severity;
};

// One row per Code enumerator, in declaration order.  code_count() is
// asserted against the fixture directory in the test suite, so adding a code
// without a fixture fails loudly.
constexpr CodeInfo kCodes[] = {
    {Code::ParseError, "parse-error", Severity::Error},
    {Code::DuplicateElemType, "duplicate-elem-type", Severity::Error},
    {Code::DuplicateBehavior, "duplicate-behavior", Severity::Error},
    {Code::DuplicateInteraction, "duplicate-interaction", Severity::Error},
    {Code::DuplicateInstance, "duplicate-instance", Severity::Error},
    {Code::UndeclaredBehavior, "undeclared-behavior", Severity::Error},
    {Code::CallArityMismatch, "call-arity-mismatch", Severity::Error},
    {Code::UndeclaredElemType, "undeclared-elem-type", Severity::Error},
    {Code::InstanceArityMismatch, "instance-arity-mismatch", Severity::Error},
    {Code::UnknownAttachmentInstance, "unknown-attachment-instance", Severity::Error},
    {Code::AttachmentNotOutput, "attachment-not-output", Severity::Error},
    {Code::AttachmentNotInput, "attachment-not-input", Severity::Error},
    {Code::DuplicateAttachment, "duplicate-attachment", Severity::Error},
    {Code::SelfAttachment, "self-attachment", Severity::Error},
    {Code::SyncTwoActive, "sync-two-active", Severity::Error},
    {Code::ImmediateCycle, "immediate-cycle", Severity::Error},
    {Code::UnusedElemType, "unused-elem-type", Severity::Warning},
    {Code::UnusedInteraction, "unused-interaction", Severity::Warning},
    {Code::UnattachedInteraction, "unattached-interaction", Severity::Warning},
    {Code::SyncAllPassive, "sync-all-passive", Severity::Warning},
    {Code::UnreachableBehavior, "unreachable-behavior", Severity::Warning},
    {Code::LocalDeadlock, "local-deadlock", Severity::Warning},
    {Code::AnalysisIncomplete, "analysis-incomplete", Severity::Warning},
    {Code::UnknownMeasureInstance, "unknown-measure-instance", Severity::Error},
    {Code::UnknownMeasureAction, "unknown-measure-action", Severity::Error},
    {Code::UnknownMeasureState, "unknown-measure-state", Severity::Error},
    {Code::InStateTransReward, "in-state-trans-reward", Severity::Error},
    {Code::DuplicateMeasure, "duplicate-measure", Severity::Warning},
    {Code::NonPositiveRate, "non-positive-rate", Severity::Error},
    {Code::UnboundedParameter, "unbounded-parameter", Severity::Warning},
    {Code::DeadInteraction, "dead-interaction", Severity::Warning},
    {Code::SyncDeadlock, "sync-deadlock", Severity::Warning},
    {Code::NonErgodic, "non-ergodic", Severity::Warning},
};

const CodeInfo& info(Code code) {
    for (const CodeInfo& row : kCodes) {
        if (row.code == code) return row;
    }
    return kCodes[0];
}

void append_location(std::string& out, const Span& span) {
    out += span.file.empty() ? "<input>" : span.file;
    if (span.loc.known()) {
        out += ':';
        out += std::to_string(span.loc.line);
        out += ':';
        out += std::to_string(span.loc.column);
    }
    out += ": ";
}

std::string span_json(const Span& span) {
    std::string out = "{\"file\": " + obs::json_quote(span.file) +
                      ", \"line\": " + std::to_string(span.loc.line) +
                      ", \"column\": " + std::to_string(span.loc.column) + "}";
    return out;
}

}  // namespace

const char* severity_name(Severity severity) {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

const char* code_name(Code code) { return info(code).name; }

Severity code_severity(Code code) { return info(code).severity; }

std::size_t code_count() { return sizeof kCodes / sizeof kCodes[0]; }

const std::vector<Code>& all_codes() {
    static const std::vector<Code> codes = [] {
        std::vector<Code> out;
        out.reserve(code_count());
        for (const CodeInfo& row : kCodes) out.push_back(row.code);
        return out;
    }();
    return codes;
}

std::string render_text(const std::vector<Diagnostic>& diagnostics) {
    std::string out;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const Diagnostic& d : diagnostics) {
        if (d.severity == Severity::Error) ++errors;
        if (d.severity == Severity::Warning) ++warnings;
        append_location(out, d.span);
        out += severity_name(d.severity);
        out += ": ";
        out += d.message;
        out += " [";
        out += code_name(d.code);
        out += "]\n";
        for (const Note& note : d.notes) {
            out += "  ";
            append_location(out, note.span);
            out += "note: ";
            out += note.message;
            out += '\n';
        }
    }
    if (!diagnostics.empty()) {
        out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
               " warning(s)\n";
    }
    return out;
}

std::string render_json(const std::vector<Diagnostic>& diagnostics) {
    std::string out = "{\n  \"diagnostics\": [";
    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        if (d.severity == Severity::Error) ++errors;
        if (d.severity == Severity::Warning) ++warnings;
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"severity\": ";
        out += obs::json_quote(severity_name(d.severity));
        out += ", \"code\": ";
        out += obs::json_quote(code_name(d.code));
        out += ", \"message\": ";
        out += obs::json_quote(d.message);
        out += ", \"span\": ";
        out += span_json(d.span);
        out += ", \"notes\": [";
        for (std::size_t n = 0; n < d.notes.size(); ++n) {
            if (n != 0) out += ", ";
            out += "{\"message\": " + obs::json_quote(d.notes[n].message) +
                   ", \"span\": " + span_json(d.notes[n].span) + "}";
        }
        out += "]}";
    }
    out += diagnostics.empty() ? "],\n" : "\n  ],\n";
    out += "  \"errors\": " + std::to_string(errors) + ",\n";
    out += "  \"warnings\": " + std::to_string(warnings) + "\n}\n";
    return out;
}

namespace {

const char* sarif_level(Severity severity) {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "none";
}

/// physicalLocation object; returns empty when the span has no file (SARIF
/// locations require an artifact URI, and results may omit locations).
std::string sarif_location(const Span& span) {
    if (span.file.empty()) return {};
    std::string out = "{\"physicalLocation\": {\"artifactLocation\": {\"uri\": " +
                      obs::json_quote(span.file) + "}";
    if (span.loc.known()) {
        out += ", \"region\": {\"startLine\": " + std::to_string(span.loc.line) +
               ", \"startColumn\": " + std::to_string(span.loc.column) + "}";
    }
    out += "}}";
    return out;
}

}  // namespace

std::string render_sarif(const std::vector<Diagnostic>& diagnostics,
                         std::string_view tool_name) {
    // Rules: the distinct codes that occur, in first-occurrence order, so the
    // log stays small and ruleIndex stays stable for a given input.
    std::vector<Code> rules;
    auto rule_index = [&rules](Code code) -> std::size_t {
        for (std::size_t i = 0; i < rules.size(); ++i) {
            if (rules[i] == code) return i;
        }
        rules.push_back(code);
        return rules.size() - 1;
    };
    std::string results;
    for (std::size_t i = 0; i < diagnostics.size(); ++i) {
        const Diagnostic& d = diagnostics[i];
        results += i == 0 ? "\n" : ",\n";
        results += "        {\"ruleId\": ";
        results += obs::json_quote(code_name(d.code));
        results += ", \"ruleIndex\": " + std::to_string(rule_index(d.code));
        results += ", \"level\": ";
        results += obs::json_quote(sarif_level(d.severity));
        results += ", \"message\": {\"text\": " + obs::json_quote(d.message) + "}";
        const std::string location = sarif_location(d.span);
        if (!location.empty()) {
            results += ", \"locations\": [" + location + "]";
        }
        std::string related;
        for (const Note& note : d.notes) {
            std::string note_location = sarif_location(note.span);
            if (note_location.empty()) continue;
            // Splice the message into the location object.
            note_location.insert(note_location.size() - 1,
                                 ", \"message\": {\"text\": " + obs::json_quote(note.message) +
                                     "}");
            if (!related.empty()) related += ", ";
            related += note_location;
        }
        if (!related.empty()) {
            results += ", \"relatedLocations\": [" + related + "]";
        }
        results += "}";
    }
    std::string rule_objects;
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (i != 0) rule_objects += ", ";
        rule_objects += "{\"id\": ";
        rule_objects += obs::json_quote(code_name(rules[i]));
        rule_objects += ", \"defaultConfiguration\": {\"level\": ";
        rule_objects += obs::json_quote(sarif_level(code_severity(rules[i])));
        rule_objects += "}}";
    }
    std::string out =
        "{\n"
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\"driver\": {\"name\": " +
        obs::json_quote(tool_name) +
        ", \"informationUri\": \"https://example.invalid/dpma\", \"rules\": [" + rule_objects +
        "]}},\n"
        "      \"results\": [" +
        results + (diagnostics.empty() ? "]\n" : "\n      ]\n") +
        "    }\n"
        "  ]\n"
        "}\n";
    return out;
}

}  // namespace dpma::analysis
