#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "adl/compose.hpp"
#include "aemilia/parser.hpp"
#include "core/error.hpp"
#include "core/text.hpp"
#include "lts/rate.hpp"

namespace dpma::analysis {
namespace {

/// An occurrence that decides the timing of a synchronisation: exponential,
/// immediate and general rates are all "active" in the EMPA sense.
bool is_active(const lts::Rate& rate) noexcept {
    return lts::is_timed(rate) || lts::is_immediate(rate);
}

/// First occurrence of \p action in the behaviours of \p type satisfying
/// \p pred, or nullptr.
template <typename Pred>
const adl::Action* find_occurrence(const adl::ElemType& type, const std::string& action,
                                   Pred pred) {
    for (const adl::BehaviorDef& def : type.behaviors) {
        for (const adl::Alternative& alt : def.alternatives) {
            for (const adl::Action& act : alt.actions) {
                if (act.name == action && pred(act)) return &act;
            }
        }
    }
    return nullptr;
}

class Linter {
public:
    Linter(const adl::ArchiType& archi, std::string_view file, const LintOptions& options,
           LintResult& result)
        : archi_(archi), file_(file), options_(options), result_(result) {}

    void run() {
        check_elem_types();
        check_instances();
        check_attachments();
        check_usage();
        check_sync_rates();
        if (options_.reachability && result_.error_count() == 0) check_reachability();
    }

private:
    [[nodiscard]] Span at(const SourceLoc& loc) const { return Span{file_, loc}; }

    Diagnostic& emit(Code code, std::string message, const SourceLoc& loc) {
        result_.diagnostics.push_back(
            Diagnostic{code_severity(code), code, std::move(message), at(loc), {}});
        return result_.diagnostics.back();
    }

    static void note(Diagnostic& diag, std::string message, const Span& span) {
        diag.notes.push_back(Note{std::move(message), span});
    }

    void note(Diagnostic& diag, std::string message, const SourceLoc& loc) const {
        note(diag, std::move(message), at(loc));
    }

    void note_in_type(Diagnostic& diag, const adl::ElemType& type) const {
        note(diag, "in element type '" + type.name + "'", type.loc);
    }

    // -- element types ----------------------------------------------------

    void check_elem_types() {
        std::map<std::string, SourceLoc> seen_types;
        for (const adl::ElemType& type : archi_.elem_types) {
            auto [it, inserted] = seen_types.emplace(type.name, type.loc);
            if (!inserted) {
                Diagnostic& d = emit(Code::DuplicateElemType,
                                     "element type '" + type.name + "' is defined twice",
                                     type.loc);
                note(d, "previous definition is here", it->second);
            }
            check_behaviors(type);
            check_interactions(type);
            check_reachable_behaviors(type);
        }
    }

    void check_behaviors(const adl::ElemType& type) {
        std::map<std::string, const adl::BehaviorDef*> by_name;
        for (const adl::BehaviorDef& def : type.behaviors) {
            auto [it, inserted] = by_name.emplace(def.name, &def);
            if (!inserted) {
                Diagnostic& d = emit(Code::DuplicateBehavior,
                                     "behaviour '" + def.name + "' is defined twice",
                                     def.loc);
                note(d, "previous definition is here", it->second->loc);
                note_in_type(d, type);
            }
        }
        for (const adl::BehaviorDef& def : type.behaviors) {
            for (const adl::Alternative& alt : def.alternatives) {
                const adl::BehaviorCall& call = alt.continuation;
                auto it = by_name.find(call.behavior);
                if (it == by_name.end()) {
                    Diagnostic& d = emit(Code::UndeclaredBehavior,
                                         "behaviour '" + def.name + "' invokes undeclared behaviour '" +
                                             call.behavior + "'",
                                         call.loc);
                    note_in_type(d, type);
                    continue;
                }
                const adl::BehaviorDef& target = *it->second;
                if (call.args.size() != target.params.size()) {
                    Diagnostic& d = emit(
                        Code::CallArityMismatch,
                        "behaviour '" + target.name + "' expects " +
                            std::to_string(target.params.size()) + " argument(s), got " +
                            std::to_string(call.args.size()),
                        call.loc);
                    note(d, "behaviour '" + target.name + "' is declared here", target.loc);
                }
            }
        }
    }

    void check_interactions(const adl::ElemType& type) {
        std::map<std::string, SourceLoc> seen;
        auto check_list = [&](const std::vector<std::string>& names, bool input) {
            for (std::size_t i = 0; i < names.size(); ++i) {
                const SourceLoc loc = input ? type.input_loc(i) : type.output_loc(i);
                auto [it, inserted] = seen.emplace(names[i], loc);
                if (!inserted) {
                    Diagnostic& d = emit(Code::DuplicateInteraction,
                                         "interaction '" + names[i] + "' is declared twice",
                                         loc);
                    note(d, "previous declaration is here", it->second);
                    note_in_type(d, type);
                }
            }
        };
        check_list(type.input_interactions, /*input=*/true);
        check_list(type.output_interactions, /*input=*/false);
    }

    /// BFS over the behaviour call graph from the initial behaviour; every
    /// equation never invoked is dead weight (and often a typo).
    void check_reachable_behaviors(const adl::ElemType& type) {
        if (type.behaviors.empty()) return;
        std::map<std::string, std::size_t> index;
        for (std::size_t i = 0; i < type.behaviors.size(); ++i)
            index.emplace(type.behaviors[i].name, i);
        std::vector<char> reached(type.behaviors.size(), 0);
        std::vector<std::size_t> queue{0};
        reached[0] = 1;
        while (!queue.empty()) {
            const adl::BehaviorDef& def = type.behaviors[queue.back()];
            queue.pop_back();
            for (const adl::Alternative& alt : def.alternatives) {
                auto it = index.find(alt.continuation.behavior);
                if (it == index.end() || reached[it->second]) continue;
                reached[it->second] = 1;
                queue.push_back(it->second);
            }
        }
        for (std::size_t i = 0; i < type.behaviors.size(); ++i) {
            if (reached[i]) continue;
            Diagnostic& d = emit(Code::UnreachableBehavior,
                                 "behaviour '" + type.behaviors[i].name +
                                     "' is never invoked from the initial behaviour '" +
                                     type.behaviors.front().name + "'",
                                 type.behaviors[i].loc);
            note_in_type(d, type);
        }
    }

    // -- instances ---------------------------------------------------------

    void check_instances() {
        std::map<std::string, SourceLoc> seen;
        for (const adl::Instance& inst : archi_.instances) {
            auto [it, inserted] = seen.emplace(inst.name, inst.loc);
            if (!inserted) {
                Diagnostic& d = emit(Code::DuplicateInstance,
                                     "instance '" + inst.name + "' is declared twice",
                                     inst.loc);
                note(d, "previous declaration is here", it->second);
            }
            const adl::ElemType* type = archi_.find_type(inst.type);
            if (type == nullptr) {
                emit(Code::UndeclaredElemType,
                     "instance '" + inst.name + "' has undeclared element type '" + inst.type +
                         "'",
                     inst.loc);
                continue;
            }
            const std::size_t params =
                type->behaviors.empty() ? 0 : type->behaviors.front().params.size();
            if (inst.args.size() != params) {
                Diagnostic& d = emit(Code::InstanceArityMismatch,
                                     "element type '" + inst.type + "' expects " +
                                         std::to_string(params) + " argument(s), got " +
                                         std::to_string(inst.args.size()),
                                     inst.loc);
                note_in_type(d, *type);
            }
        }
    }

    // -- attachments -------------------------------------------------------

    [[nodiscard]] static bool contains(const std::vector<std::string>& names,
                                       const std::string& name) {
        return std::find(names.begin(), names.end(), name) != names.end();
    }

    void check_attachments() {
        // UNI discipline: each (instance, port) endpoint may appear in at
        // most one attachment, on its declared side.
        std::map<std::pair<std::string, std::string>, SourceLoc> used_from;
        std::map<std::pair<std::string, std::string>, SourceLoc> used_to;
        for (const adl::Attachment& att : archi_.attachments) {
            const SourceLoc from_loc = att.from_loc.known() ? att.from_loc : att.loc;
            const SourceLoc to_loc = att.to_loc.known() ? att.to_loc : att.loc;
            const adl::Instance* from = archi_.find_instance(att.from_instance);
            const adl::Instance* to = archi_.find_instance(att.to_instance);
            if (from == nullptr) {
                emit(Code::UnknownAttachmentInstance,
                     "attachment references unknown instance '" + att.from_instance + "'",
                     from_loc);
            }
            if (to == nullptr) {
                emit(Code::UnknownAttachmentInstance,
                     "attachment references unknown instance '" + att.to_instance + "'",
                     to_loc);
            }
            if (from != nullptr) {
                const adl::ElemType* type = archi_.find_type(from->type);
                if (type != nullptr && !contains(type->output_interactions, att.from_port)) {
                    Diagnostic& d = emit(Code::AttachmentNotOutput,
                                         "'" + att.from_port +
                                             "' is not an output interaction of element type '" +
                                             type->name + "'",
                                         from_loc);
                    note_in_type(d, *type);
                }
            }
            if (to != nullptr) {
                const adl::ElemType* type = archi_.find_type(to->type);
                if (type != nullptr && !contains(type->input_interactions, att.to_port)) {
                    Diagnostic& d = emit(Code::AttachmentNotInput,
                                         "'" + att.to_port +
                                             "' is not an input interaction of element type '" +
                                             type->name + "'",
                                         to_loc);
                    note_in_type(d, *type);
                }
            }
            if (att.from_instance == att.to_instance && from != nullptr) {
                emit(Code::SelfAttachment,
                     "instance '" + att.from_instance +
                         "' is attached to itself; a sequential instance cannot synchronise "
                         "with itself",
                     att.loc);
            }
            if (from != nullptr) {
                auto key = std::make_pair(att.from_instance, att.from_port);
                auto [it, inserted] = used_from.emplace(key, from_loc);
                if (!inserted) {
                    Diagnostic& d = emit(Code::DuplicateAttachment,
                                         "output interaction '" + att.from_instance + "." +
                                             att.from_port +
                                             "' is attached more than once (UNI interactions "
                                             "allow a single attachment)",
                                         from_loc);
                    note(d, "previous attachment is here", it->second);
                }
            }
            if (to != nullptr) {
                auto key = std::make_pair(att.to_instance, att.to_port);
                auto [it, inserted] = used_to.emplace(key, to_loc);
                if (!inserted) {
                    Diagnostic& d = emit(Code::DuplicateAttachment,
                                         "input interaction '" + att.to_instance + "." +
                                             att.to_port +
                                             "' is attached more than once (UNI interactions "
                                             "allow a single attachment)",
                                         to_loc);
                    note(d, "previous attachment is here", it->second);
                }
            }
        }
    }

    // -- hygiene -----------------------------------------------------------

    void check_usage() {
        for (const adl::ElemType& type : archi_.elem_types) {
            const bool used = std::any_of(
                archi_.instances.begin(), archi_.instances.end(),
                [&](const adl::Instance& inst) { return inst.type == type.name; });
            if (!used) {
                emit(Code::UnusedElemType,
                     "element type '" + type.name + "' is never instantiated", type.loc);
            }
            auto check_list = [&](const std::vector<std::string>& names, bool input) {
                for (std::size_t i = 0; i < names.size(); ++i) {
                    const adl::Action* occ = find_occurrence(
                        type, names[i], [](const adl::Action&) { return true; });
                    if (occ == nullptr) {
                        Diagnostic& d = emit(
                            Code::UnusedInteraction,
                            "interaction '" + names[i] +
                                "' is declared but never occurs in the behaviours",
                            input ? type.input_loc(i) : type.output_loc(i));
                        note_in_type(d, type);
                    }
                }
            };
            check_list(type.input_interactions, /*input=*/true);
            check_list(type.output_interactions, /*input=*/false);
        }

        // An unattached interaction is blocked by compose(): legitimate as a
        // modelling device (restriction), but worth a warning because the
        // instance may silently lose behaviour.
        for (const adl::Instance& inst : archi_.instances) {
            const adl::ElemType* type = archi_.find_type(inst.type);
            if (type == nullptr) continue;
            auto attached = [&](const std::string& port, bool input) {
                for (const adl::Attachment& att : archi_.attachments) {
                    if (input && att.to_instance == inst.name && att.to_port == port)
                        return true;
                    if (!input && att.from_instance == inst.name && att.from_port == port)
                        return true;
                }
                return false;
            };
            auto check_list = [&](const std::vector<std::string>& names, bool input) {
                for (std::size_t i = 0; i < names.size(); ++i) {
                    if (attached(names[i], input)) continue;
                    Diagnostic& d = emit(
                        Code::UnattachedInteraction,
                        std::string(input ? "input" : "output") + " interaction '" + inst.name +
                            "." + names[i] + "' is not attached and will be blocked",
                        inst.loc);
                    note(d, "interaction '" + names[i] + "' is declared here",
                         input ? type->input_loc(i) : type->output_loc(i));
                }
            };
            check_list(type->input_interactions, /*input=*/true);
            check_list(type->output_interactions, /*input=*/false);
        }
    }

    // -- rate kinds on synchronisations -------------------------------------

    void check_sync_rates() {
        // sync-all-passive is only meaningful once the model carries timing
        // at all; a purely functional (all-passive/unspecified) model such as
        // the paper's untimed RPC spec is fine.
        bool timed = false;
        for (const adl::ElemType& type : archi_.elem_types) {
            for (const adl::BehaviorDef& def : type.behaviors) {
                for (const adl::Alternative& alt : def.alternatives) {
                    for (const adl::Action& act : alt.actions) {
                        if (is_active(act.rate)) timed = true;
                    }
                }
            }
        }

        for (const adl::Attachment& att : archi_.attachments) {
            const adl::Instance* from = archi_.find_instance(att.from_instance);
            const adl::Instance* to = archi_.find_instance(att.to_instance);
            if (from == nullptr || to == nullptr) continue;
            const adl::ElemType* from_type = archi_.find_type(from->type);
            const adl::ElemType* to_type = archi_.find_type(to->type);
            if (from_type == nullptr || to_type == nullptr) continue;

            const adl::Action* from_active = find_occurrence(
                *from_type, att.from_port, [](const adl::Action& a) { return is_active(a.rate); });
            const adl::Action* to_active = find_occurrence(
                *to_type, att.to_port, [](const adl::Action& a) { return is_active(a.rate); });
            if (from_active != nullptr && to_active != nullptr) {
                Diagnostic& d = emit(
                    Code::SyncTwoActive,
                    "synchronisation '" + att.from_instance + "." + att.from_port + "' -> '" +
                        att.to_instance + "." + att.to_port +
                        "' has two active parties; exactly one side must carry the rate",
                    att.loc);
                note(d, "active occurrence of '" + att.from_port + "' is here",
                     from_active->loc);
                note(d, "active occurrence of '" + att.to_port + "' is here", to_active->loc);
                continue;
            }

            if (!timed) continue;
            const adl::Action* from_any = find_occurrence(
                *from_type, att.from_port, [](const adl::Action&) { return true; });
            const adl::Action* to_any = find_occurrence(
                *to_type, att.to_port, [](const adl::Action&) { return true; });
            const adl::Action* from_nonpassive = find_occurrence(
                *from_type, att.from_port,
                [](const adl::Action& a) { return !lts::is_passive(a.rate); });
            const adl::Action* to_nonpassive = find_occurrence(
                *to_type, att.to_port,
                [](const adl::Action& a) { return !lts::is_passive(a.rate); });
            if (from_any != nullptr && to_any != nullptr && from_nonpassive == nullptr &&
                to_nonpassive == nullptr) {
                Diagnostic& d = emit(
                    Code::SyncAllPassive,
                    "synchronisation '" + att.from_instance + "." + att.from_port + "' -> '" +
                        att.to_instance + "." + att.to_port +
                        "' is passive on both sides in a timed model; no party decides its "
                        "timing",
                    att.loc);
                note(d, "passive occurrence of '" + att.from_port + "' is here", from_any->loc);
                note(d, "passive occurrence of '" + att.to_port + "' is here", to_any->loc);
            }
        }
    }

    // -- per-instance reachability (local LTS) -------------------------------

    void check_reachability() {
        lts::ActionTable actions;
        for (const adl::Instance& inst : archi_.instances) {
            const adl::ElemType* type = archi_.find_type(inst.type);
            if (type == nullptr || type->behaviors.empty()) continue;
            if (type->behaviors.front().params.size() != inst.args.size()) continue;
            adl::LocalLts local;
            try {
                local = adl::build_local_lts(*type, std::span<const long>(inst.args), actions,
                                             options_.max_local_states);
            } catch (const Error& error) {
                Diagnostic& d = emit(Code::AnalysisIncomplete,
                                     "local reachability analysis of instance '" + inst.name +
                                         "' was aborted: " + error.what(),
                                     inst.loc);
                note_in_type(d, *type);
                continue;
            }
            check_local_deadlocks(inst, *type, local);
            check_immediate_cycles(inst, *type, local);
        }
    }

    void check_local_deadlocks(const adl::Instance& inst, const adl::ElemType& type,
                               const adl::LocalLts& local) {
        std::size_t dead = 0;
        std::size_t first = local.out.size();
        for (std::size_t s = 0; s < local.out.size(); ++s) {
            if (local.out[s].empty()) {
                if (dead == 0) first = s;
                ++dead;
            }
        }
        if (dead == 0) return;
        Diagnostic& d = emit(
            Code::LocalDeadlock,
            "instance '" + inst.name + "' can reach " + std::to_string(dead) +
                " local state(s) with no outgoing transitions, e.g. '" +
                (first < local.state_names.size() ? local.state_names[first] : "?") + "'",
            inst.loc);
        note_in_type(d, type);
    }

    /// A cycle of immediate transitions never lets time advance: the
    /// vanishing-state elimination of the Markovian phase would diverge.
    void check_immediate_cycles(const adl::Instance& inst, const adl::ElemType& type,
                                const adl::LocalLts& local) {
        enum : char { White, Grey, Black };
        std::vector<char> colour(local.out.size(), White);
        // Iterative DFS over the immediate-only subgraph.
        for (std::uint32_t root = 0; root < local.out.size(); ++root) {
            if (colour[root] != White) continue;
            std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
            colour[root] = Grey;
            while (!stack.empty()) {
                const std::uint32_t state = stack.back().first;
                if (stack.back().second >= local.out[state].size()) {
                    colour[state] = Black;
                    stack.pop_back();
                    continue;
                }
                const adl::LocalLts::LocalTransition& tr =
                    local.out[state][stack.back().second++];
                if (!lts::is_immediate(tr.rate)) continue;
                if (colour[tr.target] == Grey) {
                    Diagnostic& d = emit(
                        Code::ImmediateCycle,
                        "instance '" + inst.name +
                            "' has a cycle of immediate actions through local state '" +
                            (tr.target < local.state_names.size() ? local.state_names[tr.target]
                                                                  : "?") +
                            "'; time can never advance there",
                        inst.loc);
                    note_in_type(d, type);
                    return;  // one report per instance is enough
                }
                if (colour[tr.target] == White) {
                    colour[tr.target] = Grey;
                    stack.emplace_back(tr.target, 0);
                }
            }
        }
    }

    const adl::ArchiType& archi_;
    std::string file_;
    const LintOptions& options_;
    LintResult& result_;
};

}  // namespace

std::size_t LintResult::error_count() const {
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) { return d.severity == Severity::Error; }));
}

std::size_t LintResult::warning_count() const {
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) { return d.severity == Severity::Warning; }));
}

LintResult lint_model(const adl::ArchiType& archi, std::string_view file,
                      const LintOptions& options) {
    LintResult result;
    Linter(archi, file, options, result).run();
    return result;
}

void lint_measures(const adl::ArchiType& archi, const std::vector<adl::Measure>& measures,
                   std::string_view measures_file, std::string_view spec_file,
                   LintResult& result) {
    auto at = [&](const SourceLoc& loc) { return Span{std::string(measures_file), loc}; };
    auto at_spec = [&](const SourceLoc& loc) { return Span{std::string(spec_file), loc}; };
    auto emit = [&](Code code, std::string message, const SourceLoc& loc) -> Diagnostic& {
        result.diagnostics.push_back(
            Diagnostic{code_severity(code), code, std::move(message), at(loc), {}});
        return result.diagnostics.back();
    };

    std::map<std::string, SourceLoc> seen;
    for (const adl::Measure& measure : measures) {
        auto [it, inserted] = seen.emplace(measure.name, measure.loc);
        if (!inserted) {
            Diagnostic& d = emit(Code::DuplicateMeasure,
                                 "measure '" + measure.name + "' is defined twice", measure.loc);
            d.notes.push_back(Note{"previous definition is here", at(it->second)});
        }
        for (const adl::RewardClause& clause : measure.clauses) {
            const std::string* instance_name = nullptr;
            if (const auto* enabled = std::get_if<adl::EnabledPredicate>(&clause.predicate)) {
                instance_name = &enabled->instance;
            } else if (const auto* in_state =
                           std::get_if<adl::InStatePredicate>(&clause.predicate)) {
                instance_name = &in_state->instance;
            }
            if (instance_name == nullptr) continue;
            const adl::Instance* inst = archi.find_instance(*instance_name);
            if (inst == nullptr) {
                emit(Code::UnknownMeasureInstance,
                     "measure '" + measure.name + "' references unknown instance '" +
                         *instance_name + "'",
                     clause.loc);
                continue;
            }
            const adl::ElemType* type = archi.find_type(inst->type);
            if (type == nullptr) continue;

            if (const auto* enabled = std::get_if<adl::EnabledPredicate>(&clause.predicate)) {
                const adl::Action* occ = find_occurrence(
                    *type, enabled->action, [](const adl::Action&) { return true; });
                if (occ == nullptr) {
                    Diagnostic& d = emit(Code::UnknownMeasureAction,
                                         "measure '" + measure.name + "' references action '" +
                                             enabled->action +
                                             "', which never occurs in the behaviours of "
                                             "element type '" +
                                             type->name + "'",
                                         clause.loc);
                    d.notes.push_back(Note{"element type '" + type->name + "' is defined here",
                                           at_spec(type->loc)});
                }
            } else if (const auto* in_state =
                           std::get_if<adl::InStatePredicate>(&clause.predicate)) {
                if (clause.target == adl::RewardClause::Target::Trans) {
                    emit(Code::InStateTransReward,
                         "measure '" + measure.name +
                             "': IN_STATE predicates select states, not transitions, and "
                             "cannot feed TRANS_REWARD",
                         clause.loc);
                }
                // Local state names are "Behaviour(arg, ...)": a prefix is
                // plausible iff it relates to some behaviour name of the type
                // by prefix in either direction.
                const bool matches = std::any_of(
                    type->behaviors.begin(), type->behaviors.end(),
                    [&](const adl::BehaviorDef& def) {
                        return starts_with(def.name, in_state->state_prefix) ||
                               starts_with(in_state->state_prefix, def.name);
                    });
                if (!matches) {
                    Diagnostic& d = emit(Code::UnknownMeasureState,
                                         "measure '" + measure.name +
                                             "' references state prefix '" +
                                             in_state->state_prefix +
                                             "', which matches no behaviour of element type '" +
                                             type->name + "'",
                                         clause.loc);
                    d.notes.push_back(Note{"element type '" + type->name + "' is defined here",
                                           at_spec(type->loc)});
                }
            }
        }
    }
}

LintResult lint_text(std::string_view spec_text, std::string_view spec_file,
                     std::string_view measures_text, std::string_view measures_file,
                     const LintOptions& options) {
    LintResult result;
    adl::ArchiType archi;
    try {
        archi = aemilia::parse_archi_type_unchecked(spec_text);
    } catch (const ParseError& error) {
        result.diagnostics.push_back(Diagnostic{
            Severity::Error, Code::ParseError, error.what(),
            Span{std::string(spec_file), SourceLoc{error.line(), error.column()}}, {}});
        return result;
    }
    result = lint_model(archi, spec_file, options);
    if (!measures_text.empty() || !measures_file.empty()) {
        try {
            const std::vector<adl::Measure> measures = aemilia::parse_measures(measures_text);
            lint_measures(archi, measures, measures_file, spec_file, result);
        } catch (const ParseError& error) {
            result.diagnostics.push_back(Diagnostic{
                Severity::Error, Code::ParseError, error.what(),
                Span{std::string(measures_file), SourceLoc{error.line(), error.column()}}, {}});
        }
    }
    return result;
}

LintResult lint_text(std::string_view spec_text, std::string_view spec_file,
                     const LintOptions& options) {
    return lint_text(spec_text, spec_file, /*measures_text=*/{}, /*measures_file=*/{}, options);
}

}  // namespace dpma::analysis
