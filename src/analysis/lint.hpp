#pragma once

/// \file lint.hpp
/// Semantic analysis ("lint") of Æmilia architectural descriptions and
/// measure files.  Unlike adl::validate — which throws on the *first*
/// problem — the linter collects every diagnostic it can find, each with a
/// file:line:column span, so a malformed model never reaches compose(), the
/// Markovian phase or the simulator.
///
/// Checks performed (codes in brackets; catalog in DESIGN.md):
///  * duplicate element types / behaviours / interactions / instances /
///    measures [duplicate-*]
///  * behaviour resolution and call/instance arities [undeclared-behavior,
///    call-arity-mismatch, undeclared-elem-type, instance-arity-mismatch]
///  * attachment well-formedness: known instances, declared output→input
///    ports, UNI single attachment, no self loops [unknown-attachment-
///    instance, attachment-not-output, attachment-not-input,
///    duplicate-attachment, self-attachment]
///  * rate-kind misuse on synchronisations — the situations that invalidate
///    the Markovian phase: two active parties [sync-two-active], an
///    always-passive synchronisation in a timed model [sync-all-passive],
///    local cycles of immediate actions that defeat vanishing-state
///    elimination [immediate-cycle]
///  * hygiene: unused element types and interactions, unattached (blocked)
///    interaction ports [unused-elem-type, unused-interaction,
///    unattached-interaction]
///  * reachability via the per-instance local LTS (adl::build_local_lts):
///    behaviour equations never invoked [unreachable-behavior] and local
///    states with no outgoing transitions [local-deadlock]; if the local
///    exploration is aborted (state bound, evaluation error) the linter
///    reports [analysis-incomplete] instead of guessing
///  * measure files: predicates must name existing instances, actions and
///    behaviour-state prefixes, and IN_STATE cannot feed TRANS_REWARD
///    [unknown-measure-*, in-state-trans-reward]
///
/// `dpma_cli lint` is the command-line front end; `dpma_cli check/solve/
/// simulate/sweep` run lint_text automatically before any analysis.

#include <string_view>
#include <vector>

#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "analysis/diag.hpp"

namespace dpma::analysis {

struct LintOptions {
    /// Per-instance bound for the local-LTS reachability checks; exceeding
    /// it yields [analysis-incomplete], not an error.
    std::size_t max_local_states = 20000;
    /// Disable the build_local_lts-based checks (cheap structural pass only).
    bool reachability = true;
};

struct LintResult {
    std::vector<Diagnostic> diagnostics;

    [[nodiscard]] std::size_t error_count() const;
    [[nodiscard]] std::size_t warning_count() const;
    /// No errors (warnings allowed): analysis may proceed.
    [[nodiscard]] bool ok() const { return error_count() == 0; }
    /// Not a single diagnostic of any severity.
    [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

/// Lints a parsed architectural type.  The AST may be unvalidated
/// (aemilia::parse_archi_type_unchecked) or even programmatic; \p file names
/// the originating file in every span (empty for string input).
[[nodiscard]] LintResult lint_model(const adl::ArchiType& archi,
                                    std::string_view file = {},
                                    const LintOptions& options = {});

/// Appends measure-file diagnostics (predicates resolved against \p archi)
/// to \p result.  \p spec_file names the file \p archi came from; it is only
/// used for related notes pointing into the specification.
void lint_measures(const adl::ArchiType& archi,
                   const std::vector<adl::Measure>& measures,
                   std::string_view measures_file, std::string_view spec_file,
                   LintResult& result);

/// Parses and lints a specification and (optionally) a measure file.  Parse
/// failures are reported as [parse-error] diagnostics, never thrown: this is
/// the entry point both of `dpma_cli lint` and of the automatic pre-analysis
/// lint run by the other CLI commands.
[[nodiscard]] LintResult lint_text(std::string_view spec_text,
                                   std::string_view spec_file,
                                   std::string_view measures_text,
                                   std::string_view measures_file,
                                   const LintOptions& options = {});

[[nodiscard]] LintResult lint_text(std::string_view spec_text,
                                   std::string_view spec_file,
                                   const LintOptions& options = {});

}  // namespace dpma::analysis
