#pragma once

/// \file diag.hpp
/// Structured diagnostics for the semantic analysis of Æmilia architectural
/// descriptions and measure files — the front-loaded validity layer the
/// TwoTowers toolset runs before any functional or Markovian analysis.
///
/// A Diagnostic is a (severity, code, message, span, related notes) record.
/// Codes are stable kebab-case identifiers (see DESIGN.md for the catalog);
/// each has a fixed default severity.  Rendering is either clang-style text
///
///     specs/rpc.aem:12:7: error: behaviour 'Idle' invokes undeclared
///     behaviour 'Buzy' [undeclared-behavior]
///     specs/rpc.aem:3:13: note: in element type 'Server_Type'
///
/// or strict JSON (obs::json helpers), consumed by `dpma_cli lint
/// --format json` and validated in the test suite with tools/json_check.

#include <string>
#include <string_view>
#include <vector>

#include "core/source.hpp"

namespace dpma::analysis {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* severity_name(Severity severity);

/// Every diagnostic the linter can emit.  Stable order: new codes go at the
/// end of their group so the rendered names never change meaning.
enum class Code {
    // Syntax (a ParseError surfaced as a collected diagnostic).
    ParseError,
    // Architectural structure (errors).
    DuplicateElemType,
    DuplicateBehavior,
    DuplicateInteraction,
    DuplicateInstance,
    UndeclaredBehavior,
    CallArityMismatch,
    UndeclaredElemType,
    InstanceArityMismatch,
    UnknownAttachmentInstance,
    AttachmentNotOutput,
    AttachmentNotInput,
    DuplicateAttachment,
    SelfAttachment,
    // Rate-kind misuse on synchronisations (Markovian-phase validity).
    SyncTwoActive,
    ImmediateCycle,
    // Architectural hygiene (warnings).
    UnusedElemType,
    UnusedInteraction,
    UnattachedInteraction,
    SyncAllPassive,
    UnreachableBehavior,
    LocalDeadlock,
    AnalysisIncomplete,
    // Measure files.
    UnknownMeasureInstance,
    UnknownMeasureAction,
    UnknownMeasureState,
    InStateTransReward,
    DuplicateMeasure,
    // Whole-model dataflow analyses (src/analysis/flow).
    NonPositiveRate,
    UnboundedParameter,
    DeadInteraction,
    SyncDeadlock,
    NonErgodic,
};

/// Kebab-case identifier rendered in brackets after the message, e.g.
/// "undeclared-behavior".
[[nodiscard]] const char* code_name(Code code);

/// The severity the linter assigns to the code.
[[nodiscard]] Severity code_severity(Code code);

/// Number of distinct diagnostic codes (for catalog-coverage tests).
[[nodiscard]] std::size_t code_count();

/// All codes, in declaration order.
[[nodiscard]] const std::vector<Code>& all_codes();

/// A position in a named source file.  `file` may be empty (stdin / string
/// input); loc may be unknown for programmatic constructs.
struct Span {
    std::string file;
    SourceLoc loc;
};

/// Secondary location attached to a diagnostic ("in element type ...").
struct Note {
    std::string message;
    Span span;
};

struct Diagnostic {
    Severity severity = Severity::Error;
    Code code = Code::ParseError;
    std::string message;
    Span span;
    std::vector<Note> notes;
};

/// Clang-style one-line-per-entry rendering of \p diagnostics (notes
/// indented under their parent), ending with a summary line when non-empty.
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diagnostics);

/// Strict-JSON object: {"diagnostics": [...], "errors": N, "warnings": N}.
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diagnostics);

/// SARIF 2.1.0 log with a single run.  `tool_name` becomes the driver name
/// ("dpma-lint" / "dpma-analyze"); every code that occurs is listed as a
/// reporting rule and every diagnostic becomes a result with its physical
/// location (notes become relatedLocations).  Strict JSON, shared by
/// `dpma_cli lint --format sarif` and `dpma_cli analyze --format sarif`.
[[nodiscard]] std::string render_sarif(const std::vector<Diagnostic>& diagnostics,
                                       std::string_view tool_name);

}  // namespace dpma::analysis
