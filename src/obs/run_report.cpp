#include "obs/run_report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/error.hpp"
#include "obs/atomic_write.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"

// Stamped on the dpma_obs target at configure time (src/obs/CMakeLists.txt);
// plain "unknown" when the source tree is not a git checkout.
#if !defined(DPMA_GIT_SHA)
#define DPMA_GIT_SHA "unknown"
#endif
#if !defined(DPMA_BUILD_TYPE)
#define DPMA_BUILD_TYPE "unknown"
#endif

namespace dpma::obs {
namespace {

std::uint64_t wall_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// JSON value for one environment variable: its quoted value, or null when
/// unset — a record must distinguish "unset" from "set to empty".
std::string env_json(const char* name) {
    const char* value = std::getenv(name);
    return value == nullptr ? "null" : json_quote(value);
}

}  // namespace

RunReport::RunReport(std::string tool)
    : tool_(std::move(tool)), start_ns_(wall_now_ns()) {}

void RunReport::set_args(const std::vector<std::string>& args) { args_ = args; }

void RunReport::add_series(std::string series_json) {
    std::string error;
    if (!json_valid(series_json, &error)) {
        throw Error("run report series is not valid JSON: " + error);
    }
    series_.push_back(std::move(series_json));
}

std::string RunReport::json() const {
    const double wall_s = static_cast<double>(wall_now_ns() - start_ns_) * 1e-9;
    const ResourceUsage usage = sample_resources();

    std::string out = "{\n";
    out += "  \"schema\": \"dpma-run-report/1\",\n";
    out += "  \"tool\": " + json_quote(tool_) + ",\n";
    out += "  \"args\": [";
    for (std::size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_quote(args_[i]);
    }
    out += "],\n";
    out += "  \"git_sha\": " + json_quote(DPMA_GIT_SHA) + ",\n";
    out += "  \"build_type\": " + json_quote(DPMA_BUILD_TYPE) + ",\n";
    out += "  \"env\": {\"DPMA_JOBS\": " + env_json("DPMA_JOBS") +
           ", \"DPMA_BENCH_SCALE\": " + env_json("DPMA_BENCH_SCALE") + "},\n";
    out += "  \"wall_s\": " + json_number(wall_s) + ",\n";
    out += "  \"cpu_user_s\": " + json_number(usage.cpu_user_s) + ",\n";
    out += "  \"cpu_system_s\": " + json_number(usage.cpu_system_s) + ",\n";
    out += "  \"peak_rss_kb\": " + std::to_string(usage.peak_rss_kb) + ",\n";
    out += "  \"minor_faults\": " + std::to_string(usage.minor_faults) + ",\n";
    out += "  \"major_faults\": " + std::to_string(usage.major_faults) + ",\n";
    out += "  \"resource_source\": " + json_quote(usage.source) + ",\n";
    out += "  \"metrics\": ";
    // metrics_json() ends with a newline; splice it in without one.
    std::string metrics = metrics_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    out += metrics;
    out += ",\n  \"spans\": [";
    const std::vector<SpanStats> spans = span_summary();
    for (std::size_t i = 0; i < spans.size(); ++i) {
        out += i > 0 ? ",\n    " : "\n    ";
        out += "{\"name\": " + json_quote(spans[i].name) +
               ", \"count\": " + std::to_string(spans[i].count) +
               ", \"total_us\": " + json_number(spans[i].total_us) + "}";
    }
    out += spans.empty() ? "],\n" : "\n  ],\n";
    out += "  \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        out += i > 0 ? ",\n    " : "\n    ";
        out += series_[i];
    }
    out += series_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void RunReport::write(const std::string& path) const {
    const std::string text = json();
    if (path == "-") {
        if (std::fputs(text.c_str(), stdout) == EOF || std::fflush(stdout) != 0) {
            throw Error("cannot write run report to stdout");
        }
        return;
    }
    // Atomic replace (temp + fsync + rename): a crash mid-write can never
    // leave a truncated BENCH_*.json, and a short write throws instead of
    // exiting 0.
    atomic_write(path, text);
}

std::string report_path(const std::string& tool) {
    if (const char* env = std::getenv("DPMA_REPORT")) {
        const std::string value(env);
        if (value.empty() || value == "0") return "";
        return value;
    }
    return "BENCH_" + tool + ".json";
}

}  // namespace dpma::obs
