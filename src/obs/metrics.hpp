#pragma once

/// \file metrics.hpp
/// Process-wide registry of named instruments.
///
/// Three instrument kinds cover the toolchain's needs:
///  * Counter   — monotonically increasing uint64 (cache hits, GSMP events,
///                states composed, vanishing states eliminated);
///  * Gauge     — last-written double (current sweep size, jobs in use);
///  * Histogram — count/sum/min/max summary of observed doubles (solver
///                iterations, per-measure residuals) plus p50/p90/p99 tail
///                quantiles from fixed log-spaced bins.
///
/// counter("x") & co. return a stable reference to the named instrument,
/// creating it on first use; hot call sites should cache the reference
/// (`static obs::Counter& c = obs::counter("sim.events");`) so the name
/// lookup happens once.  Counters and gauges are lock-free atomics; the
/// registry map itself is mutex-protected and never shrinks, so returned
/// references stay valid for the process lifetime.
///
/// metrics_json() / metrics_text() dump every instrument; reset_metrics()
/// zeroes them all (tests, or per-phase deltas) without invalidating
/// references.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace dpma::obs {

class Counter {
public:
    void add(std::uint64_t n = 1) noexcept {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

class Histogram {
public:
    /// Binning layout: kBinsPerDecade log-spaced bins per decade over
    /// [10^kLoExponent, 10^kHiExponent), bracketed by an underflow bin
    /// (everything below the range, including zero and negatives) and an
    /// overflow bin.  Bin b >= 1 covers [10^(kLoExponent + (b-1)/kBinsPerDecade),
    /// 10^(kLoExponent + b/kBinsPerDecade)): a quantile read off the bins is
    /// exact to one bin, i.e. a relative factor of 10^(1/kBinsPerDecade)
    /// (~26%) — coarse for means, plenty to spot a tail that moved decades.
    static constexpr int kLoExponent = -9;
    static constexpr int kHiExponent = 12;
    static constexpr int kBinsPerDecade = 10;
    static constexpr std::size_t kBins =
        static_cast<std::size_t>((kHiExponent - kLoExponent) * kBinsPerDecade) + 2;

    struct Snapshot {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::array<std::uint64_t, kBins> bins{};
        [[nodiscard]] double mean() const noexcept {
            return count == 0 ? 0.0 : sum / static_cast<double>(count);
        }
        /// Quantile estimate from the log-spaced bins, \p q in [0, 1]:
        /// the geometric midpoint of the bin holding the ceil(q * count)-th
        /// smallest observation, clamped to [min, max] (the under/overflow
        /// bins answer with min/max exactly).  0 when the histogram is empty.
        [[nodiscard]] double quantile(double q) const noexcept;
    };

    void observe(double v) noexcept;
    [[nodiscard]] Snapshot snapshot() const noexcept;
    void reset() noexcept;

private:
    mutable std::mutex mutex_;
    Snapshot data_;
};

/// Named instrument accessors: one registry per process, instruments created
/// on first use, references stable forever.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// min, max, mean}}} — names sorted, valid JSON (see obs/json.hpp).
[[nodiscard]] std::string metrics_json();

/// Human-readable dump, one "name = value" line per instrument, sorted.
[[nodiscard]] std::string metrics_text();

/// Zeroes every registered instrument (references stay valid).
void reset_metrics();

}  // namespace dpma::obs
