#pragma once

/// \file trace.hpp
/// Lightweight tracing spans with Chrome trace-event JSON output.
///
/// A Span is an RAII timer: construct it at the top of a phase, and on
/// destruction the (name, category, thread, start, duration, args) record is
/// appended to a process-wide buffer.  trace_json() renders the buffer as
/// Chrome trace-event JSON — load it in chrome://tracing or Perfetto to see
/// a sweep's pool workers, cache behaviour and per-point solve/simulate
/// phases on a timeline.
///
/// Cost model: tracing is *disabled* by default.  A disabled Span is one
/// relaxed atomic load in the constructor and one branch in the destructor —
/// near-zero, safe to leave in hot paths (guarded by a test).  When enabled,
/// a span takes one clock read at each end and one short mutex hold to
/// append its record.  The buffer is capped (records beyond the cap are
/// dropped and counted in the "obs.trace.dropped" counter) so a runaway
/// loop cannot exhaust memory.
///
/// Span names and categories must be string literals (or otherwise outlive
/// the tracer): records store the pointers, not copies.
///
/// Compile-time removal: building with -DDPMA_OBS_DISABLED (CMake option
/// DPMA_OBS=OFF) turns the DPMA_SPAN macros into nothing for overhead
/// experiments; the library API stays available but records nothing.

#include <cstdint>
#include <string>
#include <vector>

namespace dpma::obs {

/// Runtime switch, off by default.  Enabling does not clear earlier records.
[[nodiscard]] bool tracing_enabled() noexcept;
void set_tracing(bool enabled) noexcept;

/// Drops all buffered records (and resets the span drop count).
void clear_trace();

/// Number of buffered span records.
[[nodiscard]] std::size_t trace_size() noexcept;

/// Chrome trace-event JSON: {"traceEvents": [{"name", "cat", "ph": "X",
/// "ts", "dur", "pid", "tid", "args"}, ...], "displayTimeUnit": "ms"}.
/// Timestamps are microseconds since the first obs use in the process.
[[nodiscard]] std::string trace_json();

/// Aggregated view for text reports: per span name, how many spans ran and
/// how long they took in total (microseconds).  Sorted by total descending.
struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    double total_us = 0.0;
};
[[nodiscard]] std::vector<SpanStats> span_summary();

class Span {
public:
    /// \p name and \p category must be string literals (stored by pointer).
    explicit Span(const char* name, const char* category = "dpma") noexcept;
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches up to two numeric annotations, rendered into the event's
    /// "args" object (extra calls beyond two are ignored).  No-op when the
    /// span was constructed with tracing disabled.
    void arg(const char* key, double value) noexcept;

private:
    const char* name_;
    const char* category_;
    std::uint64_t start_ns_ = 0;
    const char* arg_keys_[2] = {nullptr, nullptr};
    double arg_values_[2] = {0.0, 0.0};
    bool active_;
};

}  // namespace dpma::obs

// Zero-cost span helpers.  DPMA_SPAN drops an anonymous span covering the
// rest of the scope; DPMA_NAMED_SPAN names the variable so args can be
// attached before it closes.
#if !defined(DPMA_OBS_DISABLED)
#define DPMA_OBS_CONCAT_IMPL(a, b) a##b
#define DPMA_OBS_CONCAT(a, b) DPMA_OBS_CONCAT_IMPL(a, b)
#define DPMA_SPAN(name, category) \
    ::dpma::obs::Span DPMA_OBS_CONCAT(dpma_obs_span_, __LINE__)(name, category)
#define DPMA_NAMED_SPAN(var, name, category) ::dpma::obs::Span var(name, category)
#else
namespace dpma::obs {
struct NullSpan {
    void arg(const char*, double) noexcept {}
};
}  // namespace dpma::obs
#define DPMA_SPAN(name, category) \
    do {                          \
    } while (false)
#define DPMA_NAMED_SPAN(var, name, category) ::dpma::obs::NullSpan var
#endif
