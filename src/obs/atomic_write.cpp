#include "obs/atomic_write.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "core/error.hpp"

namespace dpma::obs {
namespace {

std::string errno_text() {
    return std::strerror(errno);
}

/// write(2) the whole buffer, resuming on EINTR and partial writes.
/// Returns false (with errno set) on failure.
bool write_fully(int fd, const char* data, std::size_t size) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) {
            errno = EIO;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/// Directory part of \p path ("." when there is none), for the
/// durability-completing fsync of the directory entry after rename(2).
std::string directory_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

}  // namespace

void atomic_write(const std::string& path, std::string_view text) {
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        throw Error("cannot write " + path + ": open " + tmp + ": " + errno_text());
    }
    const bool written = write_fully(fd, text.data(), text.size());
    const bool synced = written && ::fsync(fd) == 0;
    const int saved_errno = errno;
    ::close(fd);
    if (!written || !synced) {
        ::unlink(tmp.c_str());
        errno = saved_errno;
        throw Error("cannot write " + path + ": " +
                    (written ? "fsync" : "write") + " failed: " + errno_text());
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string reason = errno_text();
        ::unlink(tmp.c_str());
        throw Error("cannot write " + path + ": rename failed: " + reason);
    }
    // Make the rename itself durable.  Best effort: some filesystems reject
    // directory fsync, and by this point the content is already atomic.
    const int dir_fd = ::open(directory_of(path).c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd >= 0) {
        (void)::fsync(dir_fd);
        ::close(dir_fd);
    }
}

DurableAppender::DurableAppender(std::string path) : path_(std::move(path)) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        throw Error("cannot open " + path_ + " for appending: " + errno_text());
    }
}

DurableAppender::~DurableAppender() {
    if (fd_ >= 0) ::close(fd_);
}

void DurableAppender::append_line(std::string_view line) {
    std::string record;
    record.reserve(line.size() + 1);
    record.append(line);
    record.push_back('\n');
    if (!write_fully(fd_, record.data(), record.size())) {
        throw Error("cannot append to " + path_ + ": write failed: " + errno_text());
    }
    if (::fsync(fd_) != 0) {
        throw Error("cannot append to " + path_ + ": fsync failed: " + errno_text());
    }
}

}  // namespace dpma::obs
