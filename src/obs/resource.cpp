#include "obs/resource.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define DPMA_HAVE_GETRUSAGE 1
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace dpma::obs {
namespace {

#if defined(__linux__)

/// VmHWM (peak RSS) from /proc/self/status, in kB; 0 when unreadable.
std::uint64_t proc_peak_rss_kb() {
    std::FILE* status = std::fopen("/proc/self/status", "re");
    if (status == nullptr) return 0;
    char line[256];
    std::uint64_t peak = 0;
    while (std::fgets(line, sizeof line, status) != nullptr) {
        unsigned long long value = 0;
        if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
            peak = value;
            break;
        }
    }
    std::fclose(status);
    return peak;
}

/// minflt/majflt/utime/stime from /proc/self/stat (fields 10, 12, 14, 15).
/// Returns false when the file cannot be read or parsed.
bool proc_stat(ResourceUsage* out) {
    std::FILE* stat = std::fopen("/proc/self/stat", "re");
    if (stat == nullptr) return false;
    char buffer[1024];
    const std::size_t n = std::fread(buffer, 1, sizeof buffer - 1, stat);
    std::fclose(stat);
    buffer[n] = '\0';
    // comm (field 2) may contain spaces; everything after its closing ')' is
    // space-separated.  state is field 3, so minflt is the 7th field after.
    const char* after_comm = std::strrchr(buffer, ')');
    if (after_comm == nullptr) return false;
    unsigned long long minflt = 0, cminflt = 0, majflt = 0, cmajflt = 0;
    unsigned long long utime = 0, stime = 0;
    char state = '\0';
    long long ppid = 0, pgrp = 0, session = 0, tty = 0, tpgid = 0;
    unsigned long long flags = 0;
    if (std::sscanf(after_comm + 1, " %c %lld %lld %lld %lld %lld %llu %llu %llu %llu %llu %llu %llu",
                    &state, &ppid, &pgrp, &session, &tty, &tpgid, &flags, &minflt,
                    &cminflt, &majflt, &cmajflt, &utime, &stime) != 13) {
        return false;
    }
    const long ticks = sysconf(_SC_CLK_TCK);
    const double tick_s = ticks > 0 ? 1.0 / static_cast<double>(ticks) : 0.0;
    out->cpu_user_s = static_cast<double>(utime) * tick_s;
    out->cpu_system_s = static_cast<double>(stime) * tick_s;
    out->minor_faults = minflt;
    out->major_faults = majflt;
    return true;
}

#endif  // __linux__

#if defined(DPMA_HAVE_GETRUSAGE)

bool rusage_sample(ResourceUsage* out) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return false;
    out->cpu_user_s = static_cast<double>(usage.ru_utime.tv_sec) +
                      static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    out->cpu_system_s = static_cast<double>(usage.ru_stime.tv_sec) +
                        static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
#if defined(__APPLE__)
    out->peak_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
    out->peak_rss_kb = static_cast<std::uint64_t>(usage.ru_maxrss);  // kB
#endif
    out->minor_faults = static_cast<std::uint64_t>(usage.ru_minflt);
    out->major_faults = static_cast<std::uint64_t>(usage.ru_majflt);
    return true;
}

#endif  // DPMA_HAVE_GETRUSAGE

}  // namespace

ResourceUsage sample_resources() {
    ResourceUsage usage;
#if defined(__linux__)
    if (proc_stat(&usage)) {
        usage.peak_rss_kb = proc_peak_rss_kb();
        usage.source = "procfs";
        return usage;
    }
#endif
#if defined(DPMA_HAVE_GETRUSAGE)
    if (rusage_sample(&usage)) {
        usage.source = "getrusage";
        return usage;
    }
#endif
    return usage;
}

}  // namespace dpma::obs
