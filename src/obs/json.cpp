#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace dpma::obs {

std::string json_quote(std::string_view text) {
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof buffer, "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_number(double value) {
    if (!std::isfinite(value)) return "null";
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    return buffer;
}

namespace {

/// Recursive-descent validator over a string_view; pos advances past what
/// was consumed.
class Checker {
public:
    explicit Checker(std::string_view text) : text_(text) {}

    bool run(std::string* error) {
        skip_ws();
        if (!value()) {
            if (error != nullptr) {
                *error = message_ + " at offset " + std::to_string(pos_);
            }
            return false;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            if (error != nullptr) {
                *error = "trailing content at offset " + std::to_string(pos_);
            }
            return false;
        }
        return true;
    }

private:
    bool fail(const char* message) {
        if (message_.empty()) message_ = message;
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool string() {
        if (peek() != '"') return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) return fail("raw control character in string");
            if (c == '\\') {
                ++pos_;
                const char e = peek();
                if (e == 'u') {
                    ++pos_;
                    for (int i = 0; i < 4; ++i, ++pos_) {
                        if (std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
                            return fail("bad \\u escape");
                        }
                    }
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                    e != 'n' && e != 'r' && e != 't') {
                    return fail("bad escape");
                }
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (peek() == '0') {
            ++pos_;
        } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        } else {
            pos_ = start;
            return fail("expected number");
        }
        if (peek() == '.') {
            ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
                return fail("digit required after decimal point");
            }
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
                return fail("digit required in exponent");
            }
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        return true;
    }

    bool object() {
        ++pos_;  // '{'
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string()) return fail("expected object key");
            skip_ws();
            if (peek() != ':') return fail("expected ':'");
            ++pos_;
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array() {
        ++pos_;  // '['
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!value()) return false;
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool value() {
        if (++depth_ > 256) return fail("nesting too deep");
        bool ok = false;
        switch (peek()) {
            case '{': ok = object(); break;
            case '[': ok = array(); break;
            case '"': ok = string(); break;
            case 't': ok = literal("true"); break;
            case 'f': ok = literal("false"); break;
            case 'n': ok = literal("null"); break;
            default: ok = number(); break;
        }
        --depth_;
        return ok;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string message_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
    return Checker(text).run(error);
}

}  // namespace dpma::obs
