#pragma once

/// \file atomic_write.hpp
/// Crash-safe artifact writes.
///
/// Every JSON/CSV artifact of the toolchain (run records, ResultSet sinks,
/// trace and metrics dumps, sweep checkpoints) used to be written by opening
/// the destination with std::ofstream — truncating in place — so a crash,
/// an OOM kill or a full disk mid-write left a corrupt half-file that
/// `dpma_cli report` and json_check later choked on, and a short write
/// still exited 0.  atomic_write() closes both holes: the bytes go to a
/// temporary file in the destination directory, are fully written and
/// fsync(2)'d, and only then rename(2)'d over the destination.  Readers see
/// either the complete old artifact or the complete new one, never a mix,
/// and every syscall's result is checked — a failure throws core Error with
/// the path in the message instead of silently truncating.
///
/// DurableAppender is the append-mode counterpart for JSONL streams that
/// must survive the writing process (sweep checkpoints, exp/checkpoint.hpp):
/// one full write(2) plus one fsync(2) per record, state checked after every
/// call.  A torn *final* line (the process died inside the write) is the
/// only possible damage; checkpoint loading tolerates exactly that.

#include <string>
#include <string_view>

namespace dpma::obs {

/// Atomically replaces the file at \p path with \p text: write to
/// "<path>.tmp.<pid>" in the same directory, fsync, rename over \p path.
/// Throws core Error naming the path (and errno) on any failure; the
/// temporary file is unlinked before throwing, so no debris is left behind.
void atomic_write(const std::string& path, std::string_view text);

/// Append-only file handle with per-record durability.  Records appended by
/// a process that later crashes are still on disk (modulo a torn final
/// line); concurrent appenders from separate processes never interleave
/// within one append_line() call smaller than PIPE_BUF, which every
/// checkpoint record respects in practice via a single write(2).
class DurableAppender {
public:
    /// Opens (creating if absent) \p path for appending.  Throws core Error
    /// naming the path when the file cannot be opened.
    explicit DurableAppender(std::string path);
    ~DurableAppender();

    DurableAppender(const DurableAppender&) = delete;
    DurableAppender& operator=(const DurableAppender&) = delete;

    /// Appends \p line plus a trailing newline in one write(2), then
    /// fsync(2)s.  Throws core Error naming the path on a short or failed
    /// write — a full disk must not look like success.
    void append_line(std::string_view line);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    int fd_ = -1;
};

}  // namespace dpma::obs
