#pragma once

/// \file run_report.hpp
/// Self-describing run records.
///
/// Every bench binary (via bench::ScopedObservation) and every dpma_cli
/// subcommand (via --report) can emit one strict-JSON record of what it ran
/// and what came out: tool name and arguments, the git sha and build type
/// the binary was compiled from, the effort-relevant environment
/// (DPMA_JOBS, DPMA_BENCH_SCALE), wall/CPU time, peak RSS and fault counts
/// (obs/resource.hpp), a metrics-registry snapshot, per-span totals, and
/// the result series the run produced (exp::ResultSet::json() objects,
/// pre-rendered by the caller so obs stays dependency-free).
///
/// The record is the unit of comparison for the perf-regression reporter
/// (`dpma_cli report old.json new.json`, exp/regress.hpp): two records of
/// the same tool pair their series by experiment name and their points by
/// parameter coordinates, so a bench run today can be diffed against a bench
/// run from last month without hand-copying numbers.
///
/// Schema (all keys always present, "series" possibly empty):
///   {"schema": "dpma-run-report/1", "tool", "args": [...], "git_sha",
///    "build_type", "env": {"DPMA_JOBS", "DPMA_BENCH_SCALE"},  (null = unset)
///    "wall_s", "cpu_user_s", "cpu_system_s", "peak_rss_kb",
///    "minor_faults", "major_faults", "resource_source",
///    "metrics": {...}, "spans": [{"name", "count", "total_us"}, ...],
///    "series": [<ResultSet json>, ...]}
///
/// Default artifact path: report_path(tool) = "BENCH_<tool>.json" in the
/// working directory, overridable with the DPMA_REPORT environment variable
/// (a path, or "0" to disable — report_path returns "" then).

#include <string>
#include <vector>

namespace dpma::obs {

class RunReport {
public:
    /// Starts the record's wall clock; \p tool names the producing binary.
    explicit RunReport(std::string tool);

    void set_args(const std::vector<std::string>& args);

    /// Appends one result-series object (e.g. exp::ResultSet::json()).
    /// \p series_json must be a valid JSON value — enforced, because one bad
    /// series would poison the whole record.  Throws Error otherwise.
    void add_series(std::string series_json);

    /// Renders the record: stops the wall clock, samples resources, and
    /// snapshots the metrics registry and span summary at call time.
    [[nodiscard]] std::string json() const;

    /// json() to \p path ("-" = stdout).  Throws Error when unwritable.
    void write(const std::string& path) const;

private:
    std::string tool_;
    std::vector<std::string> args_;
    std::vector<std::string> series_;
    std::uint64_t start_ns_ = 0;
};

/// Default record path for \p tool honouring DPMA_REPORT: the variable's
/// value when set ("0" or empty disables, returning ""), otherwise
/// "BENCH_<tool>.json".
[[nodiscard]] std::string report_path(const std::string& tool);

}  // namespace dpma::obs
