#pragma once

/// \file resource.hpp
/// Process resource usage for run records (obs/run_report.hpp).
///
/// sample() answers "what has this process consumed so far": CPU time split
/// user/system, peak resident set size, and page-fault counts.  On Linux the
/// numbers come from /proc/self/status (VmHWM) and /proc/self/stat
/// (utime/stime/minflt/majflt); when procfs is unavailable the sampler falls
/// back to getrusage(2), and on platforms with neither it degrades to a
/// no-op that reports source "none" with zeros — callers never need to
/// guard, the run record simply says the numbers are absent.

#include <cstdint>

namespace dpma::obs {

struct ResourceUsage {
    double cpu_user_s = 0.0;
    double cpu_system_s = 0.0;
    std::uint64_t peak_rss_kb = 0;
    std::uint64_t minor_faults = 0;
    std::uint64_t major_faults = 0;
    /// Where the numbers came from: "procfs", "getrusage" or "none".
    const char* source = "none";
};

/// Snapshot of the calling process's cumulative resource usage.
[[nodiscard]] ResourceUsage sample_resources();

}  // namespace dpma::obs
