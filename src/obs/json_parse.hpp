#pragma once

/// \file json_parse.hpp
/// Strict JSON parser building a small value tree.
///
/// obs/json.hpp validates without building anything; this header is for the
/// few consumers that need to *read* an artifact back — above all the
/// perf-regression reporter (exp/regress.hpp, `dpma_cli report`), which
/// loads two run records and pairs their series.  Same grammar as
/// json_valid: objects, arrays, strings with escapes (\uXXXX decoded to
/// UTF-8, surrogate pairs combined), numbers, true/false/null; no trailing
/// commas, no comments, no duplicate-key policy (later keys win in find()
/// lookups is NOT guaranteed — find() returns the first).
///
/// The tree is deliberately plain: one struct, public members, object keys
/// kept in document order.  Accessors return fallbacks instead of throwing
/// so report-reading code can probe optional fields without ceremony.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dpma::obs {

struct Json {
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Json> array;
    std::vector<std::pair<std::string, Json>> object;  ///< document order

    [[nodiscard]] bool is_null() const noexcept { return kind == Kind::Null; }
    [[nodiscard]] bool is_object() const noexcept { return kind == Kind::Object; }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::Array; }
    [[nodiscard]] bool is_number() const noexcept { return kind == Kind::Number; }
    [[nodiscard]] bool is_string() const noexcept { return kind == Kind::String; }

    /// First member named \p key, or nullptr (also when not an object).
    [[nodiscard]] const Json* find(std::string_view key) const noexcept;

    /// Value of member \p key when it is a number/string; fallback otherwise.
    [[nodiscard]] double number_at(std::string_view key, double fallback = 0.0) const noexcept;
    [[nodiscard]] std::string string_at(std::string_view key,
                                        std::string_view fallback = "") const;
};

/// Parses \p text as exactly one JSON value (surrounding whitespace
/// allowed).  Throws core Error with the byte offset on malformed input.
[[nodiscard]] Json json_parse(std::string_view text);

}  // namespace dpma::obs
