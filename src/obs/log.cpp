#include "obs/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dpma::obs {
namespace {

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Error: return "error";
        case LogLevel::Warn: return "warn";
        case LogLevel::Info: return "info";
        case LogLevel::Debug: return "debug";
    }
    return "?";
}

LogLevel initial_level() {
    const char* env = std::getenv("DPMA_LOG");
    if (env == nullptr) return LogLevel::Warn;
    LogLevel level = LogLevel::Warn;
    if (!parse_log_level(env, &level)) {
        std::fprintf(stderr,
                     "dpma [warn] ignoring DPMA_LOG='%s' "
                     "(want error|warn|info|debug); using warn\n",
                     env);
    }
    return level;
}

std::atomic<int>& level_store() {
    static std::atomic<int> level{static_cast<int>(initial_level())};
    return level;
}

}  // namespace

bool parse_log_level(std::string_view text, LogLevel* out) {
    if (text == "error") *out = LogLevel::Error;
    else if (text == "warn") *out = LogLevel::Warn;
    else if (text == "info") *out = LogLevel::Info;
    else if (text == "debug") *out = LogLevel::Debug;
    else return false;
    return true;
}

LogLevel log_level() noexcept {
    return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
    level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) noexcept {
    return static_cast<int>(level) <=
           level_store().load(std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
    if (!log_enabled(level)) return;
    // One fprintf per message: stderr is line-buffered or unbuffered, and a
    // single call keeps concurrent workers from interleaving fragments.
    std::fprintf(stderr, "dpma [%s] %.*s\n", level_name(level),
                 static_cast<int>(message.size()), message.data());
}

void logf(LogLevel level, const char* format, ...) {
    if (!log_enabled(level)) return;
    char buffer[1024];
    std::va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof buffer, format, args);
    va_end(args);
    log(level, buffer);
}

}  // namespace dpma::obs
