#pragma once

/// \file json.hpp
/// Minimal JSON utilities shared by every emitter in the toolchain.
///
/// Emission: json_quote / json_number are the one escaping and number
/// formatting policy (full double round-trip precision), used by the trace
/// and metrics dumps, solver diagnostics and exp::ResultSet.
///
/// Validation: json_valid is a strict recursive-descent checker (objects,
/// arrays, strings with escapes, numbers, true/false/null; no trailing
/// commas, no comments).  It builds no tree — it exists so tests and the
/// json_check tool can assert that emitted artifacts are well-formed without
/// an external JSON dependency.

#include <string>
#include <string_view>

namespace dpma::obs {

/// \p text as a quoted JSON string, escaping ", \, control characters and
/// (as \uXXXX) any other byte below 0x20.
[[nodiscard]] std::string json_quote(std::string_view text);

/// Shortest decimal rendering of \p value that round-trips (%.17g).  NaN and
/// infinities — illegal in JSON — are emitted as null.
[[nodiscard]] std::string json_number(double value);

/// True when \p text is exactly one valid JSON value (surrounding whitespace
/// allowed).  On failure, *error (when non-null) receives a message with the
/// byte offset of the problem.
[[nodiscard]] bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace dpma::obs
