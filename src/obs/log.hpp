#pragma once

/// \file log.hpp
/// Leveled, thread-safe logging for the whole toolchain.
///
/// One process-wide level (error < warn < info < debug) gates every message;
/// it is initialised from the DPMA_LOG environment variable (default: warn)
/// and can be overridden programmatically (dpma_cli --log-level).  Messages
/// go to stderr as single writes ("dpma [warn] ...\n"), so concurrent pool
/// workers never interleave partial lines.
///
/// Call sites that would pay to *format* a suppressed message should guard
/// with log_enabled(); logf() itself formats only when the level passes.

#include <string_view>

namespace dpma::obs {

enum class LogLevel : int { Error = 0, Warn = 1, Info = 2, Debug = 3 };

/// Parses "error" / "warn" / "info" / "debug" (case-sensitive).  Returns
/// false — leaving \p out untouched — on anything else.
[[nodiscard]] bool parse_log_level(std::string_view text, LogLevel* out);

/// Current level.  First call reads DPMA_LOG; unparsable values keep the
/// default (warn) and earn a one-line warning.
[[nodiscard]] LogLevel log_level() noexcept;

void set_log_level(LogLevel level) noexcept;

/// True when a message at \p level would be emitted.  A single relaxed
/// atomic load — cheap enough for hot paths.
[[nodiscard]] bool log_enabled(LogLevel level) noexcept;

/// Emits "dpma [<level>] <message>\n" to stderr when the level passes.
void log(LogLevel level, std::string_view message);

/// printf-style counterpart; formats only when the level passes.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* format, ...);

}  // namespace dpma::obs
