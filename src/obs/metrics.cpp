#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "obs/json.hpp"

namespace dpma::obs {

void Histogram::observe(double v) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (data_.count == 0) {
        data_.min = data_.max = v;
    } else {
        data_.min = std::min(data_.min, v);
        data_.max = std::max(data_.max, v);
    }
    ++data_.count;
    data_.sum += v;
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return data_;
}

void Histogram::reset() noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    data_ = {};
}

namespace {

/// The registry: three name->instrument maps behind one mutex.  unique_ptr
/// values keep instrument addresses stable across rehash-free map growth.
struct Registry {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
    static Registry* instance = new Registry;  // leaked: outlive all users
    return *instance;
}

template <typename Map>
auto& instrument(Map& map, std::string_view name) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
    using Value = typename Map::mapped_type::element_type;
    return *map.emplace(std::string(name), std::make_unique<Value>())
                .first->second;
}

}  // namespace

Counter& counter(std::string_view name) {
    return instrument(registry().counters, name);
}

Gauge& gauge(std::string_view name) { return instrument(registry().gauges, name); }

Histogram& histogram(std::string_view name) {
    return instrument(registry().histograms, name);
}

std::string metrics_json() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : reg.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": " + std::to_string(c->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : reg.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": " + json_number(g->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : reg.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": {\"count\": " +
               std::to_string(s.count) + ", \"sum\": " + json_number(s.sum) +
               ", \"min\": " + json_number(s.min) +
               ", \"max\": " + json_number(s.max) +
               ", \"mean\": " + json_number(s.mean()) + "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string metrics_text() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::string out;
    for (const auto& [name, c] : reg.counters) {
        out += name + " = " + std::to_string(c->value()) + "\n";
    }
    for (const auto& [name, g] : reg.gauges) {
        out += name + " = " + json_number(g->value()) + "\n";
    }
    for (const auto& [name, h] : reg.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        out += name + " = count " + std::to_string(s.count) + ", mean " +
               json_number(s.mean()) + ", min " + json_number(s.min) +
               ", max " + json_number(s.max) + "\n";
    }
    return out;
}

void reset_metrics() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& [name, c] : reg.counters) c->reset();
    for (const auto& [name, g] : reg.gauges) g->reset();
    for (const auto& [name, h] : reg.histograms) h->reset();
}

}  // namespace dpma::obs
