#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "obs/json.hpp"

namespace dpma::obs {

namespace {

/// Bin index for one observation: 0 is the underflow bin (v below the range,
/// zero, negative, NaN), kBins - 1 the overflow bin.
std::size_t bin_index(double v) noexcept {
    constexpr double lo = 1e-9;  // 10^kLoExponent
    if (!(v >= lo)) return 0;
    const double offset =
        (std::log10(v) - Histogram::kLoExponent) * Histogram::kBinsPerDecade;
    const auto bin = static_cast<std::size_t>(offset) + 1;
    return std::min(bin, Histogram::kBins - 1);
}

/// Lower edge of bin b >= 1 (the first finite-range bin starts at 1e-9).
double bin_lower(std::size_t b) noexcept {
    return std::pow(10.0, Histogram::kLoExponent +
                              static_cast<double>(b - 1) / Histogram::kBinsPerDecade);
}

}  // namespace

double Histogram::Snapshot::quantile(double q) const noexcept {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The extremes are tracked exactly; only interior quantiles pay the
    // one-bin resolution.
    if (q == 0.0) return min;
    if (q == 1.0) return max;
    // Rank of the order statistic the quantile asks for, 1-based.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBins; ++b) {
        seen += bins[b];
        if (seen < rank) continue;
        if (b == 0) return min;
        if (b == kBins - 1) return max;
        const double lower = bin_lower(b);
        const double upper = bin_lower(b + 1);
        return std::clamp(std::sqrt(lower * upper), min, max);
    }
    return max;  // unreachable: the bins always sum to count
}

void Histogram::observe(double v) noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (data_.count == 0) {
        data_.min = data_.max = v;
    } else {
        data_.min = std::min(data_.min, v);
        data_.max = std::max(data_.max, v);
    }
    ++data_.count;
    data_.sum += v;
    ++data_.bins[bin_index(v)];
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return data_;
}

void Histogram::reset() noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    data_ = {};
}

namespace {

/// The registry: three name->instrument maps behind one mutex.  unique_ptr
/// values keep instrument addresses stable across rehash-free map growth.
struct Registry {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
    static Registry* instance = new Registry;  // leaked: outlive all users
    return *instance;
}

template <typename Map>
auto& instrument(Map& map, std::string_view name) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = map.find(name);
    if (it != map.end()) return *it->second;
    using Value = typename Map::mapped_type::element_type;
    return *map.emplace(std::string(name), std::make_unique<Value>())
                .first->second;
}

}  // namespace

Counter& counter(std::string_view name) {
    return instrument(registry().counters, name);
}

Gauge& gauge(std::string_view name) { return instrument(registry().gauges, name); }

Histogram& histogram(std::string_view name) {
    return instrument(registry().histograms, name);
}

std::string metrics_json() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : reg.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": " + std::to_string(c->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : reg.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": " + json_number(g->value());
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : reg.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json_quote(name) + ": {\"count\": " +
               std::to_string(s.count) + ", \"sum\": " + json_number(s.sum) +
               ", \"min\": " + json_number(s.min) +
               ", \"max\": " + json_number(s.max) +
               ", \"mean\": " + json_number(s.mean()) +
               ", \"p50\": " + json_number(s.quantile(0.50)) +
               ", \"p90\": " + json_number(s.quantile(0.90)) +
               ", \"p99\": " + json_number(s.quantile(0.99)) + "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string metrics_text() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::string out;
    for (const auto& [name, c] : reg.counters) {
        out += name + " = " + std::to_string(c->value()) + "\n";
    }
    for (const auto& [name, g] : reg.gauges) {
        out += name + " = " + json_number(g->value()) + "\n";
    }
    for (const auto& [name, h] : reg.histograms) {
        const Histogram::Snapshot s = h->snapshot();
        out += name + " = count " + std::to_string(s.count) + ", mean " +
               json_number(s.mean()) + ", min " + json_number(s.min) +
               ", max " + json_number(s.max) + ", p50 " +
               json_number(s.quantile(0.50)) + ", p90 " +
               json_number(s.quantile(0.90)) + ", p99 " +
               json_number(s.quantile(0.99)) + "\n";
    }
    return out;
}

void reset_metrics() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& [name, c] : reg.counters) c->reset();
    for (const auto& [name, g] : reg.gauges) g->reset();
    for (const auto& [name, h] : reg.histograms) h->reset();
}

}  // namespace dpma::obs
