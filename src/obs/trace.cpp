#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dpma::obs {
namespace {

struct SpanRecord {
    const char* name;
    const char* category;
    std::uint64_t start_ns;
    std::uint64_t duration_ns;
    std::uint32_t tid;
    const char* arg_keys[2];
    double arg_values[2];
};

/// Keep a long sweep visible but bound memory: ~1M records = ~80 MB worst
/// case is too much; 1<<18 records (~20 MB of JSON) is plenty of timeline.
constexpr std::size_t kMaxRecords = std::size_t{1} << 18;

struct Tracer {
    std::atomic<bool> enabled{false};
    std::mutex mutex;
    std::vector<SpanRecord> records;
    std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
};

Tracer& tracer() {
    static Tracer* instance = new Tracer;  // leaked: spans may end at exit
    return *instance;
}

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - tracer().epoch)
            .count());
}

/// Small dense thread ids for the "tid" field (std::thread::id is opaque).
std::uint32_t thread_tid() {
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

}  // namespace

bool tracing_enabled() noexcept {
    return tracer().enabled.load(std::memory_order_relaxed);
}

void set_tracing(bool enabled) noexcept {
    tracer().enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() {
    Tracer& t = tracer();
    const std::lock_guard<std::mutex> lock(t.mutex);
    t.records.clear();
    counter("obs.trace.dropped").reset();
}

std::size_t trace_size() noexcept {
    Tracer& t = tracer();
    const std::lock_guard<std::mutex> lock(t.mutex);
    return t.records.size();
}

Span::Span(const char* name, const char* category) noexcept
    : name_(name),
      category_(category),
      active_(tracing_enabled()) {
    if (active_) start_ns_ = now_ns();
}

void Span::arg(const char* key, double value) noexcept {
    if (!active_) return;
    for (std::size_t i = 0; i < 2; ++i) {
        if (arg_keys_[i] == nullptr) {
            arg_keys_[i] = key;
            arg_values_[i] = value;
            return;
        }
    }
}

Span::~Span() {
    if (!active_) return;
    const std::uint64_t end_ns = now_ns();
    Tracer& t = tracer();
    const std::lock_guard<std::mutex> lock(t.mutex);
    if (t.records.size() >= kMaxRecords) {
        counter("obs.trace.dropped").add();
        return;
    }
    SpanRecord record{name_,
                      category_,
                      start_ns_,
                      end_ns - start_ns_,
                      thread_tid(),
                      {arg_keys_[0], arg_keys_[1]},
                      {arg_values_[0], arg_values_[1]}};
    t.records.push_back(record);
}

std::string trace_json() {
    Tracer& t = tracer();
    std::vector<SpanRecord> records;
    {
        const std::lock_guard<std::mutex> lock(t.mutex);
        records = t.records;
    }
    // Chrome sorts by ts itself, but emitting in start order keeps the file
    // diffable across runs with the same schedule.
    std::sort(records.begin(), records.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns < b.start_ns;
              });
    std::string out = "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const SpanRecord& r = records[i];
        out += "  {\"name\": " + json_quote(r.name) +
               ", \"cat\": " + json_quote(r.category) +
               ", \"ph\": \"X\", \"ts\": " +
               json_number(static_cast<double>(r.start_ns) / 1000.0) +
               ", \"dur\": " +
               json_number(static_cast<double>(r.duration_ns) / 1000.0) +
               ", \"pid\": 1, \"tid\": " + std::to_string(r.tid);
        if (r.arg_keys[0] != nullptr) {
            out += ", \"args\": {";
            for (int a = 0; a < 2 && r.arg_keys[a] != nullptr; ++a) {
                if (a > 0) out += ", ";
                out += json_quote(r.arg_keys[a]) + ": " + json_number(r.arg_values[a]);
            }
            out += "}";
        }
        out += i + 1 < records.size() ? "},\n" : "}\n";
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

std::vector<SpanStats> span_summary() {
    Tracer& t = tracer();
    std::map<std::string, SpanStats> by_name;
    {
        const std::lock_guard<std::mutex> lock(t.mutex);
        for (const SpanRecord& r : t.records) {
            SpanStats& stats = by_name[r.name];
            stats.name = r.name;
            ++stats.count;
            stats.total_us += static_cast<double>(r.duration_ns) / 1000.0;
        }
    }
    std::vector<SpanStats> out;
    out.reserve(by_name.size());
    for (auto& [name, stats] : by_name) out.push_back(std::move(stats));
    std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
        return a.total_us > b.total_us;
    });
    return out;
}

}  // namespace dpma::obs
