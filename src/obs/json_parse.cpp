#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdint>

#include "core/error.hpp"

namespace dpma::obs {

const Json* Json::find(std::string_view key) const noexcept {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [name, value] : object) {
        if (name == key) return &value;
    }
    return nullptr;
}

double Json::number_at(std::string_view key, double fallback) const noexcept {
    const Json* value = find(key);
    return value != nullptr && value->is_number() ? value->number : fallback;
}

std::string Json::string_at(std::string_view key, std::string_view fallback) const {
    const Json* value = find(key);
    return value != nullptr && value->is_string() ? value->string
                                                  : std::string(fallback);
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json run() {
        skip_ws();
        Json root = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content");
        return root;
    }

private:
    [[noreturn]] void fail(const char* message) const {
        throw Error(std::string("JSON parse error: ") + message + " at offset " +
                    std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++pos_;
    }

    void literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) fail("bad literal");
        pos_ += word.size();
    }

    unsigned hex4() {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i, ++pos_) {
            const char c = peek();
            if (std::isxdigit(static_cast<unsigned char>(c)) == 0) {
                fail("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
        }
        return code;
    }

    static void append_utf8(std::string& out, std::uint32_t code) {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const unsigned char c = static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return out;
            }
            if (c < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            const char e = peek();
            ++pos_;
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    std::uint32_t code = hex4();
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        // High surrogate: a low surrogate must follow.
                        if (peek() != '\\') fail("unpaired surrogate");
                        ++pos_;
                        if (peek() != 'u') fail("unpaired surrogate");
                        ++pos_;
                        const std::uint32_t low = hex4();
                        if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
                        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    } else if (code >= 0xDC00 && code <= 0xDFFF) {
                        fail("unpaired surrogate");
                    }
                    append_utf8(out, code);
                    break;
                }
                default: --pos_; fail("bad escape");
            }
        }
    }

    double number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        if (peek() == '0') {
            ++pos_;
        } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        } else {
            fail("expected number");
        }
        if (peek() == '.') {
            ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
                fail("digit required after decimal point");
            }
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') ++pos_;
            if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
                fail("digit required in exponent");
            }
            while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
        }
        return std::stod(std::string(text_.substr(start, pos_ - start)));
    }

    Json value() {
        if (++depth_ > 256) fail("nesting too deep");
        Json out;
        switch (peek()) {
            case '{': {
                out.kind = Json::Kind::Object;
                ++pos_;
                skip_ws();
                if (peek() == '}') {
                    ++pos_;
                    break;
                }
                for (;;) {
                    skip_ws();
                    std::string key = string();
                    skip_ws();
                    expect(':');
                    skip_ws();
                    out.object.emplace_back(std::move(key), value());
                    skip_ws();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    expect('}');
                    break;
                }
                break;
            }
            case '[': {
                out.kind = Json::Kind::Array;
                ++pos_;
                skip_ws();
                if (peek() == ']') {
                    ++pos_;
                    break;
                }
                for (;;) {
                    skip_ws();
                    out.array.push_back(value());
                    skip_ws();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    expect(']');
                    break;
                }
                break;
            }
            case '"':
                out.kind = Json::Kind::String;
                out.string = string();
                break;
            case 't':
                literal("true");
                out.kind = Json::Kind::Bool;
                out.boolean = true;
                break;
            case 'f':
                literal("false");
                out.kind = Json::Kind::Bool;
                out.boolean = false;
                break;
            case 'n':
                literal("null");
                out.kind = Json::Kind::Null;
                break;
            default:
                out.kind = Json::Kind::Number;
                out.number = number();
                break;
        }
        --depth_;
        return out;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

}  // namespace

Json json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dpma::obs
