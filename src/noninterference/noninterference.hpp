#pragma once

/// \file noninterference.hpp
/// The functional phase of the paper's methodology: verifying that a high
/// component (the dynamic power manager) cannot be observed by the low
/// components (the client).
///
/// The check is the classical equivalence-based noninterference property
/// (Goguen–Meseguer via Focardi–Gorrieri): the system with the high actions
/// *hidden* must be weakly bisimilar to the system with the high actions
/// *prevented from occurring*:
///
///     M / High  ~weak~  M \ High
///
/// The comparison is made "from the client standpoint" (Sect. 3): every
/// action that is neither high nor low is hidden on *both* sides, so only
/// the low observer's actions remain visible.
///
/// On failure, the distinguishing modal-logic formula explains how the low
/// observer can detect the high activity — for the paper's simplified rpc
/// system: after sending an rpc the client may never receive a result,
/// because the DPM can shut the server down mid-service.

#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "bisim/hml.hpp"
#include "lts/lts.hpp"
#include "lts/ops.hpp"

namespace dpma::noninterference {

/// Outcome of a noninterference check.
struct Result {
    bool noninterfering = false;
    /// Distinguishing formula (weak modalities) satisfied by the hidden
    /// system's initial state but not by the restricted one; null on success.
    bisim::FormulaPtr formula;
    /// Sizes, for reporting.
    std::size_t hidden_states = 0;
    std::size_t restricted_states = 0;
};

/// Classical check: high actions hidden vs prevented; every other action is
/// observable.
[[nodiscard]] Result check(const lts::Lts& system, const lts::ActionSet& high_actions);

/// Observer-relative check (the paper's): only \p low_actions stay visible;
/// every action that is neither high nor low is hidden on both sides.
[[nodiscard]] Result check(const lts::Lts& system, const lts::ActionSet& high_actions,
                           const lts::ActionSet& low_actions);

/// Convenience for composed models: \p high_labels are the DPM command
/// labels (e.g. "DPM.send_shutdown#S.receive_shutdown"); the low observer is
/// every action involving \p low_instance (the client).
[[nodiscard]] Result check_dpm_transparency(const adl::ComposedModel& model,
                                            const std::vector<std::string>& high_labels,
                                            const std::string& low_instance);

/// Outcome of the *trace-based* check (SNNI in the Focardi–Gorrieri
/// classification the paper cites [7]): same construction as the
/// bisimulation check but compared under weak trace equivalence.
struct TraceResult {
    bool noninterfering = false;
    std::vector<std::string> distinguishing_trace;  ///< empty on success
};

/// Trace-based observer-relative check.  Strictly weaker than the
/// bisimulation-based property: a DPM-induced deadlock (the simplified rpc
/// defect of Sect. 3.1) is invisible to traces, so this check PASSES on a
/// system the bisimulation check rightly rejects — the reason the paper
/// builds on equivalence checking with weak bisimilarity.
[[nodiscard]] TraceResult check_traces(const lts::Lts& system,
                                       const lts::ActionSet& high_actions,
                                       const lts::ActionSet& low_actions);

/// Composed-model convenience mirroring check_dpm_transparency.
[[nodiscard]] TraceResult check_dpm_trace_transparency(
    const adl::ComposedModel& model, const std::vector<std::string>& high_labels,
    const std::string& low_instance);

}  // namespace dpma::noninterference
