#include "noninterference/noninterference.hpp"

#include "adl/measure.hpp"
#include "bisim/equivalence.hpp"
#include "bisim/trace_equiv.hpp"
#include "core/error.hpp"

namespace dpma::noninterference {
namespace {

/// Builds the two observer views: (M with high ∪ non-low hidden) and
/// (M with high removed, non-low hidden).
struct Views {
    lts::Lts hidden;
    lts::Lts restricted;
};

Views make_views(const lts::Lts& system, const lts::ActionSet& high_actions,
                 const lts::ActionSet& low_actions) {
    const auto& table = *system.actions();
    lts::ActionSet hide_lhs = high_actions;
    lts::ActionSet hide_rhs;
    for (Symbol a = 0; a < table.size(); ++a) {
        if (a == table.tau() || low_actions.contains(a)) continue;
        hide_lhs.insert(a);
        if (!high_actions.contains(a)) hide_rhs.insert(a);
    }
    return Views{
        lts::reachable_part(lts::hide(system, hide_lhs)),
        lts::reachable_part(
            lts::hide(lts::restrict_actions(system, high_actions), hide_rhs)),
    };
}

lts::ActionSet low_actions_of(const adl::ComposedModel& model,
                              const std::string& low_instance) {
    lts::ActionSet low;
    for (lts::ActionId a : adl::actions_of_instance(model, low_instance)) {
        low.insert(a);
    }
    return low;
}

lts::ActionSet high_actions_of(const adl::ComposedModel& model,
                               const std::vector<std::string>& high_labels) {
    const auto& table = *model.graph.actions();
    lts::ActionSet high;
    for (const std::string& label : high_labels) {
        const Symbol a = table.find(label);
        DPMA_REQUIRE(a != kNoSymbol, "high label not present in the model: " + label);
        high.insert(a);
    }
    return high;
}

Result run_check(const lts::Lts& hidden, const lts::Lts& restricted) {
    const bisim::EquivalenceResult eq = bisim::weakly_bisimilar(hidden, restricted);
    Result result;
    result.noninterfering = eq.equivalent;
    result.formula = eq.distinguishing;
    result.hidden_states = hidden.num_states();
    result.restricted_states = restricted.num_states();
    return result;
}

}  // namespace

Result check(const lts::Lts& system, const lts::ActionSet& high_actions) {
    const lts::Lts hidden = lts::reachable_part(lts::hide(system, high_actions));
    const lts::Lts restricted =
        lts::reachable_part(lts::restrict_actions(system, high_actions));
    return run_check(hidden, restricted);
}

Result check(const lts::Lts& system, const lts::ActionSet& high_actions,
             const lts::ActionSet& low_actions) {
    const Views views = make_views(system, high_actions, low_actions);
    return run_check(views.hidden, views.restricted);
}

Result check_dpm_transparency(const adl::ComposedModel& model,
                              const std::vector<std::string>& high_labels,
                              const std::string& low_instance) {
    return check(model.graph, high_actions_of(model, high_labels),
                 low_actions_of(model, low_instance));
}

TraceResult check_traces(const lts::Lts& system, const lts::ActionSet& high_actions,
                         const lts::ActionSet& low_actions) {
    const Views views = make_views(system, high_actions, low_actions);
    const bisim::TraceEquivalenceResult eq =
        bisim::weakly_trace_equivalent(views.hidden, views.restricted);
    TraceResult result;
    result.noninterfering = eq.equivalent;
    result.distinguishing_trace = eq.distinguishing_trace;
    return result;
}

TraceResult check_dpm_trace_transparency(const adl::ComposedModel& model,
                                         const std::vector<std::string>& high_labels,
                                         const std::string& low_instance) {
    return check_traces(model.graph, high_actions_of(model, high_labels),
                        low_actions_of(model, low_instance));
}

}  // namespace dpma::noninterference
