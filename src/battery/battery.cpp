#include "battery/battery.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dpma::battery {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool positive_finite(double v) { return std::isfinite(v) && v > 0.0; }

void require_power(double power) {
    DPMA_REQUIRE(std::isfinite(power) && power >= 0.0,
                 "battery power must be finite and >= 0");
}

void require_dt(double dt) {
    DPMA_REQUIRE(std::isfinite(dt) && dt >= 0.0,
                 "battery step length must be finite and >= 0");
}

/// Linear charge counter: remaining -= power * dt.
class IdealBattery final : public BatteryModel {
public:
    explicit IdealBattery(const BatteryParams& params) : BatteryModel(params) {
        reset();
    }

    [[nodiscard]] std::unique_ptr<BatteryModel> clone() const override {
        auto copy = std::make_unique<IdealBattery>(params_);
        copy->remaining_ = remaining_;
        copy->delivered_ = delivered_;
        return copy;
    }

    void reset() override {
        remaining_ = params_.capacity;
        delivered_ = 0.0;
    }

    double advance(double power, double dt) override {
        require_power(power);
        require_dt(dt);
        if (depleted() || dt == 0.0) {
            return kNaN;
        }
        const double tau = time_to_depletion(power);
        if (tau <= dt) {
            delivered_ += power * tau;
            remaining_ = 0.0;
            return tau;
        }
        remaining_ -= power * dt;
        delivered_ += power * dt;
        return kNaN;
    }

    [[nodiscard]] double time_to_depletion(double power) const override {
        require_power(power);
        if (depleted()) {
            return 0.0;
        }
        return power > 0.0 ? remaining_ / power : kNever;
    }

    [[nodiscard]] bool depleted() const override { return remaining_ <= 0.0; }
    [[nodiscard]] double state_of_charge() const override {
        return std::max(remaining_, 0.0) / params_.capacity;
    }
    [[nodiscard]] double delivered_charge() const override { return delivered_; }

private:
    double remaining_ = 0.0;
    double delivered_ = 0.0;
};

/// Peukert's law: a constant load P drains the effective (rated) charge at
/// rate P_ref * (P / P_ref)^alpha.  With alpha > 1 the battery delivers its
/// nominal capacity only at P <= P_ref and less above it.  Memoryless, so a
/// piecewise-constant load just switches the drain rate per step.
class PeukertBattery final : public BatteryModel {
public:
    explicit PeukertBattery(const BatteryParams& params) : BatteryModel(params) {
        reset();
    }

    [[nodiscard]] std::unique_ptr<BatteryModel> clone() const override {
        auto copy = std::make_unique<PeukertBattery>(params_);
        copy->remaining_ = remaining_;
        copy->delivered_ = delivered_;
        return copy;
    }

    void reset() override {
        remaining_ = params_.capacity;
        delivered_ = 0.0;
    }

    double advance(double power, double dt) override {
        require_power(power);
        require_dt(dt);
        if (depleted() || dt == 0.0) {
            return kNaN;
        }
        const double tau = time_to_depletion(power);
        if (tau <= dt) {
            delivered_ += power * tau;
            remaining_ = 0.0;
            return tau;
        }
        remaining_ -= drain_rate(power) * dt;
        delivered_ += power * dt;
        return kNaN;
    }

    [[nodiscard]] double time_to_depletion(double power) const override {
        require_power(power);
        if (depleted()) {
            return 0.0;
        }
        const double rate = drain_rate(power);
        return rate > 0.0 ? remaining_ / rate : kNever;
    }

    [[nodiscard]] bool depleted() const override { return remaining_ <= 0.0; }
    [[nodiscard]] double state_of_charge() const override {
        return std::max(remaining_, 0.0) / params_.capacity;
    }
    [[nodiscard]] double delivered_charge() const override { return delivered_; }

private:
    [[nodiscard]] double drain_rate(double power) const {
        if (power == 0.0) {
            return 0.0;
        }
        return params_.peukert_reference_power *
               std::pow(power / params_.peukert_reference_power,
                        params_.peukert_exponent);
    }

    double remaining_ = 0.0;
    double delivered_ = 0.0;
};

/// Kinetic battery model.  The textbook state is (y1 available, y2 bound)
/// with heights h1 = y1/c, h2 = y2/(1-c) and flow k*(h2 - h1):
///
///     y1' = -I + k*(h2 - h1),    y2' = -k*(h2 - h1).
///
/// We integrate the equivalent pair (y = y1 + y2, g = h2 - h1) instead,
/// which decouples under a constant load I:
///
///     y(t) = y0 - I*t
///     g(t) = g* + (g0 - g*) * exp(-k'*t),   g* = I / (c*k'),  k' = k/(c(1-c))
///
/// and recover y1 = c * (y - (1-c)*g).  This is numerically friendlier than
/// the published y1(t) formula (no cancellation between large well contents)
/// and makes the invariants obvious: total charge falls linearly, the height
/// gap relaxes exponentially toward the load-proportional equilibrium g*.
/// Depletion is y1 = 0; within a step y1(t) has at most one down-crossing
/// (its derivative -I + c*k'*g(t) is monotone in t), located by bisection to
/// ~1e-15 relative precision.
class KibamBattery final : public BatteryModel {
public:
    explicit KibamBattery(const BatteryParams& params) : BatteryModel(params) {
        reset();
    }

    [[nodiscard]] std::unique_ptr<BatteryModel> clone() const override {
        auto copy = std::make_unique<KibamBattery>(params_);
        copy->y_ = y_;
        copy->gap_ = gap_;
        copy->delivered_ = delivered_;
        copy->recovered_ = recovered_;
        copy->dead_ = dead_;
        return copy;
    }

    void reset() override {
        y_ = params_.capacity;
        gap_ = 0.0;  // full battery: both wells at height 1
        delivered_ = 0.0;
        recovered_ = 0.0;
        dead_ = false;
    }

    double advance(double power, double dt) override {
        require_power(power);
        require_dt(dt);
        if (dead_ || dt == 0.0) {
            return kNaN;
        }
        const double y1_before = available();
        if (y1_before <= 0.0) {
            dead_ = true;  // should not happen while !dead_, but be safe
            return 0.0;
        }
        // g(dt) serves both the crossing test and — in the common
        // no-crossing case — the state update, so the step costs one exp().
        const double c = params_.kibam_c;
        const double g_dt = gap_at(power, dt);
        if (c * (y_ - power * dt - (1.0 - c) * g_dt) > 0.0) {
            y_ -= power * dt;
            gap_ = g_dt;
            delivered_ += power * dt;
            // Bound -> available flow over the step: whatever y1 gained
            // beyond the load it served.  Clamp round-off at rest.
            recovered_ += std::max(available() - y1_before + power * dt, 0.0);
            return kNaN;
        }
        const double tau = crossing_time(power, dt);
        const double step = std::isnan(tau) ? dt : tau;
        y_ -= power * step;
        gap_ = gap_at(power, step);
        delivered_ += power * step;
        recovered_ += std::max(available() - y1_before + power * step, 0.0);
        if (!std::isnan(tau)) {
            dead_ = true;
            return tau;
        }
        return kNaN;
    }

    [[nodiscard]] double time_to_depletion(double power) const override {
        require_power(power);
        if (dead_) {
            return 0.0;
        }
        if (power == 0.0) {
            return kNever;
        }
        // y falls linearly, so y1 = c*(y - (1-c)*g) <= c*y hits zero no
        // later than y does: tau <= y0 / I brackets the crossing.
        const double bound = y_ / power;
        const double tau = crossing_time(power, bound * (1.0 + 1e-12) + 1e-300);
        return std::isnan(tau) ? bound : tau;
    }

    [[nodiscard]] bool depleted() const override { return dead_; }
    [[nodiscard]] double state_of_charge() const override {
        return std::max(y_, 0.0) / params_.capacity;
    }
    [[nodiscard]] double delivered_charge() const override { return delivered_; }
    [[nodiscard]] double recovered_charge() const override { return recovered_; }

    /// Available charge y1 right now (test hook).
    [[nodiscard]] double available() const {
        return params_.kibam_c * (y_ - (1.0 - params_.kibam_c) * gap_);
    }

private:
    /// g(t) after holding load \p power for time \p t from the current state.
    [[nodiscard]] double gap_at(double power, double t) const {
        const double k = params_.kibam_rate;
        const double g_star = power / (params_.kibam_c * k);
        return g_star + (gap_ - g_star) * std::exp(-k * t);
    }

    /// y1(t) under constant \p power, from the current state.
    [[nodiscard]] double available_at(double power, double t) const {
        const double c = params_.kibam_c;
        return c * (y_ - power * t - (1.0 - c) * gap_at(power, t));
    }

    /// First t in (0, dt] with y1(t) <= 0, or NaN when y1 stays positive on
    /// the whole step.  y1' = -I + c*k'*g(t) is monotone in t (g is), so y1
    /// is concave or convex on the step and a sign change at dt pins a
    /// unique down-crossing — bisection cannot miss it.
    [[nodiscard]] double crossing_time(double power, double dt) const {
        if (available() <= 0.0) {
            return 0.0;  // should not happen while !dead_, but be safe
        }
        if (available_at(power, dt) > 0.0) {
            return kNaN;
        }
        double lo = 0.0;
        double hi = dt;
        for (int i = 0; i < 200 && (hi - lo) > 1e-15 * dt; ++i) {
            const double mid = 0.5 * (lo + hi);
            (available_at(power, mid) > 0.0 ? lo : hi) = mid;
        }
        return hi;
    }

    double y_ = 0.0;          ///< total charge in both wells
    double gap_ = 0.0;        ///< height gap h2 - h1
    double delivered_ = 0.0;
    double recovered_ = 0.0;
    bool dead_ = false;
};

}  // namespace

void BatteryParams::validate() const {
    if (!positive_finite(capacity)) {
        throw Error("battery capacity must be positive and finite");
    }
    switch (kind) {
        case Kind::Ideal:
            break;
        case Kind::Peukert:
            if (!std::isfinite(peukert_exponent) || peukert_exponent < 1.0) {
                throw Error("peukert exponent must be finite and >= 1");
            }
            if (!positive_finite(peukert_reference_power)) {
                throw Error("peukert reference power must be positive and finite");
            }
            break;
        case Kind::Kibam:
            if (!std::isfinite(kibam_c) || kibam_c <= 0.0 || kibam_c >= 1.0) {
                throw Error("kibam well fraction c must lie strictly in (0, 1)");
            }
            if (!positive_finite(kibam_rate)) {
                throw Error("kibam rate k' must be positive and finite");
            }
            break;
    }
}

const char* BatteryParams::kind_name() const noexcept {
    switch (kind) {
        case Kind::Ideal:
            return "ideal";
        case Kind::Peukert:
            return "peukert";
        case Kind::Kibam:
            return "kibam";
    }
    return "?";
}

BatteryParams::Kind BatteryParams::kind_from(const std::string& name) {
    if (name == "ideal") {
        return Kind::Ideal;
    }
    if (name == "peukert") {
        return Kind::Peukert;
    }
    if (name == "kibam") {
        return Kind::Kibam;
    }
    throw Error("unknown battery model '" + name +
                "' (expected ideal, peukert or kibam)");
}

std::unique_ptr<BatteryModel> make_battery(const BatteryParams& params) {
    params.validate();
    switch (params.kind) {
        case BatteryParams::Kind::Ideal:
            return std::make_unique<IdealBattery>(params);
        case BatteryParams::Kind::Peukert:
            return std::make_unique<PeukertBattery>(params);
        case BatteryParams::Kind::Kibam:
            return std::make_unique<KibamBattery>(params);
    }
    throw Error("unknown battery kind");
}

double constant_power_lifetime(const BatteryParams& params, double power) {
    const auto model = make_battery(params);
    return model->time_to_depletion(power);
}

}  // namespace dpma::battery
