#pragma once

/// \file battery.hpp
/// Battery side models for the paper's *battery-powered* appliances: what
/// the accumulated-energy reward of sim/gsmp.hpp abstracts away — that real
/// batteries deliver *less* charge under heavy load (rate-capacity effect)
/// and *recover* charge during the idle periods a DPM creates — modelled
/// behind one interface with three implementations:
///
///  * Ideal    — a linear charge counter; lifetime = capacity / mean power,
///               the fluid approximation the old battery_lifetime example
///               hard-coded.  The baseline the others are judged against.
///  * Peukert  — the empirical rate-capacity law: a constant load P drains
///               effective charge at rate P_ref * (P / P_ref)^alpha, so the
///               battery delivers its nominal capacity only at the rated
///               load P_ref and less above it (alpha >= 1).  Memoryless —
///               no recovery.
///  * KiBaM    — the kinetic battery model (Manwell–McGowan): charge sits in
///               an *available* well y1 (fraction c of capacity) feeding the
///               load directly and a *bound* well y2 (fraction 1-c) that
///               refills y1 through a rate-k' valve.  The battery dies when
///               the available well empties, stranding whatever is still
///               bound — which is how both the rate-capacity effect (heavy
///               load outruns the valve) and the recovery effect (idle
///               periods let y2 drain into y1) emerge from two linear ODEs.
///
/// Every model advances by *closed-form* steps over piecewise-constant
/// loads: for KiBaM the two-well ODE is solved exactly per step (see
/// DESIGN.md §battery for the derivation), so a trajectory replay has no
/// numerical integration error and splitting a step never changes the
/// state.  Depletion instants inside a step are located by bisecting the
/// closed form to machine precision.
///
/// Units follow the models: time in milliseconds, power in reward units per
/// msec (the energy measures of models::rpc / models::streaming), charge in
/// reward units.

#include <limits>
#include <memory>
#include <string>

namespace dpma::battery {

/// Which battery model and its parameters; validate() before use.
struct BatteryParams {
    enum class Kind { Ideal, Peukert, Kibam };

    Kind kind = Kind::Ideal;
    /// Nominal charge (reward units): what an ideal battery delivers, what
    /// a Peukert battery delivers at P_ref, what a KiBaM battery holds in
    /// both wells together when full.
    double capacity = 1.0;

    // Peukert only.
    double peukert_exponent = 1.2;         ///< alpha >= 1 (1 == ideal)
    double peukert_reference_power = 1.0;  ///< rated load P_ref > 0

    // KiBaM only.
    double kibam_c = 0.5;       ///< available-well capacity fraction, in (0, 1)
    double kibam_rate = 1e-3;   ///< valve rate k' (1/msec), > 0; the height
                                ///< gap between wells relaxes as exp(-k' t)

    /// Throws Error when any active parameter is non-positive, non-finite
    /// or out of range (kibam_c must lie strictly inside (0, 1)).
    void validate() const;

    /// "ideal", "peukert" or "kibam" — axis/JSON labels.
    [[nodiscard]] const char* kind_name() const noexcept;

    [[nodiscard]] static Kind kind_from(const std::string& name);  ///< throws Error
};

/// A battery being discharged by a piecewise-constant load.  Stateful and
/// cheap to clone (one per simulation replication).
class BatteryModel {
public:
    explicit BatteryModel(const BatteryParams& params) : params_(params) {}
    virtual ~BatteryModel() = default;

    BatteryModel(const BatteryModel&) = delete;
    BatteryModel& operator=(const BatteryModel&) = delete;

    [[nodiscard]] virtual std::unique_ptr<BatteryModel> clone() const = 0;

    /// Back to a full battery.
    virtual void reset() = 0;

    /// Advances by \p dt time units under constant discharge power
    /// \p power >= 0 (power 0 is a rest period — KiBaM recovers charge).
    /// If the battery depletes strictly inside the step, the state advances
    /// exactly to the depletion instant and the offset into the step (in
    /// (0, dt]) is returned; otherwise the full dt elapses and NaN is
    /// returned.  No-op (returning NaN) once depleted.
    virtual double advance(double power, double dt) = 0;

    /// Depletion time from the *current* state under constant \p power,
    /// without advancing; +infinity when the battery would never die
    /// (power 0), 0 when already depleted.
    [[nodiscard]] virtual double time_to_depletion(double power) const = 0;

    [[nodiscard]] virtual bool depleted() const = 0;
    /// Remaining stored charge / capacity, in [0, 1].  For KiBaM this counts
    /// both wells, so a depleted battery can show a positive state of
    /// charge: the stranded bound charge the load can no longer reach.
    [[nodiscard]] virtual double state_of_charge() const = 0;
    /// Energy actually delivered to the load so far (integral of power dt).
    [[nodiscard]] virtual double delivered_charge() const = 0;
    /// KiBaM: total charge that flowed bound -> available so far (the
    /// recovery the DPM's sleep periods buy); 0 for memoryless models.
    [[nodiscard]] virtual double recovered_charge() const { return 0.0; }

    [[nodiscard]] const BatteryParams& params() const noexcept { return params_; }

protected:
    BatteryParams params_;
};

/// Factory; validates \p params (throws Error).
[[nodiscard]] std::unique_ptr<BatteryModel> make_battery(const BatteryParams& params);

/// Depletion time of a *full* battery under constant \p power — the fluid
/// lifetime bound when \p power is a steady-state expected power.
/// +infinity when power == 0.
[[nodiscard]] double constant_power_lifetime(const BatteryParams& params, double power);

inline constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace dpma::battery
