#include "battery/lifetime.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "ctmc/solve.hpp"
#include "exp/runner.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "sim/gsmp.hpp"

namespace dpma::battery {

namespace {

/// Capacity-independent invariants of one (system, dpm) configuration,
/// shared by every capacity point of the sweep.
struct SystemContext {
    adl::ComposedModel model;
    std::unique_ptr<sim::Simulator> simulator;
    std::size_t power_measure = 0;
    std::size_t served_measure = 0;
    double steady_power = 0.0;
    PowerProfile profile;
};

struct StudyContext {
    SystemContext without_dpm;
    SystemContext with_dpm;

    [[nodiscard]] const SystemContext& of(bool dpm) const {
        return dpm ? with_dpm : without_dpm;
    }
};

void build_system(SystemContext& out, const StudyOptions& options, bool dpm) {
    std::vector<adl::Measure> measures;
    if (options.system == "rpc") {
        const double timeout = options.control < 0.0
                                   ? models::rpc::Params{}.shutdown_timeout
                                   : options.control;
        out.model = models::rpc::compose(models::rpc::markovian(timeout, dpm));
        measures = models::rpc::measures();
        out.power_measure = models::rpc::kEnergyRate;
        out.served_measure = models::rpc::kThroughput;
    } else {
        const double period = options.control < 0.0
                                  ? models::streaming::Params{}.awake_period
                                  : options.control;
        out.model =
            models::streaming::compose(models::streaming::markovian(period, dpm));
        measures = models::streaming::measures();
        out.power_measure = models::streaming::kEnergyRate;
        out.served_measure = models::streaming::kHits;
    }
    out.simulator = std::make_unique<sim::Simulator>(out.model, std::move(measures));

    const ctmc::MarkovModel markov = ctmc::build_markov(out.model);
    const std::vector<double> power = tangible_power(
        markov, out.model, out.simulator->measures()[out.power_measure]);
    const std::vector<double> pi = ctmc::steady_state(markov.chain);
    KahanSum mean_power;
    for (std::size_t s = 0; s < pi.size(); ++s) {
        mean_power.add(pi[s] * power[s]);
    }
    out.steady_power = mean_power.value();
    out.profile = transient_power_profile(markov.chain, markov.initial_distribution,
                                          power, options.profile);
}

}  // namespace

void StudyOptions::validate() const {
    if (system != "rpc" && system != "streaming") {
        throw Error("unknown system '" + system + "' (expected rpc or streaming)");
    }
    // The swept capacities stand in for battery.capacity, so check them with
    // the same rule; the rest of the battery params validate as usual.
    if (capacities.empty()) {
        throw Error("need at least one battery capacity");
    }
    for (const double capacity : capacities) {
        BatteryParams probe = battery;
        probe.capacity = capacity;
        probe.validate();
    }
    if (replications < 1) {
        throw Error("need at least one replication");
    }
    if (!(confidence > 0.0) || !(confidence < 1.0)) {
        throw Error("confidence must lie in (0, 1)");
    }
    if (!std::isfinite(horizon_factor) || horizon_factor <= 0.0) {
        throw Error("horizon factor must be positive and finite");
    }
    if (!std::isfinite(control)) {
        throw Error("control parameter must be finite (negative = model default)");
    }
    if (retries < 0) {
        throw Error("retries must be >= 0");
    }
    if (resume && checkpoint_path.empty()) {
        throw Error("resume requires a checkpoint path");
    }
}

exp::Experiment lifetime_experiment(const StudyOptions& options) {
    options.validate();

    auto context = std::make_shared<StudyContext>();
    build_system(context->without_dpm, options, false);
    build_system(context->with_dpm, options, true);

    exp::Experiment experiment;
    experiment.name = "lifetime " + options.system + " " +
                      std::string(options.battery.kind_name());
    experiment.grid.axis(exp::Axis::list("capacity", options.capacities))
        .axis(exp::Axis::toggle("dpm"));
    for (const char* name : kLifetimeMeasures) {
        experiment.measures.emplace_back(name);
    }

    const BatteryParams family = options.battery;
    const int replications = options.replications;
    const double confidence = options.confidence;
    const double horizon_factor = options.horizon_factor;
    experiment.eval = [context, family, replications, confidence, horizon_factor](
                          const exp::Point& point, const exp::PointContext& pc) {
        const SystemContext& system = context->of(point.flag("dpm"));
        BatteryParams params = family;
        params.capacity = point.at("capacity");

        const double fluid = constant_power_lifetime(params, system.steady_power);
        const double refined = profile_lifetime(system.profile, params);
        DPMA_ASSERT(std::isfinite(fluid), "steady-state power must be positive");

        ReplayOptions replay;
        replay.horizon = horizon_factor * fluid;
        replay.seed = pc.seed();
        replay.replications = replications;
        replay.confidence = confidence;
        // The runner's pool is reentrant, so the replications of this point
        // fan out over the same workers that evaluate the other points.
        const LifetimeEstimate estimate =
            pc.pool != nullptr
                ? simulate_lifetime(*system.simulator, system.power_measure, params,
                                    replay, *pc.pool)
                : simulate_lifetime(*system.simulator, system.power_measure, params,
                                    replay);

        exp::PointResult result;
        result.values = {estimate.mean,
                         estimate.mean_totals[system.served_measure],
                         static_cast<double>(estimate.censored),
                         fluid,
                         refined,
                         estimate.mean_recovered};
        result.half_widths = {estimate.half_width, 0.0, 0.0, 0.0, 0.0, 0.0};
        std::ostringstream diagnostics;
        diagnostics << "{\"battery\":" << estimate.json() << "}";
        result.diagnostics = diagnostics.str();
        return result;
    };
    return experiment;
}

exp::RunOutcome run_lifetime_sweep(const StudyOptions& options) {
    const exp::Experiment experiment = lifetime_experiment(options);
    exp::RunOptions run;
    run.jobs = options.jobs;
    run.base_seed = options.base_seed;
    run.retries = options.retries;
    run.checkpoint_path = options.checkpoint_path;
    run.resume = options.resume;
    return exp::run_sweep(experiment, run);
}

exp::ResultSet run_lifetime_study(const StudyOptions& options) {
    exp::RunOutcome outcome = run_lifetime_sweep(options);
    if (outcome.first_error) std::rethrow_exception(outcome.first_error);
    return std::move(outcome.results);
}

}  // namespace dpma::battery
