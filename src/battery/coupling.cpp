#include "battery/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <sstream>

#include "core/error.hpp"
#include "core/stats_math.hpp"
#include "ctmc/solve.hpp"
#include "exp/pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace dpma::battery {

namespace {

/// Drains a battery along the simulated trajectory; stops the run at the
/// exact depletion crossing inside a residence interval.
class BatteryObserver final : public sim::TrajectoryObserver {
public:
    BatteryObserver(BatteryModel& model, const std::vector<double>& power)
        : model_(model), power_(power) {}

    double residence(lts::StateId state, double from, double to) override {
        ++steps_;
        const double offset = model_.advance(power_[state], to - from);
        return std::isnan(offset) ? -1.0 : from + offset;
    }

    /// Residence intervals seen; flushed to the metrics registry once per
    /// replay (a per-event counter add would contend across pool workers).
    [[nodiscard]] std::uint64_t steps() const { return steps_; }

private:
    BatteryModel& model_;
    const std::vector<double>& power_;
    std::uint64_t steps_ = 0;
};

}  // namespace

namespace {

void validate_replay(const sim::Simulator& simulator, std::size_t power_measure,
                     const BatteryParams& params, const ReplayOptions& options) {
    DPMA_REQUIRE(options.replications >= 1, "need at least one replication");
    DPMA_REQUIRE(std::isfinite(options.horizon) && options.horizon > 0.0,
                 "replay horizon must be positive and finite");
    DPMA_REQUIRE(power_measure < simulator.measures().size(),
                 "power measure index out of range");
    params.validate();
}

/// Replays replication \p r through \p battery (assumed freshly reset) and
/// returns its outcome; \p steps receives the residence-interval count.
ReplicationOutcome replay_one(const sim::Simulator& simulator,
                              const std::vector<double>& power,
                              BatteryModel& battery, const ReplayOptions& options,
                              int r, std::uint64_t& steps) {
    BatteryObserver observer(battery, power);

    sim::SimOptions run;
    run.horizon = options.horizon;
    // Same per-replication streams as sim::simulate_depletion, so an ideal
    // battery reproduces run_until's first-passage times exactly.
    run.seed =
        sim::Rng::derive_seed(options.seed, static_cast<std::uint64_t>(r) + 7777);
    run.max_immediate_burst = options.max_immediate_burst;
    const sim::ObservedResult result = simulator.run_observed(run, observer);
    steps = observer.steps();

    ReplicationOutcome outcome;
    outcome.time = result.time;
    outcome.depleted = result.stopped;
    outcome.delivered = battery.delivered_charge();
    outcome.recovered = battery.recovered_charge();
    outcome.state_of_charge = battery.state_of_charge();
    outcome.totals = result.totals;
    return outcome;
}

/// Folds per-replication outcomes (replication order) into the estimate;
/// updates the registry exactly as the serial loop did, so a pooled run's
/// telemetry and aggregates match serial bit for bit.
LifetimeEstimate aggregate_outcomes(std::vector<ReplicationOutcome>&& outcomes,
                                    std::span<const std::uint64_t> steps,
                                    const sim::Simulator& simulator,
                                    const ReplayOptions& options) {
    static obs::Counter& replays = obs::counter("battery.replays");
    static obs::Counter& censored_counter = obs::counter("battery.censored");
    static obs::Counter& steps_counter = obs::counter("battery.steps");
    static obs::Histogram& recovered_hist = obs::histogram("battery.recovered_charge");

    LifetimeEstimate estimate;
    estimate.replications = options.replications;
    estimate.samples.reserve(outcomes.size());
    estimate.mean_totals.assign(simulator.measures().size(), 0.0);
    std::vector<KahanSum> total_sums(simulator.measures().size());
    KahanSum delivered_sum;
    KahanSum recovered_sum;

    for (std::size_t r = 0; r < outcomes.size(); ++r) {
        const ReplicationOutcome& outcome = outcomes[r];
        replays.add();
        steps_counter.add(steps[r]);
        recovered_hist.observe(outcome.recovered);
        if (outcome.depleted) {
            estimate.samples.push_back(outcome.time);
            for (std::size_t m = 0; m < outcome.totals.size(); ++m) {
                total_sums[m].add(outcome.totals[m]);
            }
            delivered_sum.add(outcome.delivered);
            recovered_sum.add(outcome.recovered);
        } else {
            ++estimate.censored;
            censored_counter.add();
        }
    }
    estimate.outcomes = std::move(outcomes);

    if (!estimate.samples.empty()) {
        const double n = static_cast<double>(estimate.samples.size());
        estimate.mean = mean_of(estimate.samples);
        estimate.half_width = confidence_half_width(estimate.samples,
                                                    options.confidence);
        for (std::size_t m = 0; m < estimate.mean_totals.size(); ++m) {
            estimate.mean_totals[m] = total_sums[m].value() / n;
        }
        estimate.mean_delivered = delivered_sum.value() / n;
        estimate.mean_recovered = recovered_sum.value() / n;
    }
    return estimate;
}

}  // namespace

LifetimeEstimate simulate_lifetime(const sim::Simulator& simulator,
                                   std::size_t power_measure,
                                   const BatteryParams& params,
                                   const ReplayOptions& options) {
    DPMA_SPAN("battery.replay", "battery");
    validate_replay(simulator, power_measure, params, options);

    const std::vector<double>& power = simulator.state_reward_rates(power_measure);
    const auto battery = make_battery(params);
    const auto count = static_cast<std::size_t>(options.replications);

    std::vector<ReplicationOutcome> outcomes;
    outcomes.reserve(count);
    std::vector<std::uint64_t> steps(count, 0);
    for (std::size_t r = 0; r < count; ++r) {
        battery->reset();
        outcomes.push_back(replay_one(simulator, power, *battery, options,
                                      static_cast<int>(r), steps[r]));
    }
    return aggregate_outcomes(std::move(outcomes), steps, simulator, options);
}

LifetimeEstimate simulate_lifetime(const sim::Simulator& simulator,
                                   std::size_t power_measure,
                                   const BatteryParams& params,
                                   const ReplayOptions& options,
                                   exp::ThreadPool& pool) {
    DPMA_SPAN("battery.replay", "battery");
    validate_replay(simulator, power_measure, params, options);

    const std::vector<double>& power = simulator.state_reward_rates(power_measure);
    const auto count = static_cast<std::size_t>(options.replications);

    // Each replication drains its own battery (reset() and a fresh
    // make_battery() are equivalent states) and writes slot r; the registry
    // and the aggregates are then updated in replication order, making the
    // result bit-identical to the serial overload for any pool size.
    std::vector<ReplicationOutcome> outcomes(count);
    std::vector<std::uint64_t> steps(count, 0);
    pool.run(count, [&](std::size_t r) {
        const auto battery = make_battery(params);
        outcomes[r] = replay_one(simulator, power, *battery, options,
                                 static_cast<int>(r), steps[r]);
    });
    static obs::Counter& parallel_counter = obs::counter("sim.replications.parallel");
    if (pool.jobs() > 1) parallel_counter.add();
    return aggregate_outcomes(std::move(outcomes), steps, simulator, options);
}

std::string LifetimeEstimate::json() const {
    std::ostringstream out;
    out << "{\"mean\":" << obs::json_number(mean)
        << ",\"half_width\":" << obs::json_number(half_width)
        << ",\"replications\":" << replications << ",\"censored\":" << censored
        << ",\"mean_delivered\":" << obs::json_number(mean_delivered)
        << ",\"mean_recovered\":" << obs::json_number(mean_recovered)
        << ",\"mean_totals\":[";
    for (std::size_t m = 0; m < mean_totals.size(); ++m) {
        out << (m == 0 ? "" : ",") << obs::json_number(mean_totals[m]);
    }
    out << "],\"outcomes\":[";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const ReplicationOutcome& o = outcomes[i];
        out << (i == 0 ? "" : ",") << "{\"time\":" << obs::json_number(o.time)
            << ",\"depleted\":" << (o.depleted ? "true" : "false")
            << ",\"delivered\":" << obs::json_number(o.delivered)
            << ",\"recovered\":" << obs::json_number(o.recovered)
            << ",\"state_of_charge\":" << obs::json_number(o.state_of_charge)
            << "}";
    }
    out << "]}";
    return out.str();
}

std::vector<double> tangible_power(const ctmc::MarkovModel& markov,
                                   const adl::ComposedModel& model,
                                   const adl::Measure& measure) {
    std::vector<double> power(markov.chain.num_states(), 0.0);
    for (const adl::RewardClause& clause : measure.clauses) {
        if (clause.target != adl::RewardClause::Target::State) {
            continue;
        }
        const std::vector<char> mask = adl::state_mask(model, clause.predicate);
        for (std::size_t t = 0; t < power.size(); ++t) {
            if (mask[markov.orig_of[t]]) {
                power[t] += clause.reward;
            }
        }
    }
    return power;
}

PowerProfile transient_power_profile(
    const ctmc::Ctmc& chain,
    const std::vector<std::pair<ctmc::TangibleId, double>>& initial,
    const std::vector<double>& power, const ProfileOptions& options) {
    DPMA_REQUIRE(power.size() == chain.num_states(),
                 "power vector size must match the chain");
    DPMA_REQUIRE(options.step >= 0.0 && std::isfinite(options.step),
                 "profile step must be finite and >= 0");

    PowerProfile profile;
    const double max_exit = chain.max_exit_rate();
    profile.step = options.step > 0.0
                       ? options.step
                       : (max_exit > 0.0 ? 0.5 / max_exit : 1.0);

    // Dense current distribution.
    std::vector<double> pi(chain.num_states(), 0.0);
    for (const auto& [state, mass] : initial) {
        pi[state] += mass;
    }

    const auto expected_power = [&](const std::vector<double>& dist) {
        KahanSum sum;
        for (std::size_t s = 0; s < dist.size(); ++s) {
            sum.add(dist[s] * power[s]);
        }
        return sum.value();
    };
    const auto sparse = [](const std::vector<double>& dist) {
        std::vector<std::pair<ctmc::TangibleId, double>> entries;
        for (std::size_t s = 0; s < dist.size(); ++s) {
            if (dist[s] > 0.0) {
                entries.emplace_back(static_cast<ctmc::TangibleId>(s), dist[s]);
            }
        }
        return entries;
    };

    profile.power.reserve(std::min<std::size_t>(options.max_steps, 4096));
    for (std::size_t i = 0; i < options.max_steps; ++i) {
        const auto entries = sparse(pi);
        // Exact expected energy over this step / step = exact mean power on
        // the interval (uniformisation accumulated-reward identity), started
        // from the current distribution by the Markov property.
        const double energy =
            ctmc::accumulated_reward(chain, entries, power, profile.step);
        profile.power.push_back(energy / profile.step);

        const std::vector<double> next = ctmc::transient(chain, entries, profile.step);
        double delta = 0.0;
        for (std::size_t s = 0; s < pi.size(); ++s) {
            delta = std::max(delta, std::abs(next[s] - pi[s]));
        }
        pi = next;
        if (delta < options.tolerance) {
            profile.stationary = true;
            break;
        }
    }
    profile.tail_power = expected_power(pi);
    return profile;
}

double profile_lifetime(const PowerProfile& profile, const BatteryParams& params) {
    const auto model = make_battery(params);
    double elapsed = 0.0;
    for (const double power : profile.power) {
        const double offset = model->advance(power, profile.step);
        if (!std::isnan(offset)) {
            return elapsed + offset;
        }
        elapsed += profile.step;
    }
    const double tail = model->time_to_depletion(profile.tail_power);
    return std::isinf(tail) ? kNever : elapsed + tail;
}

CtmcLifetime ctmc_lifetime(const ctmc::MarkovModel& markov,
                           const adl::ComposedModel& model,
                           const adl::Measure& power_measure,
                           const BatteryParams& params,
                           const ProfileOptions& options,
                           const std::vector<double>& pi) {
    DPMA_SPAN("battery.ctmc", "battery");
    params.validate();

    const std::vector<double> power = tangible_power(markov, model, power_measure);
    const std::vector<double> steady =
        pi.empty() ? ctmc::steady_state(markov.chain) : pi;
    DPMA_REQUIRE(steady.size() == markov.chain.num_states(),
                 "steady-state vector size must match the chain");

    CtmcLifetime result;
    KahanSum mean_power;
    for (std::size_t s = 0; s < steady.size(); ++s) {
        mean_power.add(steady[s] * power[s]);
    }
    result.steady_power = mean_power.value();
    result.fluid = constant_power_lifetime(params, result.steady_power);

    const PowerProfile profile = transient_power_profile(
        markov.chain, markov.initial_distribution, power, options);
    result.refined = profile_lifetime(profile, params);
    result.profile_stationary = profile.stationary;

    // Power partition: which power levels the chain occupies, with what mass.
    std::map<double, PowerBand> bands;
    for (std::size_t s = 0; s < steady.size(); ++s) {
        PowerBand& band = bands[power[s]];
        band.power = power[s];
        band.probability += steady[s];
        ++band.states;
    }
    result.bands.reserve(bands.size());
    for (const auto& [_, band] : bands) {
        result.bands.push_back(band);
    }
    return result;
}

std::string CtmcLifetime::json() const {
    std::ostringstream out;
    out << "{\"steady_power\":" << obs::json_number(steady_power)
        << ",\"fluid\":" << obs::json_number(fluid)
        << ",\"refined\":" << obs::json_number(refined)
        << ",\"profile_stationary\":" << (profile_stationary ? "true" : "false")
        << ",\"bands\":[";
    for (std::size_t i = 0; i < bands.size(); ++i) {
        out << (i == 0 ? "" : ",") << "{\"power\":" << obs::json_number(bands[i].power)
            << ",\"probability\":" << obs::json_number(bands[i].probability)
            << ",\"states\":" << bands[i].states << "}";
    }
    out << "]}";
    return out.str();
}

}  // namespace dpma::battery
