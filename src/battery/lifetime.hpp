#pragma once

/// \file lifetime.hpp
/// Lifetime studies: battery parameters as sweep dimensions.
///
/// A study fixes a case-study system (rpc or streaming, Markovian phase) and
/// sweeps battery capacity × {NO-DPM, DPM} through the experiment engine:
/// every grid point replays simulated trajectories into a fresh battery
/// (coupling.hpp) and reports lifetime, requests served before depletion and
/// the analytic fluid/refined bounds from the CTMC.  This is the "does DPM
/// buy more than its average-power savings?" question of the paper asked the
/// way a battery answers it: in delivered charge, not mean power.
///
/// The per-system invariants (composed model, simulator, CTMC solution,
/// transient power profile — all capacity-independent) are built once per
/// DPM setting and shared by every point, so a sweep over many capacities
/// costs one model build.  Point seeds follow the experiment engine's
/// (base_seed, point_index) derivation: results are bit-identical for any
/// jobs count.

#include <cstdint>
#include <string>
#include <vector>

#include "battery/battery.hpp"
#include "battery/coupling.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace dpma::battery {

struct StudyOptions {
    std::string system = "rpc";  ///< "rpc" or "streaming"
    /// Battery family; `capacity` is ignored (it is the swept axis).
    BatteryParams battery;
    std::vector<double> capacities;  ///< axis values, each > 0
    /// DPM control parameter: shutdown timeout (rpc) / awake period
    /// (streaming) in msec; negative picks the model default.
    double control = -1.0;
    int replications = 5;
    double confidence = 0.95;
    /// Censoring bound per point: horizon = horizon_factor * fluid lifetime
    /// of that point's own configuration — unlike a bound computed from the
    /// NO-DPM power, this scales with the point being simulated.
    double horizon_factor = 8.0;
    std::uint64_t base_seed = 1;
    std::size_t jobs = 0;  ///< 0 = DPMA_JOBS / hardware_concurrency
    ProfileOptions profile{.step = 0.0, .max_steps = 5'000, .tolerance = 1e-9};
    /// Fault tolerance, forwarded to exp::RunOptions: per-point retry
    /// budget, durable checkpoint file, and whether to restore finished
    /// points from it (see exp/checkpoint.hpp).
    int retries = 0;
    std::string checkpoint_path;
    bool resume = false;

    void validate() const;  ///< throws Error on out-of-range values
};

/// Measure names of the study's ResultSet, in order.
inline constexpr const char* kLifetimeMeasures[] = {
    "lifetime",   ///< mean simulated depletion time (depleted replications)
    "served",     ///< mean requests/frames served before depletion
    "censored",   ///< replications alive at the horizon (should be 0)
    "fluid",      ///< analytic bound at constant steady-state power
    "refined",    ///< analytic bound replaying the transient power profile
    "recovered",  ///< mean KiBaM bound->available charge flow
};

/// Builds the declarative sweep (axes: capacity, dpm).  The returned
/// Experiment owns the per-system context through its eval closure; build it
/// once and hand it to exp::run.  Validates \p options.
[[nodiscard]] exp::Experiment lifetime_experiment(const StudyOptions& options);

/// lifetime_experiment + exp::run_sweep with the study's jobs/base_seed and
/// fault-tolerance options — the checkpoint/resume/retry path used by
/// `dpma_cli lifetime`.  The outcome reports failed and skipped points
/// instead of throwing; see exp::RunOutcome.
[[nodiscard]] exp::RunOutcome run_lifetime_sweep(const StudyOptions& options);

/// lifetime_experiment + exp::run with the study's jobs/base_seed.  Throws
/// the lowest-index point failure (after the sweep drains), like exp::run.
[[nodiscard]] exp::ResultSet run_lifetime_study(const StudyOptions& options);

}  // namespace dpma::battery
