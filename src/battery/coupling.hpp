#pragma once

/// \file coupling.hpp
/// Couples a battery model to both phases of the methodology:
///
///  * **simulation** — simulate_lifetime() replays GSMP trajectories into a
///    battery via sim::TrajectoryObserver: between events the battery drains
///    at the current state's power reward rate, and the run ends at the
///    *exact* instant the available charge crosses zero (located in closed
///    form inside the residence interval).  Replication CIs reuse the
///    sim::Estimate conventions; replications still alive at the horizon are
///    *censored* and reported separately — never folded into the mean, which
///    would bias the lifetime low (see ISSUE: the old example's fragile
///    `4 * capacity / power` horizon did exactly that).
///
///  * **Markovian analysis** — ctmc_lifetime() bounds the lifetime from the
///    CTMC: the *fluid* lifetime feeds the steady-state expected power into
///    the battery as a constant load, and the *refined* lifetime replays the
///    transient expected-power profile (uniformisation steps until the
///    distribution is stationary) instead, capturing the initial transient.
///    For an ideal battery both equal capacity / E[power] once stationary;
///    for KiBaM/Peukert the nonlinearity makes them genuinely different
///    predictions.  The power partition of the tangible states (which states
///    drain how much, with what probability) is reported alongside.
///
/// All entry points are deterministic given their seeds and thread-safe on
/// distinct arguments (obs instruments are atomics), so exp::run_experiment
/// can evaluate them from its worker pool.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adl/measure.hpp"
#include "battery/battery.hpp"
#include "ctmc/ctmc.hpp"
#include "sim/gsmp.hpp"

namespace dpma::exp {
class ThreadPool;
}  // namespace dpma::exp

namespace dpma::battery {

// ---------------------------------------------------------------------------
// Simulation side
// ---------------------------------------------------------------------------

struct ReplayOptions {
    /// Censoring bound: a replication whose battery outlives the horizon is
    /// counted as censored, not averaged.  Must be > 0.
    double horizon = 0.0;
    std::uint64_t seed = 1;
    int replications = 1;
    double confidence = 0.95;
    /// Guard against immediate-action livelock (see sim::SimOptions).
    std::uint64_t max_immediate_burst = 1'000'000;
};

/// One replication's outcome.
struct ReplicationOutcome {
    double time = 0.0;          ///< depletion instant, or the horizon
    bool depleted = false;
    double delivered = 0.0;     ///< charge delivered to the load
    double recovered = 0.0;     ///< KiBaM bound->available flow (0 otherwise)
    double state_of_charge = 0.0;  ///< residual SoC (stranded charge if dead)
    /// Raw accumulated totals of every simulator measure at `time` — e.g.
    /// requests served before the battery died.
    std::vector<double> totals;
};

/// Replication aggregate of simulate_lifetime().
struct LifetimeEstimate {
    double mean = 0.0;        ///< mean lifetime over *depleted* replications
    double half_width = 0.0;  ///< two-sided CI half-width over the same
    int replications = 0;
    int censored = 0;         ///< replications alive at the horizon
    std::vector<double> samples;      ///< depleted lifetimes, replication order
    /// Mean raw totals of every measure at depletion (depleted reps only).
    std::vector<double> mean_totals;
    double mean_delivered = 0.0;
    double mean_recovered = 0.0;
    std::vector<ReplicationOutcome> outcomes;  ///< all replications, in order

    /// Strict-JSON object (obs::json_valid) with the summary fields and the
    /// per-replication outcomes.
    [[nodiscard]] std::string json() const;
};

/// Battery lifetime by trajectory replay: \p replications independent runs
/// (seeds derived from options.seed exactly like sim::simulate_replications),
/// each driving a fresh battery with the per-state rates of measure
/// \p power_measure until depletion or options.horizon.
///
/// Deterministic given options.seed; emits obs counters `battery.replays`,
/// `battery.steps`, `battery.censored`, histogram `battery.recovered_charge`
/// and a "battery.replay" span.
[[nodiscard]] LifetimeEstimate simulate_lifetime(const sim::Simulator& simulator,
                                                 std::size_t power_measure,
                                                 const BatteryParams& params,
                                                 const ReplayOptions& options);

/// Replication-parallel overload: each replication drains its own battery on
/// a pool worker, then counters, histogram observations and aggregates are
/// applied in replication order — bit-identical to the serial overload for
/// any pool size (same seeds, same samples vector, same registry deltas).
[[nodiscard]] LifetimeEstimate simulate_lifetime(const sim::Simulator& simulator,
                                                 std::size_t power_measure,
                                                 const BatteryParams& params,
                                                 const ReplayOptions& options,
                                                 exp::ThreadPool& pool);

// ---------------------------------------------------------------------------
// Markovian side
// ---------------------------------------------------------------------------

/// STATE_REWARD accrual rate of \p measure in every tangible state (indexed
/// by TangibleId) — the power vector the analytic bounds integrate.
[[nodiscard]] std::vector<double> tangible_power(const ctmc::MarkovModel& markov,
                                                 const adl::ComposedModel& model,
                                                 const adl::Measure& measure);

/// One class of the power partition: the tangible states draining at a
/// common rate, with their aggregate steady-state probability.
struct PowerBand {
    double power = 0.0;
    double probability = 0.0;
    std::size_t states = 0;
};

/// Expected-power trajectory of the chain from its initial distribution:
/// power[i] is the exact expected power over [i*step, (i+1)*step) (via the
/// accumulated-reward identity of uniformisation), and tail_power the
/// stationary expected power that extends the profile past the last step.
struct PowerProfile {
    double step = 0.0;
    std::vector<double> power;
    double tail_power = 0.0;
    bool stationary = false;  ///< did the distribution settle before max_steps?
};

struct ProfileOptions {
    /// Step length; 0 picks 0.5 / max_exit_rate automatically.
    double step = 0.0;
    std::size_t max_steps = 20'000;
    /// Stationarity: stop when the distribution moves less than this
    /// (max-norm) over one step.
    double tolerance = 1e-10;
};

[[nodiscard]] PowerProfile transient_power_profile(const ctmc::Ctmc& chain,
                                                   const std::vector<std::pair<ctmc::TangibleId, double>>& initial,
                                                   const std::vector<double>& power,
                                                   const ProfileOptions& options = {});

/// Depletion time of a full battery replaying the profile (the tail power
/// extends it to infinity); kNever when the battery survives a zero-power
/// tail.
[[nodiscard]] double profile_lifetime(const PowerProfile& profile,
                                      const BatteryParams& params);

/// Analytic lifetime bounds from the CTMC.
struct CtmcLifetime {
    double steady_power = 0.0;  ///< E[power] at steady state
    double fluid = 0.0;     ///< lifetime under the constant steady-state power
    double refined = 0.0;   ///< lifetime replaying the transient power profile
    std::vector<PowerBand> bands;  ///< power partition of the tangible states
    bool profile_stationary = false;

    [[nodiscard]] std::string json() const;
};

/// Solves the chain (steady state + transient profile) and evaluates both
/// bounds for \p params.  Emits a "battery.ctmc" span.  \p pi may pass a
/// precomputed steady-state vector to avoid re-solving; empty solves inside.
[[nodiscard]] CtmcLifetime ctmc_lifetime(const ctmc::MarkovModel& markov,
                                         const adl::ComposedModel& model,
                                         const adl::Measure& power_measure,
                                         const BatteryParams& params,
                                         const ProfileOptions& options = {},
                                         const std::vector<double>& pi = {});

}  // namespace dpma::battery
