#include "models/streaming.hpp"

#include "core/error.hpp"
#include "models/builder.hpp"

namespace dpma::models::streaming {
namespace {

adl::ElemType video_server(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Video_Server_Type";
    type.behaviors = {
        adl::BehaviorDef{"Generating_Server", {},
            {alt({act("generate_frame",
                      r.timed(p.service_time, Dist::deterministic(p.service_time)))},
                 "Sending_Server")}},
        adl::BehaviorDef{"Sending_Server", {},
            {alt({act("send_frame", r.immediate())}, "Generating_Server")}},
    };
    type.input_interactions = {};
    type.output_interactions = {"send_frame"};
    return type;
}

/// Access point with an internal buffer of the given capacity.  Always
/// accepts incoming frames (dropping on overflow) and pushes buffered
/// frames into the radio channel as soon as it is free.  Emits
/// notify_occupied / notify_empty edge events for the DPM.
adl::ElemType access_point(const RateGen& r) {
    adl::ElemType type;
    type.name = "Access_Point_Type";
    adl::BehaviorDef buffer{"AP_Buffer", {"n", "cap"}, {}};
    const auto n = [] { return pvar(0, "n"); };
    const auto cap = [] { return pvar(1, "cap"); };

    // Receive into the empty buffer: report the 0 -> 1 edge to the DPM.
    buffer.alternatives.push_back(
        alt({act("receive_frame", RateGen::passive()),
             act("notify_occupied", r.immediate())},
            "AP_Buffer", {lit(1), cap()}, cmp_eq(n(), lit(0))));
    // Receive with room.
    buffer.alternatives.push_back(
        alt({act("receive_frame", RateGen::passive())}, "AP_Buffer",
            {plus(n(), lit(1)), cap()},
            adl::BoolExpr::conj(cmp_gt(n(), lit(0)), cmp_lt(n(), cap()))));
    // Receive when full: the frame is dropped (buffer-full loss).
    buffer.alternatives.push_back(
        alt({act("receive_frame", RateGen::passive()),
             act("drop_frame", r.immediate())},
            "AP_Buffer", {n(), cap()}, cmp_eq(n(), cap())));
    // Transmit a buffered frame; report the 1 -> 0 edge to the DPM.
    buffer.alternatives.push_back(
        alt({act("send_to_channel", r.immediate()),
             act("notify_empty", r.immediate())},
            "AP_Buffer", {lit(0), cap()}, cmp_eq(n(), lit(1))));
    buffer.alternatives.push_back(
        alt({act("send_to_channel", r.immediate())}, "AP_Buffer",
            {minus(n(), lit(1)), cap()}, cmp_gt(n(), lit(1))));

    type.behaviors = {std::move(buffer)};
    type.input_interactions = {"receive_frame"};
    type.output_interactions = {"send_to_channel", "notify_occupied", "notify_empty"};
    return type;
}

/// Radio channel between AP and NIC (same Gaussian model as rpc, Sect. 5.3).
adl::ElemType radio_channel(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Radio_Channel_Type";
    type.behaviors = {
        adl::BehaviorDef{"Radio_Channel", {},
            {alt({act("get_packet", RateGen::passive())}, "Propagating_Channel")}},
        adl::BehaviorDef{"Propagating_Channel", {},
            {alt({act("propagate_packet",
                      r.timed(p.propagation_time,
                              Dist::normal(p.propagation_time, p.propagation_stddev)))},
                 "Deciding_Channel")}},
        adl::BehaviorDef{"Deciding_Channel", {},
            {alt({act("keep_packet", r.immediate(1, 1.0 - p.loss_probability)),
                  act("deliver_packet", r.immediate())},
                 "Radio_Channel"),
             alt({act("lose_packet", r.immediate(1, p.loss_probability))},
                 "Radio_Channel")}},
    };
    type.input_interactions = {"get_packet"};
    type.output_interactions = {"deliver_packet"};
    return type;
}

/// 802.11b NIC with MAC-level power management (PSP): receives frames while
/// awake and forwards them to the client buffer; doze mode is entered on a
/// DPM shutdown and left on a DPM wakeup, through a wake-up transient and a
/// synchronisation check (Sect. 2.2 / 4.2).
adl::ElemType nic(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "NIC_Type";
    type.behaviors = {
        adl::BehaviorDef{"NIC_Awake", {},
            {alt({act("receive_frame", RateGen::passive()),
                  act("forward_frame", r.immediate())},
                 "NIC_Awake"),
             alt({act("receive_shutdown", RateGen::passive())}, "NIC_Doze")}},
        adl::BehaviorDef{"NIC_Doze", {},
            {alt({act("receive_wakeup", RateGen::passive())}, "NIC_WakingUp")}},
        adl::BehaviorDef{"NIC_WakingUp", {},
            {alt({act("awake_nic",
                      r.timed(p.nic_wakeup_time, Dist::deterministic(p.nic_wakeup_time)))},
                 "NIC_Checking")}},
        adl::BehaviorDef{"NIC_Checking", {},
            {alt({act("check_ap",
                      r.timed(p.check_time, Dist::deterministic(p.check_time)))},
                 "NIC_Awake")}},
    };
    type.input_interactions = {"receive_frame", "receive_shutdown", "receive_wakeup"};
    type.output_interactions = {"forward_frame"};
    return type;
}

/// Client-side frame buffer.  Serves a frame when non-empty and a miss
/// (real-time violation) when empty, as two mutually exclusive passive
/// interactions, so no priority mechanism is needed in any phase.
adl::ElemType client_buffer(const RateGen& r) {
    adl::ElemType type;
    type.name = "Client_Buffer_Type";
    adl::BehaviorDef buffer{"B_Buffer", {"n", "cap"}, {}};
    const auto n = [] { return pvar(0, "n"); };
    const auto cap = [] { return pvar(1, "cap"); };

    buffer.alternatives.push_back(
        alt({act("receive_frame", RateGen::passive())}, "B_Buffer",
            {plus(n(), lit(1)), cap()}, cmp_lt(n(), cap())));
    buffer.alternatives.push_back(
        alt({act("receive_frame", RateGen::passive()),
             act("drop_frame", r.immediate())},
            "B_Buffer", {n(), cap()}, cmp_eq(n(), cap())));
    buffer.alternatives.push_back(
        alt({act("serve_frame", RateGen::passive())}, "B_Buffer",
            {minus(n(), lit(1)), cap()}, cmp_gt(n(), lit(0))));
    buffer.alternatives.push_back(
        alt({act("serve_miss", RateGen::passive())}, "B_Buffer", {n(), cap()},
            cmp_eq(n(), lit(0))));

    type.behaviors = {std::move(buffer)};
    type.input_interactions = {"receive_frame", "serve_frame", "serve_miss"};
    type.output_interactions = {};
    return type;
}

/// Non-blocking renderer: after the prebuffering delay it requests one
/// frame per rendering period; the fetch resolves to a hit or a miss
/// depending on the buffer.
adl::ElemType render_client(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Render_Client_Type";
    type.behaviors = {
        adl::BehaviorDef{"Delaying_Client", {},
            {alt({act("initial_delay",
                      r.timed(p.initial_delay, Dist::deterministic(p.initial_delay)))},
                 "Rendering_Client")}},
        adl::BehaviorDef{"Rendering_Client", {},
            {alt({act("render_frame",
                      r.timed(p.render_time, Dist::deterministic(p.render_time)))},
                 "Fetching_Client")}},
        adl::BehaviorDef{"Fetching_Client", {},
            {alt({act("get_frame", r.immediate())}, "Rendering_Client"),
             alt({act("get_miss", r.immediate())}, "Rendering_Client")}},
    };
    type.input_interactions = {};
    type.output_interactions = {"get_frame", "get_miss"};
    return type;
}

lts::Rate period_rate(const RateGen& r, double period) {
    if (period <= 0.0) return r.immediate();
    return r.timed(period, Dist::deterministic(period));
}

/// PSP power manager (Sect. 2.2): tracks the AP buffer via edge
/// notifications; arms a shutdown when the NIC is awake and the buffer is
/// empty; wakes the NIC up periodically while it dozes.
adl::ElemType psp_dpm(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"DPM_AwakeEmpty", {},
            {alt({act("send_shutdown", period_rate(r, p.shutdown_delay))},
                 "DPM_DozeEmpty"),
             alt({act("receive_occupied_notice", RateGen::passive())}, "DPM_AwakeBusy")}},
        adl::BehaviorDef{"DPM_AwakeBusy", {},
            {alt({act("receive_empty_notice", RateGen::passive())}, "DPM_AwakeEmpty")}},
        adl::BehaviorDef{"DPM_DozeEmpty", {},
            {alt({act("send_wakeup", period_rate(r, p.awake_period))}, "DPM_AwakeEmpty"),
             alt({act("receive_occupied_notice", RateGen::passive())}, "DPM_DozeBusy")}},
        adl::BehaviorDef{"DPM_DozeBusy", {},
            {alt({act("send_wakeup", period_rate(r, p.awake_period))}, "DPM_AwakeBusy"),
             alt({act("receive_empty_notice", RateGen::passive())}, "DPM_DozeEmpty")}},
    };
    type.input_interactions = {"receive_occupied_notice", "receive_empty_notice"};
    type.output_interactions = {"send_shutdown", "send_wakeup"};
    return type;
}

/// Null DPM for the "without DPM" configurations: absorbs the AP buffer
/// notifications, never commands the NIC.
adl::ElemType null_dpm() {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"DPM_Empty", {},
            {alt({act("receive_occupied_notice", RateGen::passive())}, "DPM_Busy")}},
        adl::BehaviorDef{"DPM_Busy", {},
            {alt({act("receive_empty_notice", RateGen::passive())}, "DPM_Empty")}},
    };
    type.input_interactions = {"receive_occupied_notice", "receive_empty_notice"};
    type.output_interactions = {};
    return type;
}

}  // namespace

Config functional(long buffer_capacity) {
    Config config;
    config.phase = Phase::Functional;
    config.with_dpm = true;
    config.params.ap_capacity = buffer_capacity;
    config.params.b_capacity = buffer_capacity;
    return config;
}

Config markovian(double awake_period, bool dpm) {
    Config config;
    config.phase = Phase::Markovian;
    config.with_dpm = dpm;
    config.params.awake_period = awake_period;
    return config;
}

Config general(double awake_period, bool dpm) {
    Config config = markovian(awake_period, dpm);
    config.phase = Phase::General;
    return config;
}

adl::ArchiType build(const Config& config) {
    const RateGen r(config.phase);
    const Params& p = config.params;
    DPMA_REQUIRE(p.ap_capacity >= 1 && p.b_capacity >= 1, "buffer capacities must be >= 1");

    adl::ArchiType archi;
    archi.name = "Streaming_DPM";
    archi.elem_types = {
        video_server(r, p), access_point(r), radio_channel(r, p), nic(r, p),
        client_buffer(r), render_client(r, p),
        config.with_dpm ? psp_dpm(r, p) : null_dpm(),
    };
    archi.instances = {
        adl::Instance{"S", "Video_Server_Type", {}},
        adl::Instance{"AP", "Access_Point_Type", {0, p.ap_capacity}},
        adl::Instance{"RSC", "Radio_Channel_Type", {}},
        adl::Instance{"NIC", "NIC_Type", {}},
        adl::Instance{"B", "Client_Buffer_Type", {0, p.b_capacity}},
        adl::Instance{"C", "Render_Client_Type", {}},
        adl::Instance{"DPM", "DPM_Type", {}},
    };
    archi.attachments = {
        adl::Attachment{"S", "send_frame", "AP", "receive_frame"},
        adl::Attachment{"AP", "send_to_channel", "RSC", "get_packet"},
        adl::Attachment{"RSC", "deliver_packet", "NIC", "receive_frame"},
        adl::Attachment{"NIC", "forward_frame", "B", "receive_frame"},
        adl::Attachment{"C", "get_frame", "B", "serve_frame"},
        adl::Attachment{"C", "get_miss", "B", "serve_miss"},
        adl::Attachment{"AP", "notify_occupied", "DPM", "receive_occupied_notice"},
        adl::Attachment{"AP", "notify_empty", "DPM", "receive_empty_notice"},
    };
    if (config.with_dpm) {
        archi.attachments.push_back(
            adl::Attachment{"DPM", "send_shutdown", "NIC", "receive_shutdown"});
        archi.attachments.push_back(
            adl::Attachment{"DPM", "send_wakeup", "NIC", "receive_wakeup"});
    }
    return archi;
}

adl::ComposedModel compose(const Config& config, bool record_state_names) {
    adl::ComposeOptions options;
    options.record_state_names = record_state_names;
    return adl::compose(build(config), options);
}

std::vector<std::string> high_action_labels() {
    return {"DPM.send_shutdown#NIC.receive_shutdown",
            "DPM.send_wakeup#NIC.receive_wakeup"};
}

std::vector<adl::Measure> measures() {
    Params defaults;
    std::vector<adl::Measure> out(kNumMeasures);
    out[kEnergyRate].name = "nic_energy";
    out[kEnergyRate].clauses = {
        adl::state_reward_in("NIC", "NIC_Awake", defaults.power_awake),
        adl::state_reward_in("NIC", "NIC_Doze", defaults.power_doze),
        adl::state_reward_in("NIC", "NIC_WakingUp", defaults.power_waking),
        adl::state_reward_in("NIC", "NIC_Checking", defaults.power_checking),
    };
    out[kFramesReceived].name = "frames_received";
    out[kFramesReceived].clauses = {adl::trans_reward("NIC", "receive_frame", 1.0)};
    out[kApLoss].name = "ap_loss";
    out[kApLoss].clauses = {adl::trans_reward("AP", "drop_frame", 1.0)};
    out[kBLoss].name = "b_loss";
    out[kBLoss].clauses = {adl::trans_reward("B", "drop_frame", 1.0)};
    out[kMiss].name = "miss";
    out[kMiss].clauses = {adl::trans_reward("C", "get_miss", 1.0)};
    out[kHits].name = "hits";
    out[kHits].clauses = {adl::trans_reward("C", "get_frame", 1.0)};
    out[kGenerated].name = "generated";
    out[kGenerated].clauses = {adl::trans_reward("S", "generate_frame", 1.0)};
    return out;
}

}  // namespace dpma::models::streaming
