#pragma once

/// \file builder.hpp
/// Tiny construction helpers that keep the programmatic case-study models
/// close to the Æmilia surface syntax:  behaviours read as lists of
/// alternatives "guard -> <action, rate> . ... . Continuation(args)".

#include <string>
#include <utility>
#include <vector>

#include "adl/model.hpp"

namespace dpma::models {

[[nodiscard]] inline adl::Action act(std::string name, lts::Rate rate) {
    return adl::Action{std::move(name), std::move(rate)};
}

/// Alternative with no guard and constant-free continuation.
[[nodiscard]] inline adl::Alternative alt(std::vector<adl::Action> actions,
                                          std::string continuation,
                                          std::vector<adl::ExprPtr> args = {},
                                          adl::BoolExprPtr guard = nullptr) {
    return adl::Alternative{std::move(guard), std::move(actions),
                            adl::BehaviorCall{std::move(continuation), std::move(args)}};
}

// Expression shorthands for single-parameter buffer behaviours.
[[nodiscard]] inline adl::ExprPtr pvar(std::size_t index = 0, std::string name = "n") {
    return adl::Expr::param(index, std::move(name));
}
[[nodiscard]] inline adl::ExprPtr lit(long v) { return adl::Expr::constant(v); }
[[nodiscard]] inline adl::ExprPtr plus(adl::ExprPtr a, adl::ExprPtr b) {
    return adl::Expr::binary(adl::Expr::Kind::Add, std::move(a), std::move(b));
}
[[nodiscard]] inline adl::ExprPtr minus(adl::ExprPtr a, adl::ExprPtr b) {
    return adl::Expr::binary(adl::Expr::Kind::Sub, std::move(a), std::move(b));
}
[[nodiscard]] inline adl::BoolExprPtr cmp_lt(adl::ExprPtr a, adl::ExprPtr b) {
    return adl::BoolExpr::compare(adl::BoolExpr::CmpOp::Lt, std::move(a), std::move(b));
}
[[nodiscard]] inline adl::BoolExprPtr cmp_eq(adl::ExprPtr a, adl::ExprPtr b) {
    return adl::BoolExpr::compare(adl::BoolExpr::CmpOp::Eq, std::move(a), std::move(b));
}
[[nodiscard]] inline adl::BoolExprPtr cmp_gt(adl::ExprPtr a, adl::ExprPtr b) {
    return adl::BoolExpr::compare(adl::BoolExpr::CmpOp::Gt, std::move(a), std::move(b));
}

}  // namespace dpma::models
