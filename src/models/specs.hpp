#pragma once

/// \file specs.hpp
/// The case-study models in the Æmilia *surface syntax*, embedded at build
/// time from the authoritative files in specs/.  They demonstrate the
/// parser end-to-end and are cross-checked against the programmatic
/// builders in the test suite (strong bisimilarity for the untimed spec,
/// measure agreement for the Markovian ones).

#include <string_view>

namespace dpma::models {

/// Sect. 2.3: the simplified rpc system, untimed (fails noninterference).
[[nodiscard]] std::string_view rpc_untimed_spec();

/// Sect. 3.1/4.1: the revised rpc system with Markovian rates (timeout 5 ms).
[[nodiscard]] std::string_view rpc_revised_markov_spec();

/// Sect. 2.2/4.2: the streaming system with Markovian rates (awake 100 ms).
[[nodiscard]] std::string_view streaming_markov_spec();

/// Sect. 5.2: the revised rpc system with general (det/normal) delays.
[[nodiscard]] std::string_view rpc_general_spec();

/// The disk case study with Markovian rates (idle timeout 500 ms).
[[nodiscard]] std::string_view disk_markov_spec();

/// Sect. 4.1: the rpc measure definitions in the companion language.
[[nodiscard]] std::string_view rpc_measures_spec();

}  // namespace dpma::models
