#include "models/rpc.hpp"

#include "core/error.hpp"
#include "models/builder.hpp"

namespace dpma::models::rpc {
namespace {

/// Server of Sect. 2.3: sensitive to shutdown in every state, no duplicate
/// handling, no DPM notifications.
adl::ElemType simplified_server(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Server_Type";
    type.behaviors = {
        adl::BehaviorDef{"Idle_Server", {},
            {alt({act("receive_rpc_packet", RateGen::passive())}, "Busy_Server"),
             alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server")}},
        adl::BehaviorDef{"Busy_Server", {},
            {alt({act("prepare_result_packet",
                      r.timed(p.service_time, Dist::deterministic(p.service_time)))},
                 "Responding_Server"),
             alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server")}},
        adl::BehaviorDef{"Responding_Server", {},
            {alt({act("send_result_packet", r.immediate())}, "Idle_Server"),
             alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server")}},
        adl::BehaviorDef{"Sleeping_Server", {},
            {alt({act("receive_rpc_packet", RateGen::passive())}, "Awaking_Server")}},
        adl::BehaviorDef{"Awaking_Server", {},
            {alt({act("awake", r.timed(p.awake_time, Dist::deterministic(p.awake_time)))},
                 "Busy_Server")}},
    };
    type.input_interactions = {"receive_rpc_packet", "receive_shutdown"};
    type.output_interactions = {"send_result_packet"};
    return type;
}

/// Server of Sect. 3.1: shutdown only accepted when idle, duplicates are
/// discarded, busy/idle notifications keep the DPM in sync.  With
/// \p shutdown_when_busy the Busy/Responding states also accept shutdowns
/// (dropping the request in service), the variant Sect. 2.1 describes.
adl::ElemType revised_server(const RateGen& r, const Params& p,
                             bool shutdown_when_busy) {
    adl::ElemType type;
    type.name = "Server_Type";
    type.behaviors = {
        adl::BehaviorDef{"Idle_Server", {},
            {alt({act("receive_rpc_packet", RateGen::passive()),
                  act("notify_busy", r.immediate())},
                 "Busy_Server"),
             alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server")}},
        adl::BehaviorDef{"Busy_Server", {},
            {alt({act("prepare_result_packet",
                      r.timed(p.service_time, Dist::deterministic(p.service_time)))},
                 "Responding_Server"),
             alt({act("receive_rpc_packet", RateGen::passive()),
                  act("ignore_rpc_packet", r.immediate())},
                 "Busy_Server")}},
        adl::BehaviorDef{"Responding_Server", {},
            {alt({act("send_result_packet", r.immediate()),
                  act("notify_idle", r.immediate())},
                 "Idle_Server"),
             alt({act("receive_rpc_packet", RateGen::passive()),
                  act("ignore_rpc_packet", r.immediate())},
                 "Responding_Server")}},
        adl::BehaviorDef{"Sleeping_Server", {},
            {alt({act("receive_rpc_packet", RateGen::passive())}, "Awaking_Server")}},
        adl::BehaviorDef{"Awaking_Server", {},
            {alt({act("awake", r.timed(p.awake_time, Dist::deterministic(p.awake_time)))},
                 "Busy_Server"),
             alt({act("receive_rpc_packet", RateGen::passive()),
                  act("ignore_rpc_packet", r.immediate())},
                 "Awaking_Server")}},
    };
    if (shutdown_when_busy) {
        // The interrupted request is simply dropped; the DPM was disabled by
        // the busy notification, so only a free-running (Trivial) DPM can
        // actually exercise these transitions.  Going back to sleep from
        // Busy/Responding re-enables the DPM on the next notify_idle cycle.
        type.behaviors[1].alternatives.push_back(
            alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server"));
        type.behaviors[2].alternatives.push_back(
            alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Server"));
    }
    type.input_interactions = {"receive_rpc_packet", "receive_shutdown"};
    type.output_interactions = {"send_result_packet", "notify_busy", "notify_idle"};
    return type;
}

/// Half-duplex radio channel; \p lossy adds the keep/lose probabilistic
/// branch of Sect. 3.1 (loss probability from \p p).
adl::ElemType radio_channel(const RateGen& r, const Params& p, bool lossy) {
    const lts::Rate propagation =
        r.timed(p.propagation_time,
                Dist::normal(p.propagation_time, p.propagation_stddev));
    adl::ElemType type;
    type.name = "Radio_Channel_Type";
    if (!lossy) {
        type.behaviors = {
            adl::BehaviorDef{"Radio_Channel", {},
                {alt({act("get_packet", RateGen::passive()),
                      act("propagate_packet", propagation),
                      act("deliver_packet", r.immediate())},
                     "Radio_Channel")}},
        };
    } else {
        type.behaviors = {
            adl::BehaviorDef{"Radio_Channel", {},
                {alt({act("get_packet", RateGen::passive())}, "Propagating_Channel")}},
            adl::BehaviorDef{"Propagating_Channel", {},
                {alt({act("propagate_packet", propagation)}, "Deciding_Channel")}},
            adl::BehaviorDef{"Deciding_Channel", {},
                {alt({act("keep_packet", r.immediate(1, 1.0 - p.loss_probability)),
                      act("deliver_packet", r.immediate())},
                     "Radio_Channel"),
                 alt({act("lose_packet", r.immediate(1, p.loss_probability))},
                     "Radio_Channel")}},
        };
    }
    type.input_interactions = {"get_packet"};
    type.output_interactions = {"deliver_packet"};
    return type;
}

/// Blocking client of Sect. 2.3 (no timeout).
adl::ElemType simplified_client(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Sync_Client_Type";
    type.behaviors = {
        adl::BehaviorDef{"Requesting_Client", {},
            {alt({act("send_rpc_packet", r.immediate())}, "Waiting_Client")}},
        adl::BehaviorDef{"Waiting_Client", {},
            {alt({act("receive_result_packet", RateGen::passive())}, "Processing_Client")}},
        adl::BehaviorDef{"Processing_Client", {},
            {alt({act("process_result_packet",
                      r.timed(p.processing_time, Dist::deterministic(p.processing_time)))},
                 "Requesting_Client")}},
    };
    type.input_interactions = {"receive_result_packet"};
    type.output_interactions = {"send_rpc_packet"};
    return type;
}

/// Client of Sect. 3.1: resend timeout, stale results discarded.
adl::ElemType revised_client(const RateGen& r, const Params& p) {
    const lts::Rate timeout =
        r.timed(p.client_timeout, Dist::deterministic(p.client_timeout));
    adl::ElemType type;
    type.name = "Sync_Client_Type";
    type.behaviors = {
        adl::BehaviorDef{"Requesting_Client", {},
            {alt({act("send_rpc_packet", r.immediate())}, "Waiting_Client"),
             alt({act("receive_result_packet", RateGen::passive()),
                  act("ignore_result_packet", r.immediate())},
                 "Requesting_Client")}},
        adl::BehaviorDef{"Waiting_Client", {},
            {alt({act("receive_result_packet", RateGen::passive())}, "Processing_Client"),
             alt({act("expire_timeout", timeout)}, "Resending_Client")}},
        adl::BehaviorDef{"Processing_Client", {},
            {alt({act("process_result_packet",
                      r.timed(p.processing_time, Dist::deterministic(p.processing_time)))},
                 "Requesting_Client"),
             alt({act("receive_result_packet", RateGen::passive()),
                  act("ignore_result_packet", r.immediate())},
                 "Processing_Client")}},
        adl::BehaviorDef{"Resending_Client", {},
            {alt({act("send_rpc_packet", r.immediate())}, "Waiting_Client"),
             alt({act("receive_result_packet", RateGen::passive())}, "Processing_Client")}},
    };
    type.input_interactions = {"receive_result_packet"};
    type.output_interactions = {"send_rpc_packet"};
    return type;
}

lts::Rate shutdown_rate(const RateGen& r, double timeout) {
    if (timeout <= 0.0) return r.immediate();
    return r.timed(timeout, Dist::deterministic(timeout));
}

/// Trivial DPM (Sect. 2.3): free-running shutdown generator.  Notification
/// inputs are declared so the same type also fits the revised architecture
/// (where it absorbs them without reacting).
adl::ElemType trivial_dpm(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"DPM_Beh", {},
            {alt({act("send_shutdown", shutdown_rate(r, p.shutdown_timeout))}, "DPM_Beh"),
             alt({act("receive_busy_notice", RateGen::passive())}, "DPM_Beh"),
             alt({act("receive_idle_notice", RateGen::passive())}, "DPM_Beh")}},
    };
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {"send_shutdown"};
    return type;
}

/// Idle-timeout DPM (Sect. 3.1 / 4.1): armed when the server reports idle,
/// cancelled when it reports busy.
adl::ElemType idle_timeout_dpm(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"Enabled_DPM", {},
            {alt({act("send_shutdown", shutdown_rate(r, p.shutdown_timeout))},
                 "Disabled_DPM"),
             alt({act("receive_busy_notice", RateGen::passive())}, "Disabled_DPM")}},
        adl::BehaviorDef{"Disabled_DPM", {},
            {alt({act("receive_idle_notice", RateGen::passive())}, "Enabled_DPM")}},
    };
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {"send_shutdown"};
    return type;
}

/// Null DPM: tracks notifications, never issues commands — the "system
/// without DPM" configuration of the performance comparisons.
adl::ElemType null_dpm() {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"Enabled_DPM", {},
            {alt({act("receive_busy_notice", RateGen::passive())}, "Disabled_DPM")}},
        adl::BehaviorDef{"Disabled_DPM", {},
            {alt({act("receive_idle_notice", RateGen::passive())}, "Enabled_DPM")}},
    };
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {};
    return type;
}

}  // namespace

Config simplified_functional() {
    Config config;
    config.phase = Phase::Functional;
    config.simplified = true;
    config.policy = DpmPolicy::Trivial;
    config.lossy_channels = false;
    return config;
}

Config revised_functional() {
    Config config;
    config.phase = Phase::Functional;
    config.simplified = false;
    config.policy = DpmPolicy::IdleTimeout;
    config.lossy_channels = true;
    return config;
}

Config markovian(double shutdown_timeout, bool dpm) {
    Config config;
    config.phase = Phase::Markovian;
    config.simplified = false;
    config.policy = dpm ? DpmPolicy::IdleTimeout : DpmPolicy::None;
    config.lossy_channels = true;
    config.params.shutdown_timeout = shutdown_timeout;
    return config;
}

Config general(double shutdown_timeout, bool dpm) {
    Config config = markovian(shutdown_timeout, dpm);
    config.phase = Phase::General;
    return config;
}

adl::ArchiType build(const Config& config) {
    const RateGen r(config.phase);
    const Params& p = config.params;

    adl::ArchiType archi;
    archi.name = config.simplified ? "RPC_DPM_Simplified" : "RPC_DPM_Revised";

    archi.elem_types.push_back(
        config.simplified ? simplified_server(r, p)
                          : revised_server(r, p, config.shutdown_when_busy));
    archi.elem_types.push_back(radio_channel(r, p, config.lossy_channels));
    archi.elem_types.push_back(config.simplified ? simplified_client(r, p)
                                                 : revised_client(r, p));
    switch (config.policy) {
        case DpmPolicy::None: archi.elem_types.push_back(null_dpm()); break;
        case DpmPolicy::Trivial: archi.elem_types.push_back(trivial_dpm(r, p)); break;
        case DpmPolicy::IdleTimeout: archi.elem_types.push_back(idle_timeout_dpm(r, p)); break;
    }

    archi.instances = {
        adl::Instance{"S", "Server_Type", {}},
        adl::Instance{"RCS", "Radio_Channel_Type", {}},
        adl::Instance{"RSC", "Radio_Channel_Type", {}},
        adl::Instance{"C", "Sync_Client_Type", {}},
        adl::Instance{"DPM", "DPM_Type", {}},
    };

    archi.attachments = {
        adl::Attachment{"C", "send_rpc_packet", "RCS", "get_packet"},
        adl::Attachment{"RCS", "deliver_packet", "S", "receive_rpc_packet"},
        adl::Attachment{"S", "send_result_packet", "RSC", "get_packet"},
        adl::Attachment{"RSC", "deliver_packet", "C", "receive_result_packet"},
    };
    if (config.policy != DpmPolicy::None) {
        archi.attachments.push_back(
            adl::Attachment{"DPM", "send_shutdown", "S", "receive_shutdown"});
    }
    if (!config.simplified) {
        archi.attachments.push_back(
            adl::Attachment{"S", "notify_busy", "DPM", "receive_busy_notice"});
        archi.attachments.push_back(
            adl::Attachment{"S", "notify_idle", "DPM", "receive_idle_notice"});
    }
    return archi;
}

adl::ComposedModel compose(const Config& config, bool record_state_names) {
    adl::ComposeOptions options;
    options.record_state_names = record_state_names;
    return adl::compose(build(config), options);
}

std::vector<std::string> high_action_labels() {
    return {"DPM.send_shutdown#S.receive_shutdown"};
}

std::vector<std::string> low_instance() { return {"C"}; }

std::vector<adl::Measure> measures() {
    std::vector<adl::Measure> out(kNumMeasures);
    out[kThroughput].name = "throughput";
    out[kThroughput].clauses = {adl::trans_reward("C", "process_result_packet", 1.0)};

    out[kWaitingProb].name = "waiting";
    out[kWaitingProb].clauses = {adl::state_reward_in("C", "Waiting_Client", 1.0)};

    out[kEnergyRate].name = "energy";
    out[kEnergyRate].clauses = {
        adl::state_reward_in("S", "Idle_Server", 2.0),
        adl::state_reward_in("S", "Busy_Server", 3.0),
        adl::state_reward_in("S", "Responding_Server", 3.0),
        adl::state_reward_in("S", "Awaking_Server", 2.0),
    };
    return out;
}

}  // namespace dpma::models::rpc
