#pragma once

/// \file rpc.hpp
/// The paper's first case study (Sect. 2.1 / Fig. 2.a): a blocking client C
/// calling a power-manageable server S through two half-duplex radio
/// channels RCS and RSC, with a dynamic power manager DPM issuing shutdown
/// commands.
///
/// Two model families are provided:
///
///  * the *simplified* system of Sect. 2.3 — ideal channels, blocking client
///    without timeout, trivial DPM, server sensitive to shutdowns in every
///    state.  It fails the noninterference check (the DPM can kill a request
///    in service and the client blocks forever), reproducing the diagnostic
///    formula of Sect. 3.1;
///
///  * the *revised* system of Sect. 3.1 — lossy channels, client with a
///    resend timeout, duplicate-discarding server, DPM disabled while the
///    server is busy (via busy/idle notifications).  It passes the check and
///    is the basis of the Markovian (Sect. 4.1) and general (Sect. 5.2)
///    performance models.

#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "models/phase.hpp"

namespace dpma::models::rpc {

/// Which DPM is plugged into the architecture.
enum class DpmPolicy {
    None,         ///< "null" DPM: absorbs notifications, never shuts down
    Trivial,      ///< issues shutdowns regardless of the server state (2.3)
    IdleTimeout,  ///< arms a shutdown timer whenever the server goes idle (4.1)
};

/// Timing parameters (milliseconds), defaults from Sect. 4.1 / 5.2.
struct Params {
    double service_time = 0.2;        ///< server result preparation
    double awake_time = 3.0;          ///< sleeping -> busy transient
    double propagation_time = 0.8;    ///< per radio channel hop
    double propagation_stddev = 0.0345;  ///< general phase: normal channel
    double loss_probability = 0.02;   ///< per hop
    double processing_time = 9.7;     ///< client-side result processing
    double client_timeout = 2.0;      ///< resend timer
    double shutdown_timeout = 10.0;   ///< DPM idle timer (swept 0..25)
};

struct Config {
    Phase phase = Phase::Functional;
    bool simplified = false;  ///< Sect. 2.3 system instead of the revised one
    DpmPolicy policy = DpmPolicy::IdleTimeout;
    bool lossy_channels = true;   ///< simplified() sets false
    /// Revised system only: make the server accept shutdowns while busy or
    /// responding too (the design choice Sect. 2.1 mentions: "depending on
    /// the application, the server may be also sensitive to shutdown
    /// commands when busy, in which case the shutdown interrupts the
    /// service").  Only observable under the Trivial policy, since the
    /// idle-timeout DPM never commands a busy server.
    bool shutdown_when_busy = false;
    Params params;
};

/// Canonical configurations used by the experiments.
[[nodiscard]] Config simplified_functional();                      // Sect. 2.3 + 3.1 (fails)
[[nodiscard]] Config revised_functional();                         // Sect. 3.1 (passes)
[[nodiscard]] Config markovian(double shutdown_timeout, bool dpm); // Sect. 4.1 / Fig. 3 left
[[nodiscard]] Config general(double shutdown_timeout, bool dpm);   // Sect. 5.2 / Fig. 3 right

/// Builds the architectural description for \p config.
[[nodiscard]] adl::ArchiType build(const Config& config);

/// Composes with names recorded (functional diagnosis) or without (solving).
[[nodiscard]] adl::ComposedModel compose(const Config& config,
                                         bool record_state_names = false);

/// The "high" actions of the noninterference check: the DPM commands that
/// change the power state of the server (Sect. 3: only these are high; the
/// busy/idle notifications are bookkeeping, not commands).
[[nodiscard]] std::vector<std::string> high_action_labels();

/// The "low" observer: every action involving the client C.
[[nodiscard]] std::vector<std::string> low_instance();

/// Indices into the measure list returned by measures().
enum MeasureIndex : std::size_t {
    kThroughput = 0,   ///< completed requests per msec
    kWaitingProb = 1,  ///< fraction of time the client waits for a result
    kEnergyRate = 2,   ///< server power (reward units per msec)
    kNumMeasures = 3,
};

/// The measure set of Sect. 4.1 (throughput, waiting, energy).  Derived
/// quantities (energy *per request*, waiting time *per request*) are ratios
/// computed by the harness, as in the paper.
[[nodiscard]] std::vector<adl::Measure> measures();

}  // namespace dpma::models::rpc
