#pragma once

/// \file streaming.hpp
/// The paper's second case study (Sect. 2.2 / Fig. 2.b): a streaming video
/// server S sending frames through an access point AP (with an internal
/// buffer) and a half-duplex radio channel RSC to a power-manageable
/// 802.11b network interface card NIC, which stores them in the client-side
/// buffer B; the non-blocking client C renders frames at a fixed rate.  The
/// DPM implements the PSP policy: it shuts the NIC down (doze mode) as soon
/// as the AP buffer becomes empty and wakes it up periodically (the *awake
/// period*, the swept parameter of Fig. 4 / Fig. 6).
///
/// Frame requests that find B empty violate the real-time constraint
/// (*miss*); frames arriving at a full buffer are dropped (*loss*, at the
/// AP or at B).  The client fetch is modelled as two mutually exclusive
/// synchronisations (B.serve_frame when non-empty, B.serve_miss when
/// empty), so the functional phase needs no priorities to express "miss
/// only when the buffer is empty".

#include <string>
#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "models/phase.hpp"

namespace dpma::models::streaming {

/// Timing parameters (milliseconds), defaults from Sect. 4.2; the general
/// phase replaces the exponential delays by deterministic ones (the paper
/// characterised them from iPAQ 3600 + Cisco Aironet 350 measurements; see
/// DESIGN.md for the substitution note) and the channel by the same Gaussian
/// model used for rpc.
struct Params {
    double service_time = 67.0;      ///< frame generation period at the server
    double propagation_time = 4.0;   ///< radio channel hop
    double propagation_stddev = 0.1725;  ///< general phase (same relative width as rpc)
    double loss_probability = 0.02;  ///< radio channel loss
    double check_time = 5.0;         ///< NIC post-wakeup synchronisation check
    double nic_wakeup_time = 15.0;   ///< doze -> awake transient
    double initial_delay = 684.0;    ///< client prebuffering delay
    double render_time = 67.0;       ///< client frame period
    double shutdown_delay = 5.0;     ///< DPM reaction to an empty AP buffer
    double awake_period = 100.0;     ///< PSP periodic wakeup (swept 0..800)
    long ap_capacity = 10;
    long b_capacity = 10;

    /// NIC power levels (reward units; Sect. 4.2 uses unitless energy).
    double power_awake = 1.0;
    double power_doze = 0.05;
    double power_waking = 1.5;
    double power_checking = 1.0;
};

struct Config {
    Phase phase = Phase::Functional;
    bool with_dpm = true;
    Params params;
};

/// Functional configuration for the noninterference check of Sect. 3.2.
/// Buffer capacities are reduced (default 3) to keep the weak-bisimulation
/// state space small; capacity does not affect the functional argument.
[[nodiscard]] Config functional(long buffer_capacity = 3);
[[nodiscard]] Config markovian(double awake_period, bool dpm);  // Sect. 4.2 / Fig. 4
[[nodiscard]] Config general(double awake_period, bool dpm);    // Sect. 5.3 / Fig. 6

[[nodiscard]] adl::ArchiType build(const Config& config);
[[nodiscard]] adl::ComposedModel compose(const Config& config,
                                         bool record_state_names = false);

/// High actions: the DPM power commands to the NIC.
[[nodiscard]] std::vector<std::string> high_action_labels();

enum MeasureIndex : std::size_t {
    kEnergyRate = 0,      ///< NIC power (reward units per msec)
    kFramesReceived = 1,  ///< frames delivered to the NIC per msec
    kApLoss = 2,          ///< frames dropped at the AP buffer per msec
    kBLoss = 3,           ///< frames dropped at the client buffer per msec
    kMiss = 4,            ///< real-time violations per msec
    kHits = 5,            ///< frames delivered to the renderer in time per msec
    kGenerated = 6,       ///< frames produced by the server per msec
    kNumMeasures = 7,
};

/// The four metrics of Sect. 4.2 are derived from these primitive measures:
/// energy per frame = energy / frames received; loss = (AP + B drops) /
/// generated; miss = misses / (misses + hits); quality = hits / (misses +
/// hits).
[[nodiscard]] std::vector<adl::Measure> measures();

}  // namespace dpma::models::streaming
