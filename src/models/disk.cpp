#include "models/disk.hpp"

#include "core/error.hpp"
#include "models/builder.hpp"

namespace dpma::models::disk {
namespace {

/// Bursty ON/OFF request source.  Requests are fire-and-forget (the queue
/// always accepts, dropping on overflow), so the source never blocks.
adl::ElemType source(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Source_Type";
    type.behaviors = {
        adl::BehaviorDef{"Bursting_Source", {},
            {alt({act("interarrival",
                      r.timed(p.burst_interarrival,
                              Dist::deterministic(p.burst_interarrival))),
                  act("issue_request", r.immediate())},
                 "Bursting_Source"),
             alt({act("end_burst", r.exponential(p.burst_length))}, "Quiet_Source")}},
        adl::BehaviorDef{"Quiet_Source", {},
            {alt({act("begin_burst", r.exponential(p.quiet_length))},
                 "Bursting_Source")}},
    };
    type.input_interactions = {};
    type.output_interactions = {"issue_request"};
    return type;
}

/// Finite request queue: accepts always (drops when full), hands requests
/// to the disk on demand.
adl::ElemType queue(const RateGen& r) {
    adl::ElemType type;
    type.name = "Queue_Type";
    adl::BehaviorDef buffer{"Queue", {"n", "cap"}, {}};
    const auto n = [] { return pvar(0, "n"); };
    const auto cap = [] { return pvar(1, "cap"); };
    buffer.alternatives.push_back(
        alt({act("enqueue", RateGen::passive())}, "Queue",
            {plus(n(), lit(1)), cap()}, cmp_lt(n(), cap())));
    buffer.alternatives.push_back(
        alt({act("enqueue", RateGen::passive()),
             act("drop_request", r.immediate())},
            "Queue", {n(), cap()}, cmp_eq(n(), cap())));
    buffer.alternatives.push_back(
        alt({act("dequeue", RateGen::passive())}, "Queue",
            {minus(n(), lit(1)), cap()}, cmp_gt(n(), lit(0))));
    type.behaviors = {std::move(buffer)};
    type.input_interactions = {"enqueue", "dequeue"};
    type.output_interactions = {};
    return type;
}

/// The power-managed disk.  Pulls work eagerly while active; notifies the
/// DPM about idle/busy transitions; accepts shutdowns only when idle (the
/// lesson of the paper's Sect. 3.1).
adl::ElemType drive(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "Disk_Type";
    type.behaviors = {
        adl::BehaviorDef{"Idle_Disk", {},
            {alt({act("pull_request", r.immediate()),
                  act("notify_busy", r.immediate())},
                 "Active_Disk"),
             alt({act("receive_shutdown", RateGen::passive())}, "Sleeping_Disk")}},
        adl::BehaviorDef{"Active_Disk", {},
            {alt({act("serve_request",
                      r.timed(p.service_time, Dist::deterministic(p.service_time))),
                  act("complete_request", r.immediate()),
                  act("notify_idle", r.immediate())},
                 "Idle_Disk")}},
        // A queued request wakes the sleeping disk (wake-on-demand); no busy
        // notification on this path — the DPM was already disabled by its
        // own shutdown, exactly as in the rpc server of Sect. 3.1.
        adl::BehaviorDef{"Sleeping_Disk", {},
            {alt({act("pull_request", r.immediate())}, "Waking_Disk")}},
        adl::BehaviorDef{"Waking_Disk", {},
            {alt({act("spin_up",
                      r.timed(p.wakeup_time, Dist::deterministic(p.wakeup_time)))},
                 "Active_Disk")}},
    };
    type.input_interactions = {"receive_shutdown"};
    type.output_interactions = {"pull_request", "complete_request", "notify_busy",
                                "notify_idle"};
    return type;
}

/// Completion observer (the functional check's low side).
adl::ElemType sink() {
    adl::ElemType type;
    type.name = "Sink_Type";
    type.behaviors = {
        adl::BehaviorDef{"Sink", {},
            {alt({act("observe_completion", RateGen::passive())}, "Sink")}},
    };
    type.input_interactions = {"observe_completion"};
    type.output_interactions = {};
    return type;
}

lts::Rate timeout_rate(const RateGen& r, double timeout) {
    if (timeout <= 0.0) return r.immediate();
    return r.timed(timeout, Dist::deterministic(timeout));
}

adl::ElemType idle_timeout_dpm(const RateGen& r, const Params& p) {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"Enabled_DPM", {},
            {alt({act("send_shutdown", timeout_rate(r, p.shutdown_timeout))},
                 "Disabled_DPM"),
             alt({act("receive_busy_notice", RateGen::passive())}, "Disabled_DPM")}},
        adl::BehaviorDef{"Disabled_DPM", {},
            {alt({act("receive_idle_notice", RateGen::passive())}, "Enabled_DPM")}},
    };
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {"send_shutdown"};
    return type;
}

adl::ElemType null_dpm() {
    adl::ElemType type;
    type.name = "DPM_Type";
    type.behaviors = {
        adl::BehaviorDef{"Enabled_DPM", {},
            {alt({act("receive_busy_notice", RateGen::passive())}, "Disabled_DPM")}},
        adl::BehaviorDef{"Disabled_DPM", {},
            {alt({act("receive_idle_notice", RateGen::passive())}, "Enabled_DPM")}},
    };
    type.input_interactions = {"receive_busy_notice", "receive_idle_notice"};
    type.output_interactions = {};
    return type;
}

}  // namespace

Config functional(bool dpm) {
    Config config;
    config.phase = Phase::Functional;
    config.with_dpm = dpm;
    config.params.queue_capacity = 3;  // keep the weak-bisim check small
    return config;
}

Config markovian(double shutdown_timeout, bool dpm) {
    Config config;
    config.phase = Phase::Markovian;
    config.with_dpm = dpm;
    config.params.shutdown_timeout = shutdown_timeout;
    return config;
}

Config general(double shutdown_timeout, bool dpm) {
    Config config = markovian(shutdown_timeout, dpm);
    config.phase = Phase::General;
    return config;
}

adl::ArchiType build(const Config& config) {
    const RateGen r(config.phase);
    const Params& p = config.params;
    DPMA_REQUIRE(p.queue_capacity >= 1, "queue capacity must be >= 1");
    DPMA_REQUIRE(p.power_idle > p.power_sleep,
                 "sleeping must consume less than idling");

    adl::ArchiType archi;
    archi.name = "Disk_DPM";
    archi.elem_types = {source(r, p), queue(r), drive(r, p), sink(),
                        config.with_dpm ? idle_timeout_dpm(r, p) : null_dpm()};
    archi.instances = {
        adl::Instance{"SRC", "Source_Type", {}},
        adl::Instance{"Q", "Queue_Type", {0, p.queue_capacity}},
        adl::Instance{"D", "Disk_Type", {}},
        adl::Instance{"SINK", "Sink_Type", {}},
        adl::Instance{"DPM", "DPM_Type", {}},
    };
    archi.attachments = {
        adl::Attachment{"SRC", "issue_request", "Q", "enqueue"},
        adl::Attachment{"D", "pull_request", "Q", "dequeue"},
        adl::Attachment{"D", "complete_request", "SINK", "observe_completion"},
        adl::Attachment{"D", "notify_busy", "DPM", "receive_busy_notice"},
        adl::Attachment{"D", "notify_idle", "DPM", "receive_idle_notice"},
    };
    if (config.with_dpm) {
        archi.attachments.push_back(
            adl::Attachment{"DPM", "send_shutdown", "D", "receive_shutdown"});
    }
    return archi;
}

adl::ComposedModel compose(const Config& config, bool record_state_names) {
    adl::ComposeOptions options;
    options.record_state_names = record_state_names;
    return adl::compose(build(config), options);
}

std::vector<std::string> high_action_labels() {
    return {"DPM.send_shutdown#D.receive_shutdown"};
}

std::vector<adl::Measure> measures(const Params& params) {
    std::vector<adl::Measure> out(kNumMeasures);
    out[kPower].name = "disk_power";
    out[kPower].clauses = {
        adl::state_reward_in("D", "Active_Disk", params.power_active),
        adl::state_reward_in("D", "Idle_Disk", params.power_idle),
        adl::state_reward_in("D", "Sleeping_Disk", params.power_sleep),
        adl::state_reward_in("D", "Waking_Disk", params.power_wakeup),
    };
    out[kCompleted].name = "completed";
    out[kCompleted].clauses = {adl::trans_reward("D", "complete_request", 1.0)};
    out[kDropped].name = "dropped";
    out[kDropped].clauses = {adl::trans_reward("Q", "drop_request", 1.0)};
    out[kIssued].name = "issued";
    out[kIssued].clauses = {adl::trans_reward("SRC", "issue_request", 1.0)};
    out[kQueueLength].name = "queue_length";
    for (long k = 1; k <= params.queue_capacity; ++k) {
        out[kQueueLength].clauses.push_back(adl::state_reward_in(
            "Q", "Queue(" + std::to_string(k) + ",", static_cast<double>(k)));
    }
    return out;
}

}  // namespace dpma::models::disk
