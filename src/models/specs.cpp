#include "models/specs.hpp"

#include "models/specs_data.hpp"

namespace dpma::models {

std::string_view rpc_untimed_spec() { return specs_detail::kRpcUntimed; }

std::string_view rpc_revised_markov_spec() { return specs_detail::kRpcRevisedMarkov; }

std::string_view streaming_markov_spec() { return specs_detail::kStreamingMarkov; }

std::string_view rpc_general_spec() { return specs_detail::kRpcGeneral; }

std::string_view disk_markov_spec() { return specs_detail::kDiskMarkov; }

std::string_view rpc_measures_spec() { return specs_detail::kRpcMeasures; }

}  // namespace dpma::models
