#pragma once

/// \file disk.hpp
/// A third case study (ours, not from the paper): the canonical
/// power-manageable *disk drive* of the DPM literature the paper builds on
/// (Benini, Bogliolo, De Micheli, "A Survey of Design Techniques for
/// System-Level Dynamic Power Management" — the paper's reference [1]).
///
/// Topology:
///
///     SRC --request--> Q --pull--> D(isk) --complete--> SINK
///                                   ^ shutdown / notifications
///                                  DPM
///
///  * SRC is a bursty ON/OFF source (Markov-modulated arrivals): during a
///    burst it issues requests with a short interarrival time, then goes
///    quiet for a long OFF period — the workload shape that makes timeout
///    DPM policies worthwhile;
///  * Q is a finite queue (drops on overflow);
///  * D serves queued requests and has the classic four power states
///    Active / Idle / Sleep / WakingUp with disk-like power levels;
///  * the DPM arms a shutdown timer when the disk goes idle (the same
///    idle-timeout policy as the paper's rpc study);
///  * SINK observes completions (the "low" observer of the functional
///    check).
///
/// The interesting control question is the *break-even time*: sleeping is
/// only profitable when the idle period exceeds
///     T_be = E_transition / (P_idle - P_sleep),
/// and the classical competitive-analysis result says the timeout policy
/// with timeout = T_be uses at most twice the energy of the clairvoyant
/// policy.  bench_disk_breakeven sweeps the timeout and locates the
/// numerically optimal value next to T_be.

#include <vector>

#include "adl/compose.hpp"
#include "adl/measure.hpp"
#include "adl/model.hpp"
#include "models/phase.hpp"

namespace dpma::models::disk {

/// Timing in milliseconds; power in watts (IBM Travelstar-like levels, the
/// standard parameterisation of the DPM literature).
struct Params {
    double burst_interarrival = 20.0;  ///< mean gap between requests in a burst
    double burst_length = 100.0;       ///< mean ON duration
    /// Mean OFF duration.  Must sit well above the break-even time
    /// (~4.4 s with the default power levels) for sleeping to pay off —
    /// bench_disk_breakeven sweeps it across the crossover.
    double quiet_length = 20000.0;
    double service_time = 12.0;        ///< disk access
    double wakeup_time = 1600.0;       ///< sleep -> active transient
    double shutdown_timeout = 500.0;   ///< DPM idle timer (swept)
    long queue_capacity = 8;

    double power_active = 2.5;
    double power_idle = 0.9;
    double power_sleep = 0.13;
    double power_wakeup = 3.0;

    /// Classical break-even time: the sleep period must at least amortise
    /// the wake-up transient's extra energy over staying idle.
    [[nodiscard]] double break_even_time() const {
        return wakeup_time * (power_wakeup - power_idle) /
               (power_idle - power_sleep);
    }
};

struct Config {
    Phase phase = Phase::Markovian;
    bool with_dpm = true;
    Params params;
};

[[nodiscard]] Config functional(bool dpm = true);
[[nodiscard]] Config markovian(double shutdown_timeout, bool dpm);
[[nodiscard]] Config general(double shutdown_timeout, bool dpm);

[[nodiscard]] adl::ArchiType build(const Config& config);
[[nodiscard]] adl::ComposedModel compose(const Config& config,
                                         bool record_state_names = false);

/// High actions of the functional check (the DPM command).
[[nodiscard]] std::vector<std::string> high_action_labels();

enum MeasureIndex : std::size_t {
    kPower = 0,          ///< disk power (W)
    kCompleted = 1,      ///< requests served per msec
    kDropped = 2,        ///< requests dropped at the full queue per msec
    kIssued = 3,         ///< requests issued per msec
    kQueueLength = 4,    ///< mean queue occupancy
    kNumMeasures = 5,
};

[[nodiscard]] std::vector<adl::Measure> measures(const Params& params);

}  // namespace dpma::models::disk
