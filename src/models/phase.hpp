#pragma once

/// \file phase.hpp
/// The three modelling phases of the paper's incremental methodology and a
/// small helper that maps an activity's nominal timing onto the rate kind of
/// the current phase:
///
///  * Functional — no timing at all (RateUnspecified); used for the
///    noninterference check;
///  * Markovian  — every timed activity is exponential with the given mean;
///  * General    — every timed activity uses the supplied general
///    distribution (deterministic / normal / ...).
///
/// Immediate actions keep their priorities and weights in the timed phases
/// and degrade to plain nondeterminism in the functional phase.

#include "core/dist.hpp"
#include "lts/rate.hpp"

namespace dpma::models {

enum class Phase { Functional, Markovian, General };

/// Rate factory for one phase.
class RateGen {
public:
    explicit RateGen(Phase phase) : phase_(phase) {}

    [[nodiscard]] Phase phase() const noexcept { return phase_; }

    /// A timed activity: exponential with mean \p mean in the Markovian
    /// phase, \p general in the general phase.
    [[nodiscard]] lts::Rate timed(double mean, const Dist& general) const {
        switch (phase_) {
            case Phase::Functional: return lts::RateUnspecified{};
            case Phase::Markovian: return lts::RateExp{1.0 / mean};
            case Phase::General: return lts::RateGeneral{general};
        }
        throw Error("unknown phase");
    }

    /// A timed activity that stays exponential even in the general phase.
    [[nodiscard]] lts::Rate exponential(double mean) const {
        return timed(mean, Dist::exponential(1.0 / mean));
    }

    /// A timed activity that becomes deterministic in the general phase.
    [[nodiscard]] lts::Rate deterministic(double mean) const {
        return timed(mean, Dist::deterministic(mean));
    }

    /// An immediate action (zero duration).
    [[nodiscard]] lts::Rate immediate(int priority = 1, double weight = 1.0) const {
        if (phase_ == Phase::Functional) return lts::RateUnspecified{};
        return lts::RateImmediate{priority, weight};
    }

    /// A passive (reactive) action; phase independent.
    [[nodiscard]] static lts::Rate passive() { return lts::RatePassive{}; }

private:
    Phase phase_;
};

}  // namespace dpma::models
