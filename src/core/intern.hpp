#pragma once

/// \file intern.hpp
/// String interning used for action labels, behaviour names and instance
/// names.  Interned ids are dense 32-bit integers, so hot analysis loops
/// (partition refinement, state-space exploration) compare and hash integers
/// instead of strings.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/error.hpp"

namespace dpma {

/// Identifier of an interned string.  Dense, starting at 0, stable for the
/// lifetime of the owning StringInterner.
using Symbol = std::uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

/// A bidirectional string <-> dense-id table.
///
/// Not thread-safe; each analysis pipeline owns its interners.
class StringInterner {
public:
    StringInterner() = default;

    /// Returns the id of \p text, inserting it if not present.
    Symbol intern(std::string_view text);

    /// Returns the id of \p text or kNoSymbol when it was never interned.
    [[nodiscard]] Symbol find(std::string_view text) const noexcept;

    /// Returns the text of an interned id.  Throws on out-of-range ids.
    [[nodiscard]] const std::string& text(Symbol id) const;

    [[nodiscard]] std::size_t size() const noexcept { return texts_.size(); }

private:
    // std::deque: element addresses are stable under push_back, so the
    // string_view keys in index_ remain valid as the table grows.
    std::deque<std::string> texts_;
    std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace dpma
