#include "core/dist.hpp"

#include <cmath>

#include "core/text.hpp"

namespace dpma {

Dist Dist::exponential(double rate) {
    DPMA_REQUIRE(rate > 0.0, "exponential rate must be positive");
    return {DistKind::Exponential, rate, 0.0, 0};
}

Dist Dist::deterministic(double value) {
    DPMA_REQUIRE(value >= 0.0, "deterministic delay must be non-negative");
    return {DistKind::Deterministic, value, 0.0, 0};
}

Dist Dist::uniform(double low, double high) {
    DPMA_REQUIRE(low >= 0.0 && high >= low, "uniform needs 0 <= low <= high");
    return {DistKind::Uniform, low, high, 0};
}

Dist Dist::normal(double mean, double stddev) {
    DPMA_REQUIRE(mean > 0.0, "normal delay mean must be positive");
    DPMA_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
    return {DistKind::Normal, mean, stddev, 0};
}

Dist Dist::erlang(int phases, double rate) {
    DPMA_REQUIRE(phases >= 1, "Erlang needs at least one phase");
    DPMA_REQUIRE(rate > 0.0, "Erlang rate must be positive");
    return {DistKind::Erlang, rate, 0.0, phases};
}

Dist Dist::weibull(double shape, double scale) {
    DPMA_REQUIRE(shape > 0.0 && scale > 0.0, "Weibull parameters must be positive");
    return {DistKind::Weibull, shape, scale, 0};
}

Dist Dist::lognormal(double mu, double sigma) {
    DPMA_REQUIRE(sigma >= 0.0, "lognormal sigma must be non-negative");
    return {DistKind::LogNormal, mu, sigma, 0};
}

double Dist::mean() const {
    switch (kind_) {
        case DistKind::Exponential: return 1.0 / a_;
        case DistKind::Deterministic: return a_;
        case DistKind::Uniform: return 0.5 * (a_ + b_);
        case DistKind::Normal: return a_;
        case DistKind::Erlang: return static_cast<double>(phases_) / a_;
        case DistKind::Weibull: return b_ * std::tgamma(1.0 + 1.0 / a_);
        case DistKind::LogNormal: return std::exp(a_ + 0.5 * b_ * b_);
    }
    throw Error("unknown distribution kind");
}

std::string Dist::to_string() const {
    switch (kind_) {
        case DistKind::Exponential: return "exp(" + format_fixed(a_, 6) + ")";
        case DistKind::Deterministic: return "det(" + format_fixed(a_, 6) + ")";
        case DistKind::Uniform:
            return "unif(" + format_fixed(a_, 6) + ", " + format_fixed(b_, 6) + ")";
        case DistKind::Normal:
            return "norm(" + format_fixed(a_, 6) + ", " + format_fixed(b_, 6) + ")";
        case DistKind::Erlang:
            return "erlang(" + std::to_string(phases_) + ", " + format_fixed(a_, 6) + ")";
        case DistKind::Weibull:
            return "weibull(" + format_fixed(a_, 6) + ", " + format_fixed(b_, 6) + ")";
        case DistKind::LogNormal:
            return "lognorm(" + format_fixed(a_, 6) + ", " + format_fixed(b_, 6) + ")";
    }
    throw Error("unknown distribution kind");
}

}  // namespace dpma
