#pragma once

/// \file stats_math.hpp
/// Small numerical helpers: compensated summation, running moments and
/// Student-t quantiles for confidence intervals.

#include <cmath>
#include <cstddef>
#include <vector>

namespace dpma {

/// Kahan–Babuška compensated accumulator.  Used wherever long reward sums are
/// accumulated (steady-state rewards, simulation time averages).
class KahanSum {
public:
    void add(double value) noexcept {
        const double t = sum_ + value;
        if (std::abs(sum_) >= std::abs(value)) {
            comp_ += (sum_ - t) + value;
        } else {
            comp_ += (value - t) + sum_;
        }
        sum_ = t;
    }

    [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

    void reset() noexcept { sum_ = comp_ = 0.0; }

private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/// Welford running mean/variance accumulator.
class RunningMoments {
public:
    void add(double value) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance (0 when fewer than two samples).
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/// Two-sided Student-t critical value t_{df, (1+confidence)/2}.
///
/// \param df          degrees of freedom (>= 1)
/// \param confidence  e.g. 0.90 or 0.95
///
/// Exact for the tabulated confidence levels {0.90, 0.95, 0.99} via a
/// Cornish–Fisher style inversion of the t CDF computed numerically; accurate
/// to ~1e-6, which is far below the statistical noise it is used to bound.
[[nodiscard]] double student_t_critical(std::size_t df, double confidence);

/// Half-width of the two-sided CI for the mean of \p samples.
[[nodiscard]] double confidence_half_width(const std::vector<double>& samples,
                                           double confidence);

/// Mean of \p samples (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& samples);

}  // namespace dpma
