#pragma once

/// \file dist.hpp
/// Value-type description of a probability distribution for activity
/// durations.  The description lives in core because it is shared by the
/// model layer (Æmilia rate annotations), the Markovian layer (which accepts
/// only Exponential) and the simulation layer (which samples all of them).

#include <string>

#include "core/error.hpp"

namespace dpma {

/// Family of a duration distribution.
enum class DistKind {
    Exponential,   ///< rate lambda          (mean 1/lambda)
    Deterministic, ///< constant value       (mean value)
    Uniform,       ///< on [low, high]
    Normal,        ///< truncated at 0; mean/stddev of the untruncated normal
    Erlang,        ///< k phases of rate lambda (mean k/lambda)
    Weibull,       ///< shape k, scale lambda
    LogNormal,     ///< location mu, scale sigma of the underlying normal
};

/// Immutable distribution description.  Construct through the named factory
/// functions, which validate parameters.
class Dist {
public:
    [[nodiscard]] static Dist exponential(double rate);
    [[nodiscard]] static Dist deterministic(double value);
    [[nodiscard]] static Dist uniform(double low, double high);
    /// Normal truncated below at zero (resampled); \p mean / \p stddev refer
    /// to the untruncated distribution, as is conventional for delay models
    /// whose stddev is small relative to the mean.
    [[nodiscard]] static Dist normal(double mean, double stddev);
    [[nodiscard]] static Dist erlang(int phases, double rate);
    [[nodiscard]] static Dist weibull(double shape, double scale);
    [[nodiscard]] static Dist lognormal(double mu, double sigma);

    [[nodiscard]] DistKind kind() const noexcept { return kind_; }
    [[nodiscard]] double a() const noexcept { return a_; }
    [[nodiscard]] double b() const noexcept { return b_; }
    [[nodiscard]] int phases() const noexcept { return phases_; }

    /// Analytic mean of the distribution (for the truncated normal this is
    /// the untruncated mean, consistent with the small-stddev use case).
    [[nodiscard]] double mean() const;

    /// Human-readable form, e.g. "exp(0.5)" or "norm(0.8, 0.0345)".
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Dist& lhs, const Dist& rhs) noexcept = default;

private:
    Dist(DistKind kind, double a, double b, int phases) noexcept
        : kind_(kind), a_(a), b_(b), phases_(phases) {}

    DistKind kind_;
    double a_;
    double b_;
    int phases_;
};

}  // namespace dpma
