#pragma once

/// \file source.hpp
/// Source positions for everything that originates in a textual Æmilia or
/// measure file.  Models built programmatically (dpma::models) leave the
/// default-constructed "unknown" location; the parser (dpma::aemilia) fills
/// them in, and the semantic linter (dpma::analysis) threads them into every
/// diagnostic it emits.

#include <string>

namespace dpma {

/// A 1-based (line, column) position; line 0 means "unknown" (programmatic
/// model, no concrete syntax behind the node).
struct SourceLoc {
    int line = 0;
    int column = 0;

    [[nodiscard]] bool known() const noexcept { return line > 0; }

    friend bool operator==(const SourceLoc&, const SourceLoc&) noexcept = default;
};

/// "line:column", or "?" when the location is unknown.
[[nodiscard]] inline std::string to_string(const SourceLoc& loc) {
    if (!loc.known()) return "?";
    return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace dpma
