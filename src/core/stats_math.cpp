#include "core/stats_math.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dpma {
namespace {

/// Regularised incomplete beta function I_x(a, b) via the continued-fraction
/// expansion (Lentz's algorithm), as in Numerical Recipes.  Used to evaluate
/// the Student-t CDF.
double beta_continued_fraction(double a, double b, double x) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3e-14;
    constexpr double kFpMin = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < kFpMin) d = kFpMin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::abs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::abs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < kEps) break;
    }
    return h;
}

/// std::lgamma stores the sign in the global `signgam` on glibc, a data race
/// when replications estimate confidence intervals concurrently; lgamma_r
/// keeps the sign local.  The argument is always positive here anyway.
double log_gamma(double x) {
#if defined(__GLIBC__)
    int sign = 0;
    return lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

double incomplete_beta(double a, double b, double x) {
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                            a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * beta_continued_fraction(a, b, x) / a;
    }
    return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

/// CDF of Student's t with df degrees of freedom.
double student_t_cdf(double t, double df) {
    const double x = df / (df + t * t);
    const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    return t > 0.0 ? 1.0 - p : p;
}

}  // namespace

void RunningMoments::add(double value) noexcept {
    ++n_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (value - mean_);
}

double RunningMoments::variance() const noexcept {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

double student_t_critical(std::size_t df, double confidence) {
    DPMA_REQUIRE(df >= 1, "t distribution needs df >= 1");
    DPMA_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must lie in (0, 1)");
    const double target = 0.5 + confidence / 2.0;
    // Bisection on the CDF; the quantile of interest is comfortably in
    // (0, 700) even for df = 1 and confidence = 0.999.
    double lo = 0.0;
    double hi = 700.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (student_t_cdf(mid, static_cast<double>(df)) < target) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

double confidence_half_width(const std::vector<double>& samples,
                             double confidence) {
    if (samples.size() < 2) return 0.0;
    RunningMoments moments;
    for (double s : samples) moments.add(s);
    const double t = student_t_critical(samples.size() - 1, confidence);
    return t * moments.stddev() / std::sqrt(static_cast<double>(samples.size()));
}

double mean_of(const std::vector<double>& samples) {
    if (samples.empty()) return 0.0;
    KahanSum sum;
    for (double s : samples) sum.add(s);
    return sum.value() / static_cast<double>(samples.size());
}

}  // namespace dpma
