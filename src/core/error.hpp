#pragma once

/// \file error.hpp
/// Error handling primitives shared by every dpma module.
///
/// All recoverable failures in the library are reported by throwing
/// dpma::Error (or a subclass).  Programming mistakes caught at run time
/// (broken invariants) use DPMA_ASSERT, which also throws so that tests can
/// observe them deterministically.

#include <stdexcept>
#include <string>

namespace dpma {

/// Base class of every exception thrown by the dpma library.
class Error : public std::runtime_error {
public:
    explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when a model is structurally ill-formed (dangling attachment,
/// unknown behaviour, two active parties in a synchronisation, ...).
/// When the model came from a textual specification the 1-based line/column
/// of the offending construct is attached; programmatic models leave them 0.
class ModelError : public Error {
public:
    explicit ModelError(std::string message, int line = 0, int column = 0)
        : Error(std::move(message)), line_(line), column_(column) {}

    /// 1-based line of the offending construct; 0 when unknown.
    [[nodiscard]] int line() const noexcept { return line_; }
    /// 1-based column of the offending construct; 0 when unknown.
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    int line_ = 0;
    int column_ = 0;
};

/// Thrown when parsing an Æmilia specification or a measure definition fails.
/// Carries 1-based line/column of the offending token.
class ParseError : public Error {
public:
    ParseError(std::string message, int line, int column)
        : Error(std::move(message)), line_(line), column_(column) {}

    [[nodiscard]] int line() const noexcept { return line_; }
    [[nodiscard]] int column() const noexcept { return column_; }

private:
    int line_;
    int column_;
};

/// Thrown when a numerical routine cannot deliver a result (singular chain,
/// iteration limit exceeded, immediate-action cycle, ...).
class NumericalError : public Error {
public:
    using Error::Error;
};

namespace detail {
[[noreturn]] void assert_failed(const char* expr, const char* file, int line,
                                const std::string& message);
}  // namespace detail

}  // namespace dpma

/// Invariant check that throws dpma::Error on failure (enabled in all builds:
/// model analysis is not a hot inner loop and tests rely on the throws).
#define DPMA_ASSERT(expr, message)                                              \
    do {                                                                        \
        if (!(expr)) {                                                          \
            ::dpma::detail::assert_failed(#expr, __FILE__, __LINE__, (message)); \
        }                                                                       \
    } while (false)

/// Precondition check for public API entry points.
#define DPMA_REQUIRE(expr, message)                                             \
    do {                                                                        \
        if (!(expr)) {                                                          \
            throw ::dpma::Error(std::string("precondition violated: ") + (message)); \
        }                                                                       \
    } while (false)
