#include "core/error.hpp"

#include <sstream>

namespace dpma::detail {

void assert_failed(const char* expr, const char* file, int line,
                   const std::string& message) {
    std::ostringstream out;
    out << "internal invariant violated: " << message << " [" << expr << " at "
        << file << ':' << line << ']';
    throw Error(out.str());
}

}  // namespace dpma::detail
