#pragma once

/// \file text.hpp
/// Minimal text utilities shared by the parser and the report printers.

#include <string>
#include <string_view>
#include <vector>

namespace dpma {

/// Strips leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Splits on \p separator, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char separator);

/// Joins \p parts with \p separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Fixed-point formatting with \p digits decimals (locale independent).
[[nodiscard]] std::string format_fixed(double value, int digits);

/// True when \p text starts with \p prefix.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

}  // namespace dpma
