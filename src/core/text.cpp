#include "core/text.hpp"

#include <cctype>
#include <sstream>

namespace dpma {

std::string_view trim(std::string_view text) noexcept {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == separator) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += separator;
        out += parts[i];
    }
    return out;
}

std::string format_fixed(double value, int digits) {
    std::ostringstream out;
    out.imbue(std::locale::classic());
    out.setf(std::ios::fixed);
    out.precision(digits);
    out << value;
    return out.str();
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace dpma
