#include "core/intern.hpp"

namespace dpma {

Symbol StringInterner::intern(std::string_view text) {
    if (auto it = index_.find(text); it != index_.end()) {
        return it->second;
    }
    DPMA_REQUIRE(texts_.size() < kNoSymbol, "interner overflow");
    const auto id = static_cast<Symbol>(texts_.size());
    const std::string& stored = texts_.emplace_back(text);
    index_.emplace(std::string_view(stored), id);
    return id;
}

Symbol StringInterner::find(std::string_view text) const noexcept {
    auto it = index_.find(text);
    return it == index_.end() ? kNoSymbol : it->second;
}

const std::string& StringInterner::text(Symbol id) const {
    DPMA_REQUIRE(id < texts_.size(), "symbol id out of range");
    return texts_[id];
}

}  // namespace dpma
