#include <gtest/gtest.h>

#include "adl/compose.hpp"
#include "aemilia/lexer.hpp"
#include "aemilia/parser.hpp"
#include "bisim/equivalence.hpp"
#include "core/error.hpp"
#include "models/rpc.hpp"

namespace dpma::aemilia {
namespace {

/// The simplified rpc specification of Sect. 2.3, verbatim from the paper
/// (modulo whitespace).
constexpr const char* kRpcUntimed = R"(
ARCHI_TYPE RPC_DPM_Untimed(void)

ARCHI_ELEM_TYPES

ELEM_TYPE Server_Type(void)
  BEHAVIOR
    Idle_Server(void; void) = choice {
      <receive_rpc_packet, _> . Busy_Server(),
      <receive_shutdown, _> . Sleeping_Server()
    };
    Busy_Server(void; void) = choice {
      <prepare_result_packet, _> . Responding_Server(),
      <receive_shutdown, _> . Sleeping_Server()
    };
    Responding_Server(void; void) = choice {
      <send_result_packet, _> . Idle_Server(),
      <receive_shutdown, _> . Sleeping_Server()
    };
    Sleeping_Server(void; void) =
      <receive_rpc_packet, _> . Awaking_Server();
    Awaking_Server(void; void) =
      <awake, _> . Busy_Server()
  INPUT_INTERACTIONS UNI receive_rpc_packet; receive_shutdown
  OUTPUT_INTERACTIONS UNI send_result_packet

ELEM_TYPE Radio_Channel_Type(void)
  BEHAVIOR
    Radio_Channel(void; void) =
      <get_packet, _> . <propagate_packet, _> . <deliver_packet, _> . Radio_Channel()
  INPUT_INTERACTIONS UNI get_packet
  OUTPUT_INTERACTIONS UNI deliver_packet

ELEM_TYPE Sync_Client_Type(void)
  BEHAVIOR
    Sync_Client(void; void) =
      <send_rpc_packet, _> . <receive_result_packet, _> .
      <process_result_packet, _> . Sync_Client()
  INPUT_INTERACTIONS UNI receive_result_packet
  OUTPUT_INTERACTIONS UNI send_rpc_packet

ELEM_TYPE DPM_Type(void)
  BEHAVIOR
    DPM_Beh(void; void) = <send_shutdown, _> . DPM_Beh()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS UNI send_shutdown

ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    S : Server_Type();
    RCS : Radio_Channel_Type();
    RSC : Radio_Channel_Type();
    C : Sync_Client_Type();
    DPM : DPM_Type()
  ARCHI_ATTACHMENTS
    FROM C.send_rpc_packet TO RCS.get_packet;
    FROM RCS.deliver_packet TO S.receive_rpc_packet;
    FROM S.send_result_packet TO RSC.get_packet;
    FROM RSC.deliver_packet TO C.receive_result_packet;
    FROM DPM.send_shutdown TO S.receive_shutdown
END
)";

TEST(Lexer, TokenizesPunctuationAndIdentifiers) {
    const auto tokens = tokenize("<a, _> . B_1()");
    ASSERT_EQ(tokens.size(), 10u);  // < a , _ > . B_1 ( ) EOF
    EXPECT_EQ(tokens[0].kind, TokenKind::Less);
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[3].kind, TokenKind::Underscore);
    EXPECT_EQ(tokens[6].text, "B_1");
    EXPECT_EQ(tokens.back().kind, TokenKind::EndOfInput);
}

TEST(Lexer, TracksLineAndColumn) {
    const auto tokens = tokenize("a\n  b");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, LexesNumbersWithDecimals) {
    const auto tokens = tokenize("exp(0.25)");
    EXPECT_EQ(tokens[2].kind, TokenKind::Number);
    EXPECT_EQ(tokens[2].text, "0.25");
}

TEST(Lexer, SkipsLineComments) {
    const auto tokens = tokenize("a // comment , with . stuff\nb");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, TwoCharOperators) {
    const auto tokens = tokenize("-> == != <= >= && ||");
    EXPECT_EQ(tokens[0].kind, TokenKind::Arrow);
    EXPECT_EQ(tokens[1].kind, TokenKind::EqEq);
    EXPECT_EQ(tokens[2].kind, TokenKind::NotEq);
    EXPECT_EQ(tokens[3].kind, TokenKind::LessEq);
    EXPECT_EQ(tokens[4].kind, TokenKind::GreaterEq);
    EXPECT_EQ(tokens[5].kind, TokenKind::AndAnd);
    EXPECT_EQ(tokens[6].kind, TokenKind::OrOr);
}

TEST(Lexer, RejectsUnknownCharacters) {
    EXPECT_THROW((void)tokenize("a @ b"), ParseError);
}

TEST(Parser, ParsesThePaperRpcSpecification) {
    const adl::ArchiType archi = parse_archi_type(kRpcUntimed);
    EXPECT_EQ(archi.name, "RPC_DPM_Untimed");
    EXPECT_EQ(archi.elem_types.size(), 4u);
    EXPECT_EQ(archi.instances.size(), 5u);
    EXPECT_EQ(archi.attachments.size(), 5u);
    const adl::ElemType* server = archi.find_type("Server_Type");
    ASSERT_NE(server, nullptr);
    EXPECT_EQ(server->behaviors.size(), 5u);
    EXPECT_EQ(server->input_interactions.size(), 2u);
    EXPECT_EQ(server->output_interactions.size(), 1u);
}

TEST(Parser, ParsedSpecIsBisimilarToTheProgrammaticModel) {
    // The parsed paper spec and the C++ builder must produce strongly
    // bisimilar global systems (they are the same model).
    const adl::ComposedModel parsed =
        adl::compose(parse_archi_type(kRpcUntimed));
    const adl::ComposedModel built =
        models::rpc::compose(models::rpc::simplified_functional());
    const auto eq = bisim::strongly_bisimilar(parsed.graph, built.graph);
    EXPECT_TRUE(eq.equivalent);
}

TEST(Parser, ParsesRatesOfEveryKind) {
    const adl::ArchiType archi = parse_archi_type(R"(
ARCHI_TYPE Rates(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T(void)
  BEHAVIOR
    A(void; void) = choice {
      <a1, exp(2.5)> . A(),
      <a2, inf> . A(),
      <a3, inf(2, 0.5)> . A(),
      <a4, det(1.5)> . A(),
      <a5, norm(4, 0.1)> . A(),
      <a6, unif(1, 2)> . A(),
      <a7, erlang(3, 2)> . A(),
      <a8, _> . A()
    }
  INPUT_INTERACTIONS UNI a8
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T()
END
)");
    const auto& alts = archi.elem_types[0].behaviors[0].alternatives;
    ASSERT_EQ(alts.size(), 8u);
    EXPECT_TRUE(lts::is_exponential(alts[0].actions[0].rate));
    EXPECT_TRUE(lts::is_immediate(alts[1].actions[0].rate));
    const auto* imm = std::get_if<lts::RateImmediate>(&alts[2].actions[0].rate);
    ASSERT_NE(imm, nullptr);
    EXPECT_EQ(imm->priority, 2);
    EXPECT_DOUBLE_EQ(imm->weight, 0.5);
    EXPECT_TRUE(lts::is_general(alts[3].actions[0].rate));
    EXPECT_TRUE(lts::is_general(alts[4].actions[0].rate));
    EXPECT_TRUE(lts::is_general(alts[5].actions[0].rate));
    EXPECT_TRUE(lts::is_general(alts[6].actions[0].rate));
    EXPECT_TRUE(lts::is_passive(alts[7].actions[0].rate));
}

TEST(Parser, ParsesParameterisedBehavioursWithGuards) {
    const adl::ArchiType archi = parse_archi_type(R"(
ARCHI_TYPE Buffered(void)
ARCHI_ELEM_TYPES
ELEM_TYPE Buffer_Type(void)
  BEHAVIOR
    Buffer(integer n, integer cap; void) = choice {
      cond(n < cap) -> <put, _> . Buffer(n + 1, cap),
      cond(n > 0) -> <get, _> . Buffer(n - 1, cap)
    }
  INPUT_INTERACTIONS UNI put; get
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    B : Buffer_Type(0, 4)
END
)");
    const adl::ComposedModel model = adl::compose(archi);
    // put/get are unattached inputs => blocked, but the local state space
    // still unfolds through the guard logic during construction.
    EXPECT_EQ(model.local_state_names[0].size(), 5u);  // occupancy 0..4
    EXPECT_EQ(archi.instances[0].args.size(), 2u);
}

TEST(Parser, ValidatesSemanticsAfterParsing) {
    // Unknown behaviour invoked: parser accepts the syntax, validate throws.
    EXPECT_THROW((void)parse_archi_type(R"(
ARCHI_TYPE Bad(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T(void)
  BEHAVIOR
    A(void; void) = <a, _> . Ghost()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T()
END
)"),
                 ModelError);
}

TEST(Parser, SyntaxErrorsCarryPositions) {
    try {
        (void)parse_archi_type("ARCHI_TYPE ! oops");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 1);
        EXPECT_GT(e.column(), 1);
    }
}

TEST(Parser, RejectsUnknownRateKind) {
    EXPECT_THROW((void)parse_archi_type(R"(
ARCHI_TYPE Bad(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T(void)
  BEHAVIOR
    A(void; void) = <a, gamma(1, 2)> . A()
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T()
END
)"),
                 ParseError);
}

TEST(Parser, RejectsUnknownParameterName) {
    EXPECT_THROW((void)parse_archi_type(R"(
ARCHI_TYPE Bad(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T(void)
  BEHAVIOR
    A(integer n; void) = <a, _> . A(m + 1)
  INPUT_INTERACTIONS void
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T(0)
END
)"),
                 ParseError);
}

TEST(Measures, ParsesThePaperMeasureDefinitions) {
    const auto measures = parse_measures(R"(
MEASURE throughput IS
  ENABLED(C.process_result_packet) -> TRANS_REWARD(1);
MEASURE waiting_time IS
  ENABLED(C.monitor_waiting_client) -> STATE_REWARD(1);
MEASURE energy IS
  ENABLED(S.monitor_idle_server)    -> STATE_REWARD(2)
  ENABLED(S.monitor_busy_server)    -> STATE_REWARD(3)
  ENABLED(S.monitor_awaking_server) -> STATE_REWARD(2)
)");
    ASSERT_EQ(measures.size(), 3u);
    EXPECT_EQ(measures[0].name, "throughput");
    EXPECT_EQ(measures[0].clauses.size(), 1u);
    EXPECT_EQ(measures[0].clauses[0].target, adl::RewardClause::Target::Trans);
    EXPECT_EQ(measures[2].clauses.size(), 3u);
    EXPECT_DOUBLE_EQ(measures[2].clauses[1].reward, 3.0);
    const auto* pred =
        std::get_if<adl::EnabledPredicate>(&measures[2].clauses[0].predicate);
    ASSERT_NE(pred, nullptr);
    EXPECT_EQ(pred->instance, "S");
    EXPECT_EQ(pred->action, "monitor_idle_server");
}

TEST(Measures, ParsesInStatePredicates) {
    const auto measures = parse_measures(R"(
MEASURE energy IS
  IN_STATE(S, Idle_Server) -> STATE_REWARD(2)
  IN_STATE(S, Busy_Server) -> STATE_REWARD(3)
)");
    ASSERT_EQ(measures.size(), 1u);
    ASSERT_EQ(measures[0].clauses.size(), 2u);
    const auto* pred =
        std::get_if<adl::InStatePredicate>(&measures[0].clauses[0].predicate);
    ASSERT_NE(pred, nullptr);
    EXPECT_EQ(pred->state_prefix, "Idle_Server");
}

TEST(Measures, RejectsEmptyInput) {
    EXPECT_THROW((void)parse_measures("   // nothing here\n"), ParseError);
}

TEST(Measures, RejectsTransRewardOnInState) {
    // IN_STATE selects states, not transitions; the measure still parses
    // (target is syntactically valid) but evaluation rejects it -- covered
    // in the adl tests.  Here: missing arrow is a parse error.
    EXPECT_THROW((void)parse_measures("MEASURE m IS ENABLED(A.b) STATE_REWARD(1)"),
                 ParseError);
}

}  // namespace
}  // namespace dpma::aemilia
