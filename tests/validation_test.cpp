#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "models/rpc.hpp"
#include "models/streaming.hpp"
#include "sim/gsmp.hpp"

namespace dpma {
namespace {

/// Replaces exponential rates by general exponential distributions, so the
/// GSMP simulator runs a distribution-for-distribution copy of the CTMC
/// (the cross-validation of Sect. 5.1).
adl::ComposedModel exponentialized(adl::ComposedModel model) {
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        const auto out = model.graph.out(s);
        for (std::size_t k = 0; k < out.size(); ++k) {
            if (const auto* e = std::get_if<lts::RateExp>(&out[k].rate)) {
                model.graph.set_rate(s, k,
                                     lts::RateGeneral{Dist::exponential(e->rate)});
            }
        }
    }
    return model;
}

TEST(Validation, RpcSimulatorReproducesMarkovMeasures) {
    // Fig. 5 as a test: all three rpc measures, simulated with exponential
    // distributions, must match the exact CTMC values.
    const auto config = models::rpc::markovian(5.0, true);
    const adl::ComposedModel exact_model = models::rpc::compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(exact_model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = models::rpc::measures();

    const adl::ComposedModel sim_model = exponentialized(models::rpc::compose(config));
    const sim::Simulator simulator(sim_model, measures);
    sim::SimOptions options;
    options.warmup = 500.0;
    options.horizon = 15000.0;
    options.seed = 1234;
    const auto estimates = sim::simulate_replications(simulator, options, 30, 0.90);

    for (std::size_t m = 0; m < measures.size(); ++m) {
        const double exact =
            ctmc::evaluate_measure(markov, exact_model, pi, measures[m]);
        EXPECT_NEAR(estimates[m].mean, exact,
                    5.0 * estimates[m].half_width + 0.002 * std::abs(exact) + 1e-6)
            << measures[m].name;
    }
}

TEST(Validation, StreamingSimulatorReproducesMarkovMeasures) {
    const auto config = models::streaming::markovian(100.0, true);
    const adl::ComposedModel exact_model = models::streaming::compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(exact_model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto measures = models::streaming::measures();

    const adl::ComposedModel sim_model =
        exponentialized(models::streaming::compose(config));
    const sim::Simulator simulator(sim_model, measures);
    sim::SimOptions options;
    options.warmup = 5000.0;
    options.horizon = 150000.0;
    options.seed = 77;
    const auto estimates = sim::simulate_replications(simulator, options, 12, 0.90);

    for (std::size_t m = 0; m < measures.size(); ++m) {
        const double exact =
            ctmc::evaluate_measure(markov, exact_model, pi, measures[m]);
        EXPECT_NEAR(estimates[m].mean, exact,
                    6.0 * estimates[m].half_width + 0.01 * std::abs(exact) + 1e-5)
            << measures[m].name;
    }
}

// --- regression pins for the paper-shape claims -------------------------

struct RpcDerived {
    double throughput;
    double wait_per_req;
    double energy_per_req;
};

RpcDerived simulate_rpc_general(double timeout, bool dpm) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(timeout, dpm));
    const sim::Simulator simulator(model, models::rpc::measures());
    sim::SimOptions options;
    options.warmup = 500.0;
    options.horizon = 15000.0;
    options.seed = 4321 + static_cast<std::uint64_t>(timeout * 10);
    const auto est = sim::simulate_replications(simulator, options, 10, 0.90);
    const double tput = est[models::rpc::kThroughput].mean;
    return RpcDerived{tput, est[models::rpc::kWaitingProb].mean / tput,
                      est[models::rpc::kEnergyRate].mean / tput};
}

TEST(PaperShapes, RpcGeneralIsBimodalAroundTheIdlePeriod) {
    // Sect. 5.2: below the ~11.3 ms idle period, throughput flat and energy
    // rising linearly with the timeout; above, no DPM effect.
    const RpcDerived base = simulate_rpc_general(10.0, false);
    const RpcDerived t4 = simulate_rpc_general(4.0, true);
    const RpcDerived t8 = simulate_rpc_general(8.0, true);
    const RpcDerived t20 = simulate_rpc_general(20.0, true);

    // Flat throughput below the idle period.
    EXPECT_NEAR(t4.throughput, t8.throughput, 0.002);
    // Energy grows roughly linearly with the timeout below the idle period.
    EXPECT_GT(t8.energy_per_req, t4.energy_per_req + 2.0);
    // Above the idle period the DPM has no effect.
    EXPECT_NEAR(t20.throughput, base.throughput, 0.002);
    EXPECT_NEAR(t20.energy_per_req, base.energy_per_req, 0.5);
}

TEST(PaperShapes, RpcGeneralDpmCounterproductiveNearIdlePeriod) {
    // Sect. 5.2 (i): a timeout close to the actual idle period wakes the
    // server right after every shutdown — worse than no DPM in energy AND
    // performance.
    const RpcDerived base = simulate_rpc_general(10.0, false);
    const RpcDerived near = simulate_rpc_general(10.0, true);
    EXPECT_GT(near.energy_per_req, base.energy_per_req);
    EXPECT_GT(near.wait_per_req, base.wait_per_req);
    EXPECT_LT(near.throughput, base.throughput);
}

TEST(PaperShapes, StreamingGeneralTransparentAt100ms) {
    // Sect. 5.3: awake period 100 ms saves >50% NIC energy with no extra
    // frame loss and no extra misses relative to NO-DPM.
    const auto run = [](bool dpm) {
        const adl::ComposedModel model =
            models::streaming::compose(models::streaming::general(100.0, dpm));
        const sim::Simulator simulator(model, models::streaming::measures());
        sim::SimOptions options;
        options.warmup = 3000.0;
        options.horizon = 80000.0;
        options.seed = 5150;
        const auto est = sim::simulate_replications(simulator, options, 8, 0.90);
        std::vector<double> v;
        for (const auto& e : est) v.push_back(e.mean);
        return v;
    };
    const auto base = run(false);
    const auto with = run(true);
    namespace ms = models::streaming;

    const double epf_base = base[ms::kEnergyRate] / base[ms::kFramesReceived];
    const double epf_with = with[ms::kEnergyRate] / with[ms::kFramesReceived];
    EXPECT_LT(epf_with, 0.5 * epf_base);  // >50% saving

    const double loss_with = (with[ms::kApLoss] + with[ms::kBLoss]) / with[ms::kGenerated];
    EXPECT_LT(loss_with, 1e-4);  // no loss at 100 ms

    const double miss_base = base[ms::kMiss] / (base[ms::kMiss] + base[ms::kHits]);
    const double miss_with = with[ms::kMiss] / (with[ms::kMiss] + with[ms::kHits]);
    EXPECT_LT(miss_with, miss_base + 0.01);  // no extra misses
}

TEST(PaperShapes, StreamingMarkovEnergyFallsAndQualityDegrades) {
    // Fig. 4 monotonicity pins on the exact CTMC solution.
    const auto solve = [](double period) {
        const adl::ComposedModel model =
            models::streaming::compose(models::streaming::markovian(period, true));
        const ctmc::MarkovModel markov = ctmc::build_markov(model);
        const auto pi = ctmc::steady_state(markov.chain);
        std::vector<double> v;
        for (const auto& m : models::streaming::measures()) {
            v.push_back(ctmc::evaluate_measure(markov, model, pi, m));
        }
        return v;
    };
    namespace ms = models::streaming;
    const auto p25 = solve(25.0);
    const auto p100 = solve(100.0);
    const auto p400 = solve(400.0);
    const auto epf = [](const std::vector<double>& v) {
        return v[ms::kEnergyRate] / v[ms::kFramesReceived];
    };
    const auto quality = [](const std::vector<double>& v) {
        return v[ms::kHits] / (v[ms::kHits] + v[ms::kMiss]);
    };
    EXPECT_GT(epf(p25), epf(p100));
    EXPECT_GT(epf(p100), epf(p400));
    EXPECT_GT(quality(p25), quality(p100));
    EXPECT_GT(quality(p100), quality(p400));
}

}  // namespace
}  // namespace dpma
