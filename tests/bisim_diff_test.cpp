/// \file bisim_diff_test.cpp
/// Differential tests for the CSR-based saturation and dirty-block
/// refinement pipeline: the optimised implementations are compared against
/// straightforward reference implementations (the pre-optimisation
/// algorithms, kept here verbatim) on randomized LTSs.  Verdicts, block
/// counts, the induced equivalence relations, and the validity of
/// distinguishing formulas must all agree.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <random>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bisim/equivalence.hpp"
#include "bisim/hml_check.hpp"
#include "bisim/partition.hpp"
#include "lts/ops.hpp"

namespace dpma::bisim {
namespace {

using lts::ActionId;
using lts::Lts;
using lts::StateId;
using lts::Transition;

// ---------------------------------------------------------------------------
// Reference implementations (pre-CSR algorithms, intentionally naive).
// ---------------------------------------------------------------------------

/// Forward tau-closure (reflexive) of every state via per-state BFS.
std::vector<std::vector<StateId>> ref_tau_closures(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    std::vector<std::vector<StateId>> closure(model.num_states());
    std::vector<char> seen(model.num_states());
    for (StateId s = 0; s < model.num_states(); ++s) {
        std::fill(seen.begin(), seen.end(), 0);
        std::deque<StateId> queue{s};
        seen[s] = 1;
        while (!queue.empty()) {
            const StateId u = queue.front();
            queue.pop_front();
            closure[s].push_back(u);
            for (const Transition& t : model.out(u)) {
                if (t.action == tau && !seen[t.target]) {
                    seen[t.target] = 1;
                    queue.push_back(t.target);
                }
            }
        }
    }
    return closure;
}

/// Reference weak saturation: tau* moves plus tau* a tau* moves.
Lts ref_saturate(const Lts& model) {
    const ActionId tau = model.actions()->tau();
    const auto closure = ref_tau_closures(model);
    Lts out(model.actions());
    for (StateId s = 0; s < model.num_states(); ++s) {
        out.add_state(model.state_name(s));
    }
    if (model.initial() != lts::kNoState) out.set_initial(model.initial());

    for (StateId s = 0; s < model.num_states(); ++s) {
        std::vector<char> added_tau(model.num_states(), 0);
        for (StateId mid : closure[s]) {
            if (!added_tau[mid]) {
                added_tau[mid] = 1;
                out.add_transition(s, tau, mid);
            }
        }
        std::unordered_map<std::uint64_t, char> added;
        for (StateId mid : closure[s]) {
            for (const Transition& t : model.out(mid)) {
                if (t.action == tau) continue;
                for (StateId end : closure[t.target]) {
                    const std::uint64_t key =
                        (static_cast<std::uint64_t>(t.action) << 32) | end;
                    if (!added.emplace(key, 1).second) continue;
                    out.add_transition(s, t.action, end);
                }
            }
        }
    }
    return out;
}

/// Reference whole-partition signature refinement.
using RefSignature = std::vector<std::pair<ActionId, BlockId>>;

RefSignature ref_signature_of(const Lts& model, StateId state,
                              const std::vector<BlockId>& blocks) {
    RefSignature sig;
    for (const Transition& t : model.out(state)) {
        sig.emplace_back(t.action, blocks[t.target]);
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    return sig;
}

std::vector<BlockId> ref_refine_strong(const Lts& model) {
    const std::size_t n = model.num_states();
    std::vector<BlockId> prev(n, 0);
    if (n == 0) return prev;
    while (true) {
        std::vector<BlockId> next(n, 0);
        std::map<std::pair<BlockId, RefSignature>, BlockId> block_ids;
        for (StateId s = 0; s < n; ++s) {
            auto key = std::make_pair(prev[s], ref_signature_of(model, s, prev));
            auto [it, inserted] =
                block_ids.emplace(std::move(key), static_cast<BlockId>(block_ids.size()));
            next[s] = it->second;
        }
        const bool stable =
            block_ids.size() ==
            static_cast<std::size_t>(1 + *std::max_element(prev.begin(), prev.end()));
        prev = std::move(next);
        if (stable) return prev;
    }
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

/// Random LTS with a controllable tau share; always rooted at state 0.
Lts random_lts(std::uint32_t seed, std::size_t states, std::size_t transitions,
               double tau_share) {
    std::mt19937 rng(seed);
    Lts m;
    const ActionId tau = m.actions()->tau();
    const std::vector<ActionId> visible{m.action("a"), m.action("b"), m.action("c")};
    for (std::size_t s = 0; s < states; ++s) m.add_state();
    std::uniform_int_distribution<StateId> pick_state(0, static_cast<StateId>(states - 1));
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick_visible(0, visible.size() - 1);
    for (std::size_t k = 0; k < transitions; ++k) {
        const ActionId a = coin(rng) < tau_share ? tau : visible[pick_visible(rng)];
        m.add_transition(pick_state(rng), a, pick_state(rng));
    }
    m.set_initial(0);
    return m;
}

std::set<std::tuple<StateId, ActionId, StateId>> transition_set(const Lts& model) {
    std::set<std::tuple<StateId, ActionId, StateId>> out;
    for (StateId s = 0; s < model.num_states(); ++s) {
        for (const Transition& t : model.out(s)) {
            out.emplace(s, t.action, t.target);
        }
    }
    return out;
}

std::size_t block_count(const std::vector<BlockId>& blocks) {
    if (blocks.empty()) return 0;
    return 1 + *std::max_element(blocks.begin(), blocks.end());
}

/// True iff the two labelings induce the same equivalence relation, i.e.
/// they are equal up to renumbering of block ids.
bool same_partition(const std::vector<BlockId>& a, const std::vector<BlockId>& b) {
    if (a.size() != b.size()) return false;
    std::map<BlockId, BlockId> fwd, bwd;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto [f, fi] = fwd.emplace(a[i], b[i]);
        if (!fi && f->second != b[i]) return false;
        const auto [g, gi] = bwd.emplace(b[i], a[i]);
        if (!gi && g->second != a[i]) return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Differential properties.
// ---------------------------------------------------------------------------

TEST(BisimDiffTest, SaturateMatchesReferenceOnRandomSystems) {
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
        const Lts m = random_lts(seed, 30 + seed * 7, 90 + seed * 23, 0.5);
        const Lts fast = lts::saturate(m);
        const Lts ref = ref_saturate(m);
        EXPECT_EQ(fast.num_states(), ref.num_states()) << "seed " << seed;
        EXPECT_EQ(transition_set(fast), transition_set(ref)) << "seed " << seed;
    }
}

TEST(BisimDiffTest, RefineMatchesReferenceUpToRenumbering) {
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
        const Lts m = random_lts(seed * 101, 40 + seed * 5, 120 + seed * 17, 0.3);
        const RefinementResult fast = refine_strong(m);
        const std::vector<BlockId> ref = ref_refine_strong(m);
        EXPECT_EQ(block_count(fast.final_blocks()), block_count(ref)) << "seed " << seed;
        EXPECT_TRUE(same_partition(fast.final_blocks(), ref)) << "seed " << seed;
    }
}

TEST(BisimDiffTest, WeakVerdictsMatchReferencePipeline) {
    std::size_t disagreements_possible = 0;
    for (std::uint32_t seed = 1; seed <= 10; ++seed) {
        const Lts lhs = random_lts(seed * 7, 12, 30, 0.5);
        const Lts rhs = random_lts(seed * 7 + 3, 12, 30, 0.5);

        // Production pipeline (collapse + CSR saturation + dirty-block
        // refinement) ...
        const EquivalenceResult fast = weakly_bisimilar(lhs, rhs);

        // ... against the naive one: union, reference saturation, reference
        // refinement, no SCC collapse.
        const lts::UnionResult merged = lts::disjoint_union(lhs, rhs);
        const Lts sat = ref_saturate(merged.combined);
        const std::vector<BlockId> blocks = ref_refine_strong(sat);
        const bool ref_equivalent =
            blocks[merged.initial_lhs] == blocks[merged.initial_rhs];

        EXPECT_EQ(fast.equivalent, ref_equivalent) << "seed " << seed;
        if (!fast.equivalent) ++disagreements_possible;
    }
    // The generator must exercise both verdicts for the test to mean much.
    EXPECT_GT(disagreements_possible, 0u);
}

TEST(BisimDiffTest, DistinguishingFormulasRemainValid) {
    std::size_t formulas_checked = 0;
    for (std::uint32_t seed = 1; seed <= 10; ++seed) {
        const Lts lhs = random_lts(seed * 13, 10, 24, 0.4);
        const Lts rhs = random_lts(seed * 13 + 5, 10, 24, 0.4);
        const EquivalenceResult result = weakly_bisimilar(lhs, rhs);
        if (result.equivalent) continue;
        ASSERT_NE(result.distinguishing, nullptr) << "seed " << seed;
        // The formula must hold on one initial state and fail on the other,
        // interpreted over the (unsaturated) union with weak modalities.
        const lts::UnionResult u = lts::disjoint_union(lhs, rhs);
        EXPECT_NE(satisfies(u.combined, u.initial_lhs, result.distinguishing),
                  satisfies(u.combined, u.initial_rhs, result.distinguishing))
            << "seed " << seed;
        ++formulas_checked;
    }
    EXPECT_GT(formulas_checked, 0u);
}

TEST(BisimDiffTest, ParallelRefinementIsBitIdenticalToSerial) {
    for (std::uint32_t seed = 1; seed <= 4; ++seed) {
        const Lts m = random_lts(seed * 31, 400, 3000, 0.5);
        const Lts sat = lts::saturate(m);
        const RefinementResult serial = refine_strong(sat, 1);
        const RefinementResult parallel = refine_strong(sat, 4);
        ASSERT_EQ(serial.rounds.size(), parallel.rounds.size()) << "seed " << seed;
        for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
            EXPECT_EQ(serial.rounds[r], parallel.rounds[r])
                << "seed " << seed << " round " << r;
        }
    }
}

TEST(BisimDiffTest, QuotientOfSaturationIsWeaklyBisimilarToOriginal) {
    for (std::uint32_t seed = 1; seed <= 4; ++seed) {
        const Lts m = random_lts(seed * 47, 20, 60, 0.5);
        const Lts sat = lts::saturate(m);
        const RefinementResult refinement = refine_strong(sat);
        Lts q = quotient(sat, refinement);
        q.set_initial(refinement.final_blocks()[m.initial()]);
        const EquivalenceResult eq = weakly_bisimilar(m, q);
        EXPECT_TRUE(eq.equivalent) << "seed " << seed;
    }
}

}  // namespace
}  // namespace dpma::bisim
