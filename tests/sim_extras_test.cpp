#include <gtest/gtest.h>

#include <cmath>

#include "adl/compose.hpp"
#include "core/error.hpp"
#include "lts/dot.hpp"
#include "bisim/equivalence.hpp"
#include "lts/ops.hpp"
#include "models/builder.hpp"
#include "models/rpc.hpp"
#include "sim/gsmp.hpp"

namespace dpma::sim {
namespace {

using models::act;
using models::alt;

/// Deterministic work/rest cycle with unit power while working.
adl::ArchiType cycle_model(double work, double rest) {
    adl::ArchiType archi;
    archi.name = "Cycle";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Working", {},
            {alt({act("finish", lts::RateGeneral{Dist::deterministic(work)})},
                 "Resting")}},
        adl::BehaviorDef{"Resting", {},
            {alt({act("restart", lts::RateGeneral{Dist::deterministic(rest)})},
                 "Working")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    return archi;
}

std::vector<adl::Measure> cycle_measures() {
    adl::Measure energy{"energy", {adl::state_reward_in("X", "Working", 2.0)}};
    adl::Measure cycles{"cycles", {adl::trans_reward("X", "finish", 1.0)}};
    return {energy, cycles};
}

TEST(RunUntil, FindsExactCrossingInsideAState) {
    // Work 3 units at power 2, rest 2 units at power 0.  Accumulated energy
    // reaches 10 after 2.5 cycles of work: t = 3+2+3+2+2 = 12... precisely:
    // energy 6 at t=3, 6 at t=5, 12 at t=8 -> crossing of 10 at t = 5 + 4/2 = 7.
    const adl::ComposedModel model = adl::compose(cycle_model(3.0, 2.0));
    const Simulator simulator(model, cycle_measures());
    SimOptions options;
    options.horizon = 1000.0;
    options.seed = 1;
    const DepletionResult result = simulator.run_until(0, 10.0, options);
    EXPECT_TRUE(result.depleted);
    EXPECT_NEAR(result.time, 7.0, 1e-9);
    EXPECT_NEAR(result.totals[0], 10.0, 1e-9);
    // One full work period finished by then.
    EXPECT_NEAR(result.totals[1], 1.0, 1e-12);
}

TEST(RunUntil, TransRewardCrossesAtFiringInstant) {
    const adl::ComposedModel model = adl::compose(cycle_model(3.0, 2.0));
    const Simulator simulator(model, cycle_measures());
    SimOptions options;
    options.horizon = 1000.0;
    options.seed = 1;
    // Third completed work period fires at t = 3 + 5 + 5 = 13.
    const DepletionResult result = simulator.run_until(1, 3.0, options);
    EXPECT_TRUE(result.depleted);
    EXPECT_NEAR(result.time, 13.0, 1e-9);
}

TEST(RunUntil, ReportsNonDepletionWithinHorizon) {
    const adl::ComposedModel model = adl::compose(cycle_model(3.0, 2.0));
    const Simulator simulator(model, cycle_measures());
    SimOptions options;
    options.horizon = 4.0;  // energy reaches only 6+... at t=4: 2*3=6 < 100
    options.seed = 1;
    const DepletionResult result = simulator.run_until(0, 100.0, options);
    EXPECT_FALSE(result.depleted);
}

TEST(RunUntil, RejectsWarmup) {
    const adl::ComposedModel model = adl::compose(cycle_model(3.0, 2.0));
    const Simulator simulator(model, cycle_measures());
    SimOptions options;
    options.horizon = 10.0;
    options.warmup = 1.0;
    EXPECT_THROW((void)simulator.run_until(0, 5.0, options), Error);
}

TEST(RunUntil, DepletionEstimateMatchesFluidLimitForLargeCapacity) {
    // Exponential work/rest: average power = 2 * E[work]/(E[work]+E[rest]).
    adl::ArchiType archi;
    archi.name = "ExpCycle";
    adl::ElemType t;
    t.name = "T";
    t.behaviors = {
        adl::BehaviorDef{"Working", {},
            {alt({act("finish", lts::RateExp{1.0})}, "Resting")}},
        adl::BehaviorDef{"Resting", {},
            {alt({act("restart", lts::RateExp{2.0})}, "Working")}},
    };
    archi.elem_types = {t};
    archi.instances = {adl::Instance{"X", "T", {}}};
    const adl::ComposedModel model = adl::compose(archi);
    const Simulator simulator(model, cycle_measures());
    SimOptions options;
    options.horizon = 100000.0;
    options.seed = 5;
    const double capacity = 2000.0;
    const Estimate estimate =
        simulate_depletion(simulator, 0, capacity, options, 20, 0.90);
    // Average power: P(working) = (1)/(1 + 0.5) = 2/3; power = 4/3.
    const double fluid = capacity / (4.0 / 3.0);
    EXPECT_NEAR(estimate.mean, fluid, 0.03 * fluid);
}

TEST(Trace, RecordsTimeOrderedEventsWithValidLabels) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(5.0, true));
    const Simulator simulator(model, models::rpc::measures());
    SimOptions options;
    options.horizon = 200.0;
    options.seed = 3;
    std::vector<TraceEvent> trace;
    const RunResult run = simulator.run(options, &trace);
    EXPECT_EQ(trace.size(), run.events);
    ASSERT_FALSE(trace.empty());
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_LE(trace[i - 1].time, trace[i].time);
    }
    for (const TraceEvent& e : trace) {
        EXPECT_LT(e.action, model.graph.actions()->size());
        EXPECT_LT(e.target, model.graph.num_states());
    }
}

TEST(Trace, WarmupEventsAreExcluded) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::general(5.0, true));
    const Simulator simulator(model, models::rpc::measures());
    SimOptions options;
    options.warmup = 100.0;
    options.horizon = 100.0;
    options.seed = 3;
    std::vector<TraceEvent> trace;
    (void)simulator.run(options, &trace);
    for (const TraceEvent& e : trace) {
        EXPECT_GE(e.time, 100.0);
        EXPECT_LE(e.time, 200.0);
    }
}

TEST(Dot, RendersStatesEdgesAndInitialMarker) {
    lts::Lts m;
    const auto s0 = m.add_state("start");
    const auto s1 = m.add_state("stop");
    m.add_transition(s0, m.action("go"), s1, lts::RateExp{2.0});
    m.add_transition(s1, m.actions()->tau(), s0);
    m.set_initial(s0);
    const std::string dot = lts::to_dot(m);
    EXPECT_NE(dot.find("digraph lts"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
    EXPECT_NE(dot.find("label=\"start\""), std::string::npos);
    EXPECT_NE(dot.find("go, exp"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Dot, HonoursOptions) {
    lts::Lts m;
    const auto s0 = m.add_state("start");
    m.add_transition(s0, m.action("go"), s0, lts::RateExp{2.0});
    m.set_initial(s0);
    lts::DotOptions options;
    options.show_rates = false;
    options.show_state_names = false;
    const std::string dot = lts::to_dot(m, options);
    EXPECT_EQ(dot.find("exp"), std::string::npos);
    EXPECT_EQ(dot.find("start"), std::string::npos);
}

TEST(Dot, RefusesOversizedSystems) {
    lts::Lts m;
    for (int i = 0; i < 10; ++i) m.add_state();
    m.set_initial(0);
    lts::DotOptions options;
    options.max_states = 5;
    EXPECT_THROW((void)lts::to_dot(m, options), Error);
}

TEST(CollapseTauSccs, MergesMutuallyTauReachableStates) {
    lts::Lts m;
    const auto s0 = m.add_state();
    const auto s1 = m.add_state();
    const auto s2 = m.add_state();
    const auto tau = m.actions()->tau();
    m.add_transition(s0, tau, s1);
    m.add_transition(s1, tau, s0);  // {s0, s1} is a tau-SCC
    m.add_transition(s1, m.action("a"), s2);
    m.set_initial(s0);
    const lts::TauCollapseResult result = lts::collapse_tau_sccs(m);
    EXPECT_EQ(result.collapsed.num_states(), 2u);
    EXPECT_EQ(result.representative_of[s0], result.representative_of[s1]);
    EXPECT_NE(result.representative_of[s0], result.representative_of[s2]);
}

TEST(CollapseTauSccs, KeepsVisibleSelfLoops) {
    lts::Lts m;
    const auto s0 = m.add_state();
    m.add_transition(s0, m.action("ping"), s0);
    m.add_transition(s0, m.actions()->tau(), s0);
    m.set_initial(s0);
    const lts::TauCollapseResult result = lts::collapse_tau_sccs(m);
    EXPECT_EQ(result.collapsed.num_states(), 1u);
    // The visible self-loop survives; the tau self-loop does not.
    ASSERT_EQ(result.collapsed.out(0).size(), 1u);
    EXPECT_EQ(result.collapsed.out(0)[0].action, m.actions()->find("ping"));
}

TEST(CollapseTauSccs, PreservesWeakBisimilarity) {
    const adl::ComposedModel model =
        models::rpc::compose(models::rpc::revised_functional());
    lts::ActionSet dpm_actions;
    for (auto a : adl::actions_of_instance(model, "DPM")) dpm_actions.insert(a);
    const lts::Lts hidden = lts::hide(model.graph, dpm_actions);
    const lts::TauCollapseResult collapsed = lts::collapse_tau_sccs(hidden);
    EXPECT_LE(collapsed.collapsed.num_states(), hidden.num_states());
    EXPECT_TRUE(bisim::weakly_bisimilar(hidden, collapsed.collapsed).equivalent);
}

}  // namespace
}  // namespace dpma::sim
