#include <gtest/gtest.h>

#include "ctmc/ctmc.hpp"
#include "ctmc/reward.hpp"
#include "ctmc/solve.hpp"
#include "lts/ops.hpp"
#include "models/streaming.hpp"
#include "noninterference/noninterference.hpp"

namespace dpma::models::streaming {
namespace {

struct Solved {
    std::vector<double> values;

    [[nodiscard]] double energy_per_frame() const {
        return values[kEnergyRate] / values[kFramesReceived];
    }
    [[nodiscard]] double loss() const {
        return (values[kApLoss] + values[kBLoss]) / values[kGenerated];
    }
    [[nodiscard]] double miss() const {
        return values[kMiss] / (values[kMiss] + values[kHits]);
    }
    [[nodiscard]] double quality() const {
        return values[kHits] / (values[kMiss] + values[kHits]);
    }
};

Solved solve(const Config& config) {
    const adl::ComposedModel model = compose(config);
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    Solved out;
    for (const auto& m : measures()) {
        out.values.push_back(ctmc::evaluate_measure(markov, model, pi, m));
    }
    return out;
}

TEST(StreamingStructure, ArchitectureValidates) {
    EXPECT_NO_THROW(adl::validate(build(functional())));
    EXPECT_NO_THROW(adl::validate(build(markovian(100.0, true))));
}

TEST(StreamingStructure, FunctionalModelIsDeadlockFree) {
    const adl::ComposedModel model = compose(functional(2));
    EXPECT_TRUE(lts::deadlock_states(model.graph).empty());
}

TEST(StreamingStructure, MarkovianModelIsDeadlockFree) {
    const adl::ComposedModel model = compose(markovian(100.0, true));
    EXPECT_TRUE(lts::deadlock_states(model.graph).empty());
}

TEST(StreamingStructure, BufferCapacityBoundsStateSpace) {
    const adl::ComposedModel small = compose(functional(1));
    const adl::ComposedModel large = compose(functional(3));
    EXPECT_LT(small.graph.num_states(), large.graph.num_states());
}

TEST(StreamingStructure, RejectsNonPositiveCapacities) {
    Config config = functional(0);
    EXPECT_THROW((void)build(config), Error);
}

TEST(StreamingNoninterference, PspDpmIsTransparent) {
    // Sect. 3.2: the streaming functional model satisfies noninterference.
    const adl::ComposedModel model = compose(functional(2));
    const auto result = noninterference::check_dpm_transparency(
        model, high_action_labels(), "C");
    EXPECT_TRUE(result.noninterfering);
}

TEST(StreamingNoninterference, TransparencyHoldsForLargerBuffers) {
    const adl::ComposedModel model = compose(functional(3));
    const auto result = noninterference::check_dpm_transparency(
        model, high_action_labels(), "C");
    EXPECT_TRUE(result.noninterfering);
}

TEST(StreamingMarkov, SolvableAndNormalised) {
    const adl::ComposedModel model = compose(markovian(100.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    double total = 0.0;
    for (double p : pi) total += p;
    EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(StreamingMarkov, DpmSavesEnergy) {
    const Solved no_dpm = solve(markovian(100.0, false));
    const Solved with = solve(markovian(100.0, true));
    EXPECT_LT(with.energy_per_frame(), no_dpm.energy_per_frame());
}

TEST(StreamingMarkov, LongerAwakePeriodSavesMoreEnergy) {
    // Sect. 4.2: "the longer the awake period, the longer the sleep time of
    // the NIC", with a beneficial impact on consumption...
    const Solved p50 = solve(markovian(50.0, true));
    const Solved p200 = solve(markovian(200.0, true));
    const Solved p800 = solve(markovian(800.0, true));
    EXPECT_GT(p50.energy_per_frame(), p200.energy_per_frame());
    EXPECT_GT(p200.energy_per_frame(), p800.energy_per_frame());
}

TEST(StreamingMarkov, LongerAwakePeriodDegradesQuality) {
    // ...and a negative effect on service quality.
    const Solved p50 = solve(markovian(50.0, true));
    const Solved p400 = solve(markovian(400.0, true));
    EXPECT_LT(p400.quality(), p50.quality());
    EXPECT_GT(p400.miss(), p50.miss());
}

TEST(StreamingMarkov, QualityAndMissAreComplementary) {
    const Solved s = solve(markovian(100.0, true));
    EXPECT_NEAR(s.quality() + s.miss(), 1.0, 1e-9);
}

TEST(StreamingMarkov, ModerateAwakePeriodSavesMostEnergyCheaply) {
    // Sect. 4.2: around 50 ms the energy saving is large while the quality
    // impact stays small.
    const Solved no_dpm = solve(markovian(50.0, false));
    const Solved with = solve(markovian(50.0, true));
    const double saving =
        1.0 - with.energy_per_frame() / no_dpm.energy_per_frame();
    EXPECT_GT(saving, 0.35);
    EXPECT_LT(no_dpm.quality() - with.quality(), 0.05);
}

TEST(StreamingMarkov, NoDpmIsPeriodIndependent) {
    const Solved a = solve(markovian(50.0, false));
    const Solved b = solve(markovian(700.0, false));
    EXPECT_NEAR(a.energy_per_frame(), b.energy_per_frame(), 1e-9);
    EXPECT_NEAR(a.quality(), b.quality(), 1e-9);
}

TEST(StreamingMarkov, FlowConservationAtTheNic) {
    // Frames received by the NIC = frames forwarded to B (the NIC never
    // drops), which in turn bounds the client's hit rate.
    const adl::ComposedModel model = compose(markovian(100.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto freq = ctmc::action_frequencies(markov, model, pi);
    const auto& table = *model.graph.actions();
    const double received = freq[table.find("RSC.deliver_packet#NIC.receive_frame")];
    const double forwarded = freq[table.find("NIC.forward_frame#B.receive_frame")];
    EXPECT_NEAR(received, forwarded, 1e-10);
}

TEST(StreamingMarkov, GeneratedSplitsIntoDeliveredAndLost) {
    const adl::ComposedModel model = compose(markovian(200.0, true));
    const ctmc::MarkovModel markov = ctmc::build_markov(model);
    const auto pi = ctmc::steady_state(markov.chain);
    const auto freq = ctmc::action_frequencies(markov, model, pi);
    const auto& table = *model.graph.actions();
    const double generated = freq[table.find("S.generate_frame")];
    const double ap_drop = freq[table.find("AP.drop_frame")];
    const double channel_lost = freq[table.find("RSC.lose_packet")];
    const double b_drop = freq[table.find("B.drop_frame")];
    const double served = freq[table.find("C.get_frame#B.serve_frame")];
    // In steady state every generated frame is eventually dropped, lost or
    // rendered.
    EXPECT_NEAR(generated, ap_drop + channel_lost + b_drop + served, 1e-8);
}

TEST(StreamingGeneral, BuildsWithGeneralRates) {
    const adl::ComposedModel model = compose(general(100.0, true));
    bool has_general = false;
    for (lts::StateId s = 0; s < model.graph.num_states(); ++s) {
        for (const lts::Transition& t : model.graph.out(s)) {
            if (lts::is_general(t.rate)) has_general = true;
        }
    }
    EXPECT_TRUE(has_general);
}

TEST(StreamingConfig, CanonicalConfigsHaveDocumentedShape) {
    EXPECT_EQ(functional().phase, Phase::Functional);
    EXPECT_EQ(functional(4).params.ap_capacity, 4);
    EXPECT_EQ(markovian(250.0, true).params.awake_period, 250.0);
    EXPECT_FALSE(markovian(250.0, false).with_dpm);
    EXPECT_EQ(general(250.0, true).phase, Phase::General);
    // The performance models keep the paper's buffer capacity of 10.
    EXPECT_EQ(markovian(100.0, true).params.ap_capacity, 10);
    EXPECT_EQ(markovian(100.0, true).params.b_capacity, 10);
}

}  // namespace
}  // namespace dpma::models::streaming
