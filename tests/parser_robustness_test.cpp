#include <gtest/gtest.h>

#include <random>
#include <string>

#include "aemilia/parser.hpp"
#include "core/error.hpp"
#include "models/specs.hpp"

namespace dpma::aemilia {
namespace {

/// Every parse failure must carry a usable source span: ParseError always
/// has line and column, parser-raised ModelError (via adl::validate on the
/// parsed AST) always has at least a line.  Called from every catch block
/// below so the whole robustness corpus doubles as a span-coverage test.
void expect_span(const ParseError& error) {
    EXPECT_GE(error.line(), 1) << error.what();
    EXPECT_GE(error.column(), 1) << error.what();
}

void expect_span(const ModelError& error) {
    EXPECT_GE(error.line(), 1) << error.what();
    EXPECT_GE(error.column(), 1) << error.what();
}

/// Mutation robustness: corrupting a valid specification at a random
/// position must either still parse (benign mutation, e.g. inside a
/// comment) or raise dpma::Error — never crash, hang or accept garbage
/// silently with an exception type outside the library's hierarchy.
class ParserMutation : public ::testing::TestWithParam<int> {};

TEST_P(ParserMutation, CorruptedSpecificationsFailGracefully) {
    const std::string pristine{models::rpc_untimed_spec()};
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
    std::uniform_int_distribution<std::size_t> position(0, pristine.size() - 1);
    const char garbage[] = {'@', '$', '(', ')', '<', '.', ';', 'x', '0', '}'};
    std::uniform_int_distribution<std::size_t> pick(0, sizeof garbage - 1);

    for (int trial = 0; trial < 50; ++trial) {
        std::string mutated = pristine;
        const std::size_t pos = position(rng);
        switch (trial % 3) {
            case 0: mutated[pos] = garbage[pick(rng)]; break;              // replace
            case 1: mutated.erase(pos, 1); break;                          // delete
            case 2: mutated.insert(pos, 1, garbage[pick(rng)]); break;     // insert
        }
        try {
            (void)parse_archi_type(mutated);
        } catch (const ParseError& e) {
            expect_span(e);  // expected for most mutations
        } catch (const ModelError& e) {
            expect_span(e);
        } catch (const Error& e) {
            ADD_FAILURE() << "parse failure without a source span: " << e.what();
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutation, ::testing::Range(0, 6));

TEST(ParserRobustness, TruncationsOfTheSpecFailGracefully) {
    const std::string pristine{models::rpc_untimed_spec()};
    for (std::size_t cut = 0; cut < pristine.size(); cut += 97) {
        try {
            (void)parse_archi_type(pristine.substr(0, cut));
        } catch (const ParseError& e) {
            expect_span(e);
        } catch (const ModelError& e) {
            expect_span(e);
        } catch (const Error& e) {
            ADD_FAILURE() << "parse failure without a source span: " << e.what();
        }
    }
    SUCCEED();
}

TEST(ParserRobustness, EmptyAndWhitespaceInputs) {
    EXPECT_THROW((void)parse_archi_type(""), Error);
    EXPECT_THROW((void)parse_archi_type("   \n\t // just a comment\n"), Error);
    EXPECT_THROW((void)parse_measures(""), Error);
}

TEST(ParserRobustness, SyntaxErrorsReportLineAndColumn) {
    try {
        (void)parse_archi_type("ARCHI_TYPE T(void)\nARCHI_ELEM_TYPES\n  garbage here\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_EQ(e.column(), 3);
    }
    try {
        (void)parse_measures("MEASURE m IS\n  ENABLED(X) -> STATE_REWARD(1)\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        expect_span(e);
    }
}

TEST(ParserRobustness, SemanticErrorsReportTheOffendingLocation) {
    // `Missing()` starts at line 5, column 30; adl::validate anchors the
    // unknown-behaviour error on the invocation site.
    const std::string spec =
        "ARCHI_TYPE T(void)\n"
        "ARCHI_ELEM_TYPES\n"
        "ELEM_TYPE A(void)\n"
        "  BEHAVIOR\n"
        "    B(void; void) = <a, _> . Missing()\n"
        "  INPUT_INTERACTIONS UNI a\n"
        "  OUTPUT_INTERACTIONS void\n"
        "ARCHI_TOPOLOGY\n"
        "  ARCHI_ELEM_INSTANCES\n"
        "    X : A()\n"
        "END\n";
    try {
        (void)parse_archi_type(spec);
        FAIL() << "expected ModelError";
    } catch (const ModelError& e) {
        EXPECT_EQ(e.line(), 5);
        EXPECT_EQ(e.column(), 30);
    }
}

TEST(ParserRobustness, DeeplyNestedExpressionsDoNotOverflow) {
    // 200 nested parentheses in a behaviour argument.
    std::string nested = "n";
    for (int i = 0; i < 200; ++i) nested = "(" + nested + " + 1)";
    const std::string spec = R"(
ARCHI_TYPE Deep(void)
ARCHI_ELEM_TYPES
ELEM_TYPE T(void)
  BEHAVIOR
    A(integer n; void) = <a, _> . A()" + nested + R"()
  INPUT_INTERACTIONS UNI a
  OUTPUT_INTERACTIONS void
ARCHI_TOPOLOGY
  ARCHI_ELEM_INSTANCES
    X : T(0)
END
)";
    // The model diverges (parameter grows without bound), but *parsing*
    // must succeed; composition rejects it via the state limit.
    adl::ArchiType archi;
    EXPECT_NO_THROW(archi = parse_archi_type(spec));
    adl::ComposeOptions options;
    options.max_states = 100;
    EXPECT_THROW((void)adl::compose(archi, options), ModelError);
}

TEST(ParserRobustness, LongIdentifiersAndManyBehaviours) {
    std::string spec = "ARCHI_TYPE Wide(void)\nARCHI_ELEM_TYPES\nELEM_TYPE T(void)\n  BEHAVIOR\n";
    const std::string long_name(200, 'b');
    for (int i = 0; i < 50; ++i) {
        spec += "    " + long_name + std::to_string(i) + "(void; void) = <a, _> . " +
                long_name + std::to_string((i + 1) % 50) + "();\n";
    }
    spec.erase(spec.rfind(';'), 1);
    spec += "  INPUT_INTERACTIONS UNI a\n  OUTPUT_INTERACTIONS void\n";
    spec += "ARCHI_TOPOLOGY\n  ARCHI_ELEM_INSTANCES\n    X : T()\nEND\n";
    const adl::ArchiType archi = parse_archi_type(spec);
    EXPECT_EQ(archi.elem_types[0].behaviors.size(), 50u);
}

}  // namespace
}  // namespace dpma::aemilia
